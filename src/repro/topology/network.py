"""The :class:`Network` container: virtual nodes + links + queries.

A ``Network`` is the emulated (virtual) network: the input to routing, to
traffic generation, to the emulation engine, and — via
:mod:`repro.core.graphbuild` — to the partitioner.
"""

from __future__ import annotations


import networkx as nx
import numpy as np

from repro.topology.elements import Link, NetNode, NodeKind

__all__ = ["Network"]


class Network:
    """Mutable builder + immutable-ish queries for a virtual network.

    Node and link ids are dense and assigned in insertion order, which keeps
    them stable across runs (determinism) and directly usable as array
    indices everywhere else in the package.
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._nodes: list[NetNode] = []
        self._links: list[Link] = []
        self._by_name: dict[str, int] = {}
        # adjacency: node id -> list of (neighbor id, link)
        self._adj: list[list[tuple[int, Link]]] = []
        # lazily-built derived state, invalidated on mutation
        self._link_arrays: tuple[np.ndarray, ...] | None = None
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        name: str,
        kind: NodeKind,
        as_id: int = 0,
        site: str = "",
    ) -> NetNode:
        """Add a node; names must be unique."""
        if name in self._by_name:
            raise ValueError(f"duplicate node name {name!r}")
        node = NetNode(
            node_id=len(self._nodes), name=name, kind=kind, as_id=as_id,
            site=site,
        )
        self._fingerprint = None
        self._nodes.append(node)
        self._by_name[name] = node.node_id
        self._adj.append([])
        return node

    def add_host(self, name: str, as_id: int = 0, site: str = "") -> NetNode:
        """Add a host node."""
        return self.add_node(name, NodeKind.HOST, as_id=as_id, site=site)

    def add_router(self, name: str, as_id: int = 0, site: str = "") -> NetNode:
        """Add a router node."""
        return self.add_node(name, NodeKind.ROUTER, as_id=as_id, site=site)

    def add_link(
        self,
        u: int | str | NetNode,
        v: int | str | NetNode,
        bandwidth_bps: float,
        latency_s: float,
    ) -> Link:
        """Add an undirected link between two existing nodes."""
        uid, vid = self._resolve(u), self._resolve(v)
        if uid == vid:
            raise ValueError("self-links are not allowed")
        if bandwidth_bps <= 0 or latency_s <= 0:
            raise ValueError("bandwidth and latency must be positive")
        if vid < uid:
            uid, vid = vid, uid
        link = Link(
            link_id=len(self._links), u=uid, v=vid,
            bandwidth_bps=float(bandwidth_bps), latency_s=float(latency_s),
        )
        self._link_arrays = None
        self._fingerprint = None
        self._links.append(link)
        self._adj[uid].append((vid, link))
        self._adj[vid].append((uid, link))
        return link

    # ------------------------------------------------------------------ #
    # Mutation (link attribute / admin-state changes)
    # ------------------------------------------------------------------ #
    def _swap_link(self, old: Link, new: Link) -> None:
        """Replace a frozen link record everywhere it is referenced."""
        self._links[new.link_id] = new
        for nid in (new.u, new.v):
            adj = self._adj[nid]
            for i, (nbr, link) in enumerate(adj):
                if link is old:
                    adj[i] = (nbr, new)
        self._link_arrays = None
        self._fingerprint = None

    def set_link(
        self,
        link_id: int,
        *,
        bandwidth_bps: float | None = None,
        latency_s: float | None = None,
    ) -> Link:
        """Change a link's attributes in place (topology change stream).

        Endpoint ids and the link id are immutable; only the cost-bearing
        attributes change.  Invalidate-on-mutation keeps
        :meth:`fingerprint` and :meth:`link_endpoint_arrays` consistent,
        so cached artifacts keyed on the fingerprint never go stale.
        Returns the new :class:`Link` record.
        """
        from dataclasses import replace

        old = self._links[link_id]
        kw: dict[str, float] = {}
        if bandwidth_bps is not None:
            if bandwidth_bps <= 0:
                raise ValueError("bandwidth must be positive")
            kw["bandwidth_bps"] = float(bandwidth_bps)
        if latency_s is not None:
            if latency_s <= 0:
                raise ValueError("latency must be positive")
            kw["latency_s"] = float(latency_s)
        if not kw:
            return old
        new = replace(old, **kw)
        self._swap_link(old, new)
        return new

    def set_link_up(self, link_id: int, up: bool) -> Link:
        """Mark a link up or down (down = removed from routing's view).

        The link keeps its dense id so every per-link array stays
        index-stable; :meth:`link_up_array`, the routing cost graph and
        the pair lookup all honour the flag.  Returns the new record.
        """
        from dataclasses import replace

        old = self._links[link_id]
        if old.up == bool(up):
            return old
        new = replace(old, up=bool(up))
        self._swap_link(old, new)
        return new

    def _resolve(self, ref: int | str | NetNode) -> int:
        if isinstance(ref, NetNode):
            return ref.node_id
        if isinstance(ref, str):
            try:
                return self._by_name[ref]
            except KeyError:
                raise KeyError(f"no node named {ref!r}") from None
        node_id = int(ref)
        if not 0 <= node_id < len(self._nodes):
            raise IndexError(f"node id {node_id} out of range")
        return node_id

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def n_links(self) -> int:
        return len(self._links)

    @property
    def nodes(self) -> list[NetNode]:
        return list(self._nodes)

    @property
    def links(self) -> list[Link]:
        return list(self._links)

    def node(self, ref: int | str) -> NetNode:
        """Node by id or name."""
        return self._nodes[self._resolve(ref)]

    def link(self, link_id: int) -> Link:
        return self._links[link_id]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def neighbors(self, ref: int | str) -> list[tuple[int, Link]]:
        """``(neighbor id, link)`` pairs incident to a node."""
        return list(self._adj[self._resolve(ref)])

    def degree(self, ref: int | str) -> int:
        return len(self._adj[self._resolve(ref)])

    def hosts(self) -> list[NetNode]:
        """All host nodes, in id order."""
        return [n for n in self._nodes if n.is_host]

    def routers(self) -> list[NetNode]:
        """All router nodes, in id order."""
        return [n for n in self._nodes if n.is_router]

    def as_sizes(self) -> dict[int, int]:
        """Router count per AS (the ``x`` in the memory model 10 + x²)."""
        sizes: dict[int, int] = {}
        for node in self._nodes:
            if node.is_router:
                sizes[node.as_id] = sizes.get(node.as_id, 0) + 1
        return sizes

    def node_total_bandwidth(self, ref: int | str) -> float:
        """Sum of incident link capacities — the TOP vertex weight."""
        return float(
            sum(
                link.bandwidth_bps
                for _, link in self._adj[self._resolve(ref)]
                if link.up
            )
        )

    def link_endpoint_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(u, v, latency_s, bandwidth_bps)`` arrays over links, in
        link-id order.  Built lazily and cached; invalidated by
        :meth:`add_link`.  The arrays back the vectorized hot paths
        (lookahead, cut analysis) — do not mutate them in place."""
        if self._link_arrays is None:
            m = len(self._links)
            u = np.empty(m, dtype=np.int64)
            v = np.empty(m, dtype=np.int64)
            lat = np.empty(m, dtype=np.float64)
            bw = np.empty(m, dtype=np.float64)
            for i, link in enumerate(self._links):
                u[i] = link.u
                v[i] = link.v
                lat[i] = link.latency_s
                bw[i] = link.bandwidth_bps
            self._link_arrays = (u, v, lat, bw)
        return self._link_arrays

    def link_up_array(self) -> np.ndarray:
        """``bool[n_links]`` administrative state, in link-id order."""
        return np.fromiter(
            (link.up for link in self._links), dtype=bool,
            count=len(self._links),
        )

    def fingerprint(self) -> str:
        """Stable content hash of the network's structure.

        Two networks built the same way hash identically across processes
        and interpreter runs; any :meth:`add_node` / :meth:`add_link`
        invalidates the cached value.  This is the cache key component the
        artifact cache (:mod:`repro.runtime.cache`) uses for routing tables
        and emulation runs.
        """
        if self._fingerprint is None:
            import hashlib

            h = hashlib.sha256()
            h.update(self.name.encode("utf-8"))
            for node in self._nodes:
                h.update(
                    f"|n:{node.name}:{node.kind.value}:{node.as_id}:"
                    f"{node.site}".encode("utf-8")
                )
            for link in self._links:
                # Down links append a marker; fingerprints of all-up
                # networks are unchanged from previous releases, and a
                # down-then-up round trip restores the original hash
                # (which is what makes change-then-revert streams hit
                # the artifact cache).
                h.update(
                    f"|l:{link.u}:{link.v}:{link.bandwidth_bps!r}:"
                    f"{link.latency_s!r}"
                    f"{'' if link.up else ':down'}".encode("utf-8")
                )
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def cache_token(self) -> tuple:
        """Token consumed by :func:`repro.runtime.fingerprint.stable_hash`."""
        return ("Network", self.fingerprint())

    def find_link(self, u: int | str, v: int | str) -> Link | None:
        """Link between two nodes, or None."""
        uid, vid = self._resolve(u), self._resolve(v)
        for nbr, link in self._adj[uid]:
            if nbr == vid:
                return link
        return None

    # ------------------------------------------------------------------ #
    # Validation / conversion
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check the network is non-empty, connected, and well-formed."""
        if self.n_nodes == 0:
            raise ValueError("empty network")
        seen_pairs: set[tuple[int, int]] = set()
        for link in self._links:
            if not link.up:
                continue
            pair = (link.u, link.v)
            if pair in seen_pairs:
                raise ValueError(f"parallel link between {pair}")
            seen_pairs.add(pair)
        for host in self.hosts():
            if self.degree(host.node_id) == 0:
                raise ValueError(f"host {host.name} is disconnected")
        if not self.is_connected():
            raise ValueError("network is not connected")

    def is_connected(self) -> bool:
        if self.n_nodes <= 1:
            return True
        seen = np.zeros(self.n_nodes, dtype=bool)
        stack = [0]
        seen[0] = True
        while stack:
            v = stack.pop()
            for u, link in self._adj[v]:
                if link.up and not seen[u]:
                    seen[u] = True
                    stack.append(u)
        return bool(seen.all())

    def to_networkx(self) -> nx.Graph:
        """Convert to a networkx graph (node/link attributes preserved)."""
        graph = nx.Graph(name=self.name)
        for node in self._nodes:
            graph.add_node(
                node.node_id, name=node.name, kind=node.kind.value,
                as_id=node.as_id, site=node.site,
            )
        for link in self._links:
            graph.add_edge(
                link.u, link.v, link_id=link.link_id,
                bandwidth_bps=link.bandwidth_bps, latency_s=link.latency_s,
            )
        return graph

    def summary(self) -> str:
        """Table-1-style one-liner."""
        return (
            f"{self.name}: {len(self.routers())} routers, "
            f"{len(self.hosts())} hosts, {self.n_links} links"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Network {self.summary()}>"
