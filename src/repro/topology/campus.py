"""The Campus network: a section of a university campus (Table 1).

20 routers / 40 hosts, emulated on 3 engine nodes in the paper.  The
construction is the standard three-tier campus design: a redundant core pair,
six distribution routers in two buildings-groups, and twelve access routers
with the hosts (labs/offices) hanging off them.  All values are
deterministic; there is no randomness in this topology.
"""

from __future__ import annotations

from repro.topology.elements import Gbps, Mbps, ms, us
from repro.topology.network import Network

__all__ = ["campus_network", "CAMPUS_ROUTERS", "CAMPUS_HOSTS"]

CAMPUS_ROUTERS = 20
CAMPUS_HOSTS = 40


def campus_network() -> Network:
    """Build the Campus topology (20 routers, 40 hosts).

    Tiers (latencies reflect 2003-era store-and-forward campus gear)::

        core[2]  --1G,  0.5 ms-- core ring
        dist[6]  --155M,0.8 ms-- to both cores (redundant uplinks on dist0/3)
        acc[12]  --100M,1.5 ms-- two access routers per distribution router
        hosts[40]--10M, 0.5 ms-- 3-4 hosts per access router (shared LAN)
    """
    net = Network("campus")

    cores = [net.add_router(f"core{i}", site="core") for i in range(2)]
    net.add_link(cores[0], cores[1], Gbps(1), ms(0.5))

    dists = [net.add_router(f"dist{i}", site=f"bldg{i // 3}") for i in range(6)]
    for i, dist in enumerate(dists):
        # Primary uplink to the nearer core.
        net.add_link(dist, cores[i % 2], Mbps(155), ms(0.8))
        # Redundant uplink for the first distribution router in each group.
        if i % 3 == 0:
            net.add_link(dist, cores[(i + 1) % 2], Mbps(155), ms(0.9))

    accs = []
    for i in range(12):
        acc = net.add_router(f"acc{i}", site=f"bldg{(i // 6)}")
        accs.append(acc)
        net.add_link(acc, dists[i % 6], Mbps(100), ms(1.5))

    # 40 hosts, unevenly distributed (dense lab subnets vs sparse offices) —
    # the heterogeneity a real campus section has.
    host_counts = [8, 6, 5, 4, 4, 3, 2, 2, 2, 2, 1, 1]  # sums to 40
    hid = 0
    for acc, count in zip(accs, host_counts):
        for _ in range(count):
            host = net.add_host(f"h{hid}", site=acc.site)
            net.add_link(host, acc, Mbps(10), ms(0.5))
            hid += 1

    assert len(net.routers()) == CAMPUS_ROUTERS
    assert len(net.hosts()) == CAMPUS_HOSTS
    net.validate()
    return net
