"""Synthetic hierarchical topology generator for scalability studies.

The paper's experiments stop at 200 routers because its BRITE build could
not emit multi-AS topologies and the per-router routing state grows as
``10 + x**2`` with AS size ``x``.  This module generates the topology the
paper *argues toward*: a BRITE-like Internet of many ASes — each AS an
intra-domain Barabási–Albert router graph, ASes wired together by a second
preferential-attachment process at the AS level — so partitioning can be
stress-tested at 1k–10k routers while every AS stays small enough for the
memory model.

Design notes
------------
- Everything is deterministic from ``SynthConfig.seed``.
- The preferential-attachment sampler draws from a *preallocated* numpy
  endpoint array instead of an ever-growing python list (the naive version
  is O(n²) from list reallocation + ``rng.choice`` setup, and dominates at
  10k routers).
- Configuration errors raise :class:`SynthError` with a message naming the
  offending parameter and the constraint it violates; the error-path test
  suite (``tests/topology/test_synth_errors.py``) pins those messages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.elements import Gbps, Mbps, ms
from repro.topology.network import Network

__all__ = ["SynthConfig", "SynthError", "synth_network"]


class SynthError(ValueError):
    """Invalid :class:`SynthConfig` (message names parameter + constraint)."""


@dataclass(frozen=True)
class SynthConfig:
    """Hierarchical generator parameters.

    Attributes
    ----------
    n_routers:
        Total routers across all ASes.  The scalability suite sweeps
        1000–10000.
    n_as:
        Autonomous systems.  ``0`` (default) derives a count that keeps
        ASes near ``target_as_size`` routers, the regime where the
        ``10 + x**2`` routing-memory model stays affordable.
    target_as_size:
        Preferred routers per AS when ``n_as`` is derived.
    hosts_per_router:
        Hosts attached per router on average; ``n_hosts`` overrides.
    n_hosts:
        Explicit total host count (``None`` → derived).
    ba_m:
        Edges per new router in the intra-AS Barabási–Albert process.
    as_m:
        Edges per new AS in the inter-AS attachment process.
    plane_size_km:
        Side of the square plane AS centres are scattered on; distances
        set propagation latencies.
    seed:
        RNG seed; the generator is fully deterministic given the config.
    """

    n_routers: int = 1000
    n_as: int = 0
    target_as_size: int = 50
    hosts_per_router: float = 1.0
    n_hosts: int | None = None
    ba_m: int = 2
    as_m: int = 2
    plane_size_km: float = 8000.0
    seed: int = 0


_SPEED_KM_PER_S = 2.0e5  # signal speed in fibre, ~2/3 c


def _validate(config: SynthConfig) -> tuple[int, int]:
    """Check the config; return the resolved ``(n_as, n_hosts)``."""
    if config.n_routers < 2:
        raise SynthError(
            f"n_routers must be >= 2, got {config.n_routers}"
        )
    if config.ba_m < 1:
        raise SynthError(f"ba_m must be >= 1, got {config.ba_m}")
    if config.as_m < 1:
        raise SynthError(f"as_m must be >= 1, got {config.as_m}")
    if config.target_as_size < 1:
        raise SynthError(
            f"target_as_size must be >= 1, got {config.target_as_size}"
        )
    if config.plane_size_km <= 0:
        raise SynthError(
            f"plane_size_km must be positive, got {config.plane_size_km}"
        )
    if config.n_as < 0:
        raise SynthError(
            f"n_as must be >= 1 (or 0 to derive it), got {config.n_as}"
        )
    min_as_size = config.ba_m + 1
    n_as = config.n_as
    if n_as == 0:
        # Derived counts are clamped so every AS keeps >= ba_m + 1 routers
        # (the BA process degrades gracefully below that, but the caller
        # never asked for degenerate ASes, so avoid them).
        n_as = max(1, min(round(config.n_routers / config.target_as_size),
                          config.n_routers // min_as_size))
    elif config.n_routers < n_as * min_as_size:
        raise SynthError(
            f"n_as={n_as} leaves fewer than ba_m+1={min_as_size} routers "
            f"per AS (n_routers={config.n_routers}); lower n_as or ba_m"
        )
    if config.n_hosts is not None:
        if config.n_hosts < 0:
            raise SynthError(
                f"n_hosts must be >= 0, got {config.n_hosts}"
            )
        n_hosts = config.n_hosts
    else:
        if config.hosts_per_router < 0:
            raise SynthError(
                "hosts_per_router must be >= 0, got "
                f"{config.hosts_per_router}"
            )
        n_hosts = int(round(config.n_routers * config.hosts_per_router))
    return n_as, n_hosts


def _ba_edges(
    n: int, m: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Barabási–Albert edges on ``n`` vertices, ``m`` per arrival.

    Preferential attachment samples uniformly from the endpoint multiset;
    the multiset lives in a preallocated array sized for the final edge
    count, so generation is O(n·m) instead of the O(n²) a growing python
    list costs.
    """
    m = min(m, n - 1)
    n_seed = m + 1
    n_edges = n_seed * (n_seed - 1) // 2 + (n - n_seed) * m
    eu = np.empty(n_edges, dtype=np.int64)
    ev = np.empty(n_edges, dtype=np.int64)
    targets = np.empty(2 * n_edges, dtype=np.int64)
    e = t = 0
    for i in range(n_seed):  # seed clique keeps the early graph connected
        for j in range(i + 1, n_seed):
            eu[e] = i
            ev[e] = j
            targets[t] = i
            targets[t + 1] = j
            e += 1
            t += 2
    for new in range(n_seed, n):
        chosen: set[int] = set()
        while len(chosen) < m:
            chosen.add(int(targets[int(rng.integers(t))]))
        for tgt in chosen:
            eu[e] = tgt
            ev[e] = new
            targets[t] = tgt
            targets[t + 1] = new
            e += 1
            t += 2
    return eu[:e], ev[:e]


def synth_network(config: SynthConfig | None = None, **overrides) -> Network:
    """Generate a hierarchical AS-of-routers network.

    ``overrides`` are applied on top of ``config`` (or the defaults), e.g.
    ``synth_network(n_routers=5000, seed=7)``.
    """
    if config is None:
        config = SynthConfig(**overrides)
    elif overrides:
        config = SynthConfig(**{**config.__dict__, **overrides})
    n_as, n_hosts = _validate(config)
    rng = np.random.default_rng(config.seed)
    n = config.n_routers

    # Contiguous router-id blocks per AS, sizes differing by at most one.
    sizes = np.full(n_as, n // n_as, dtype=np.int64)
    sizes[: n % n_as] += 1
    offsets = np.zeros(n_as + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    as_of = np.repeat(np.arange(n_as, dtype=np.int64), sizes)

    # Geometry: AS centres on the plane, routers clustered around them.
    centers = rng.uniform(0.0, config.plane_size_km, size=(n_as, 2))
    spread = config.plane_size_km / (4.0 * max(np.sqrt(n_as), 1.0))
    pos = centers[as_of] + rng.normal(0.0, spread, size=(n, 2))

    # Intra-AS fabric: one BA graph per AS (local vertex ids + offset).
    intra_u: list[np.ndarray] = []
    intra_v: list[np.ndarray] = []
    for a in range(n_as):
        eu, ev = _ba_edges(int(sizes[a]), config.ba_m, rng)
        intra_u.append(eu + offsets[a])
        intra_v.append(ev + offsets[a])
    iu = np.concatenate(intra_u)
    iv = np.concatenate(intra_v)

    # Inter-AS backbone: preferential attachment over ASes, each AS-level
    # edge realized between a random router of each side.
    if n_as > 1:
        au, av = _ba_edges(n_as, config.as_m, rng)
        gu = offsets[au] + rng.integers(0, sizes[au])
        gv = offsets[av] + rng.integers(0, sizes[av])
    else:
        gu = np.zeros(0, dtype=np.int64)
        gv = np.zeros(0, dtype=np.int64)

    net = Network(f"synth-{n}r{n_hosts}h-{n_as}as")
    routers = [
        net.add_router(f"r{i}", as_id=int(as_of[i]), site=f"as{int(as_of[i])}")
        for i in range(n)
    ]

    # Tiered capacities: inter-AS trunks are 10 Gbps; within an AS the
    # top-degree decile forms a 2.5 Gbps regional backbone over 622 Mbps
    # access links (BRITE's bandwidth-assignment step, hierarchically).
    degree = np.bincount(
        np.concatenate([iu, iv, gu, gv]), minlength=n
    )
    backbone_cut = np.quantile(degree, 0.9)

    def _lat(a: int, b: int) -> float:
        d = float(np.hypot(*(pos[a] - pos[b])))
        return max(d / _SPEED_KM_PER_S, 1.0e-3)

    for u, v in zip(iu.tolist(), iv.tolist()):
        if degree[u] >= backbone_cut and degree[v] >= backbone_cut:
            bw = Gbps(2.5)
        else:
            bw = Mbps(622)
        net.add_link(routers[u], routers[v], bw, _lat(u, v))
    seen_pairs = {(min(u, v), max(u, v)) for u, v in zip(iu, iv)}
    for u, v in zip(gu.tolist(), gv.tolist()):
        pair = (min(u, v), max(u, v))
        if u == v or pair in seen_pairs:  # rare gateway collision
            continue
        seen_pairs.add(pair)
        net.add_link(routers[u], routers[v], Gbps(10), _lat(u, v))

    # Hosts cluster on low-degree (edge) routers with Zipf-like weights —
    # stub networks come in very different sizes, and the skew is what
    # gives profiled traffic its spatial structure.
    if n_hosts:
        edge_ids = np.nonzero(degree <= np.median(degree))[0]
        if len(edge_ids) == 0:
            edge_ids = np.arange(n)
        weights = (rng.permutation(len(edge_ids)) + 1.0) ** -1.1
        weights /= weights.sum()
        attach = rng.choice(len(edge_ids), size=n_hosts, replace=True,
                            p=weights)
        for h in range(n_hosts):
            r = int(edge_ids[int(attach[h])])
            host = net.add_host(
                f"h{h}", as_id=int(as_of[r]), site=f"as{int(as_of[r])}"
            )
            net.add_link(host, routers[r], Mbps(100), ms(2.5))

    net.validate()
    return net
