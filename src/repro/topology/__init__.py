"""Virtual-network model and the paper's topology families.

- :mod:`repro.topology.elements` / :mod:`repro.topology.network` — hosts,
  routers, links, and the :class:`~repro.topology.network.Network` container.
- :func:`repro.topology.campus.campus_network` — the Campus network
  (20 routers / 40 hosts, Table 1).
- :func:`repro.topology.teragrid.teragrid_network` — the 5-site TeraGrid
  (27 routers / 150 hosts, 40 Gbps backbone, Table 1 / Figure 3).
- :func:`repro.topology.brite.brite_network` — BRITE-like Internet topology
  generator (Barabási–Albert or Waxman), used for the 160-router and
  200-router experiments.
- :func:`repro.topology.synth.synth_network` — hierarchical AS-of-routers
  generator for the 1k–10k router scalability studies.
- :mod:`repro.topology.dml` — the network description file format
  (MaSSF stores networks in DML; we provide a round-trippable equivalent).
"""

from repro.topology.brite import brite_network
from repro.topology.campus import campus_network
from repro.topology.elements import Link, NetNode, NodeKind
from repro.topology.network import Network
from repro.topology.synth import SynthConfig, SynthError, synth_network
from repro.topology.teragrid import teragrid_network

__all__ = [
    "NodeKind",
    "NetNode",
    "Link",
    "Network",
    "campus_network",
    "teragrid_network",
    "brite_network",
    "synth_network",
    "SynthConfig",
    "SynthError",
]
