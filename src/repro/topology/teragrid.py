"""The TeraGrid network (Table 1 / Figure 3).

27 routers / 150 hosts over five sites (SDSC, NCSA, ANL, Caltech, PSC),
emulated on 5 engine nodes in the paper.  Each site follows the Figure 3
site architecture — a border router into the 40 Gbps backbone, a redundant
pair of site core routers, and cluster switches with the compute hosts —
and the backbone joins the sites through the two TeraGrid hubs (Los
Angeles and Chicago).

Router budget (27): 2 hub routers + 5 sites × (1 border + 2 core + 2
cluster) = 2 + 25 = 27.  Host budget (150): 30 compute hosts per site.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.elements import Gbps, Mbps, ms, us
from repro.topology.network import Network

__all__ = ["teragrid_network", "TERAGRID_SITES", "SiteSpec"]


@dataclass(frozen=True)
class SiteSpec:
    """One TeraGrid site: name, hub it homes to, and hub latency."""

    name: str
    hub: str
    hub_latency_s: float
    n_hosts: int = 30


# One-way latencies approximate the real fibre routes (2003 era).
TERAGRID_SITES: tuple[SiteSpec, ...] = (
    SiteSpec("sdsc", "hub-la", ms(2.0)),
    SiteSpec("caltech", "hub-la", ms(1.0)),
    SiteSpec("ncsa", "hub-chi", ms(2.5)),
    SiteSpec("anl", "hub-chi", ms(1.0)),
    SiteSpec("psc", "hub-chi", ms(5.5)),
)


def teragrid_network() -> Network:
    """Build the 5-site TeraGrid topology (27 routers, 150 hosts)."""
    net = Network("teragrid")

    hub_la = net.add_router("hub-la", site="backbone")
    hub_chi = net.add_router("hub-chi", site="backbone")
    # The LA—Chicago backbone: 40 Gbps, ~10 ms one way.
    net.add_link(hub_la, hub_chi, Gbps(40), ms(10.0))
    hubs = {"hub-la": hub_la, "hub-chi": hub_chi}

    for spec in TERAGRID_SITES:
        border = net.add_router(f"{spec.name}-border", site=spec.name)
        net.add_link(border, hubs[spec.hub], Gbps(40), spec.hub_latency_s)

        cores = [
            net.add_router(f"{spec.name}-core{i}", site=spec.name)
            for i in range(2)
        ]
        for core in cores:
            net.add_link(core, border, Gbps(10), ms(0.8))
        net.add_link(cores[0], cores[1], Gbps(10), ms(0.5))

        clusters = [
            net.add_router(f"{spec.name}-sw{i}", site=spec.name)
            for i in range(2)
        ]
        for i, sw in enumerate(clusters):
            net.add_link(sw, cores[i], Gbps(10), ms(0.5))

        per_switch = spec.n_hosts // 2
        for h in range(spec.n_hosts):
            host = net.add_host(f"{spec.name}-n{h}", site=spec.name)
            net.add_link(host, clusters[h // per_switch if h // per_switch < 2
                                        else 1], Mbps(100), ms(0.5))

    assert len(net.routers()) == 27, len(net.routers())
    assert len(net.hosts()) == 150, len(net.hosts())
    net.validate()
    return net
