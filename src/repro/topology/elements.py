"""Network element records: nodes (hosts/routers) and links.

Units used throughout the package:

- bandwidth — bits per second (``bps``)
- latency — seconds (one-way propagation delay)
- sizes — bytes
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["NodeKind", "NetNode", "Link", "Mbps", "Gbps", "ms", "us"]

# Unit helpers — keep literal topologies readable.
def Mbps(x: float) -> float:
    """Megabits/second to bits/second."""
    return float(x) * 1e6


def Gbps(x: float) -> float:
    """Gigabits/second to bits/second."""
    return float(x) * 1e9


def ms(x: float) -> float:
    """Milliseconds to seconds."""
    return float(x) * 1e-3


def us(x: float) -> float:
    """Microseconds to seconds."""
    return float(x) * 1e-6


class NodeKind(enum.Enum):
    """Virtual node kind; routers carry routing tables, hosts attach apps."""

    HOST = "host"
    ROUTER = "router"


@dataclass(frozen=True)
class NetNode:
    """A virtual network node.

    Attributes
    ----------
    node_id:
        Dense integer id; doubles as the partition-graph vertex id.
    name:
        Human-readable name (unique within a network).
    kind:
        Host or router.
    as_id:
        Autonomous-system id; the routing-table memory model is per-AS.
    site:
        Optional site/subnet label (e.g. TeraGrid site) used for placement.
    """

    node_id: int
    name: str
    kind: NodeKind
    as_id: int = 0
    site: str = ""

    @property
    def is_router(self) -> bool:
        return self.kind is NodeKind.ROUTER

    @property
    def is_host(self) -> bool:
        return self.kind is NodeKind.HOST


@dataclass(frozen=True)
class Link:
    """An undirected virtual link (full-duplex).

    Attributes
    ----------
    link_id:
        Dense integer id.
    u, v:
        Endpoint node ids (``u < v`` by construction in ``Network``).
    bandwidth_bps:
        Link capacity in bits/second (per direction).
    latency_s:
        One-way propagation delay in seconds.
    up:
        Administrative state.  A down link keeps its (dense) id — every
        per-link array in the package stays index-stable — but routing
        treats it as absent.  Toggled via ``Network.set_link_up``.
    """

    link_id: int
    u: int
    v: int
    bandwidth_bps: float
    latency_s: float
    up: bool = True

    def other(self, node_id: int) -> int:
        """Endpoint opposite ``node_id``."""
        if node_id == self.u:
            return self.v
        if node_id == self.v:
            return self.u
        raise ValueError(f"node {node_id} not on link {self.link_id}")

    def tx_time(self, nbytes: float) -> float:
        """Transmission (serialization) time for ``nbytes`` bytes."""
        return nbytes * 8.0 / self.bandwidth_bps
