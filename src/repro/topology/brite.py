"""BRITE-like Internet topology generator.

The paper's third topology family is produced with a generator adapted from
the BRITE toolkit (Medina et al., MASCOTS'01).  BRITE places routers on a
plane and wires them with either the Barabási–Albert preferential-attachment
model or the Waxman model; we implement both, then attach hosts to the
low-degree (edge) routers and assign link capacities by tier, which mirrors
BRITE's bandwidth-assignment step.

Per the paper's scalability section, all routers live in a single AS (the
BRITE tool of the time could not create BGP inter-AS topologies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.elements import Gbps, Mbps, ms, us
from repro.topology.network import Network

__all__ = ["BriteConfig", "brite_network"]


@dataclass(frozen=True)
class BriteConfig:
    """Generator parameters.

    Attributes
    ----------
    n_routers, n_hosts:
        Table 1 uses 160/132; the scalability experiment uses 200/364.
    model:
        ``"ba"`` (Barabási–Albert, default — heavy-tailed degrees) or
        ``"waxman"``.
    ba_m:
        Edges added per new router in the BA model.
    waxman_alpha, waxman_beta:
        Waxman edge-probability parameters.
    plane_size_km:
        Side of the square placement plane; latency = distance / (2/3 c).
    n_as:
        Autonomous systems.  The paper's BRITE could only build a single AS
        ("the current BRITE tool cannot create networks using BGP routers"),
        which capped their experiments at ~200 routers because the per-
        router routing-table memory grows as 10 + x² with AS size x.  With
        ``n_as > 1`` routers are assigned to ASes by spatial clustering,
        shrinking x and the memory footprint; forwarding still uses the
        global shortest-path tables (an interior-gateway view — inter-AS
        policy routing is out of scope).
    seed:
        RNG seed; the generator is fully deterministic given the config.
    """

    n_routers: int = 160
    n_hosts: int = 132
    model: str = "ba"
    ba_m: int = 2
    waxman_alpha: float = 0.15
    waxman_beta: float = 0.2
    plane_size_km: float = 4000.0
    n_as: int = 1
    seed: int = 0


_SPEED_KM_PER_S = 2.0e5  # signal speed in fibre, ~2/3 c


def _latency_from_distance(dist_km: float) -> float:
    """Propagation latency for a fibre run of ``dist_km`` (floor 1 ms —
    the emulator models links at millisecond granularity)."""
    return max(dist_km / _SPEED_KM_PER_S, 1.0e-3)


def _ba_edges(n: int, m: int, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Barabási–Albert preferential attachment edge list on ``n`` vertices."""
    if n < m + 1:
        raise ValueError("need n_routers > ba_m")
    edges: list[tuple[int, int]] = []
    # Seed clique of m+1 routers keeps the early graph connected.
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            edges.append((i, j))
    # Repeated-endpoint list implements preferential attachment.
    targets: list[int] = [v for e in edges for v in e]
    for new in range(m + 1, n):
        chosen: set[int] = set()
        while len(chosen) < m:
            pick = int(rng.choice(targets))
            chosen.add(pick)
        for t in chosen:
            edges.append((t, new))
            targets.extend((t, new))
    return edges


def _waxman_edges(
    n: int,
    pos: np.ndarray,
    alpha: float,
    beta: float,
    plane: float,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Waxman random-graph edges: P(u,v) = α·exp(−d(u,v)/(β·L))."""
    max_d = plane * np.sqrt(2.0)
    edges: list[tuple[int, int]] = []
    for u in range(n):
        for v in range(u + 1, n):
            d = float(np.hypot(*(pos[u] - pos[v])))
            p = alpha * np.exp(-d / (beta * max_d))
            if rng.random() < p:
                edges.append((u, v))
    # Stitch disconnected components with their geometrically closest pair.
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        parent[find(u)] = find(v)
    roots = {find(v) for v in range(n)}
    while len(roots) > 1:
        comp_of = {}
        for v in range(n):
            comp_of.setdefault(find(v), []).append(v)
        comps = list(comp_of.values())
        a, b = comps[0], comps[1]
        best = min(
            ((float(np.hypot(*(pos[u] - pos[v]))), u, v) for u in a for v in b)
        )
        _, u, v = best
        edges.append((u, v))
        parent[find(u)] = find(v)
        roots = {find(x) for x in range(n)}
    return edges


def brite_network(config: BriteConfig | None = None, **overrides) -> Network:
    """Generate a BRITE-like network.

    ``overrides`` are applied on top of ``config`` (or the defaults), e.g.
    ``brite_network(n_routers=200, n_hosts=364, seed=7)``.
    """
    if config is None:
        config = BriteConfig(**overrides)
    elif overrides:
        config = BriteConfig(**{**config.__dict__, **overrides})
    rng = np.random.default_rng(config.seed)
    n = config.n_routers

    pos = rng.uniform(0.0, config.plane_size_km, size=(n, 2))
    if config.model == "ba":
        edges = _ba_edges(n, config.ba_m, rng)
    elif config.model == "waxman":
        edges = _waxman_edges(
            n, pos, config.waxman_alpha, config.waxman_beta,
            config.plane_size_km, rng,
        )
    else:
        raise ValueError(f"unknown model {config.model!r}")

    if config.n_as < 1:
        raise ValueError("n_as must be >= 1")
    # Spatial AS assignment: split the plane into vertical bands with equal
    # router counts (clustered ASes, like geography-driven real ones).
    as_of = np.zeros(n, dtype=np.int64)
    if config.n_as > 1:
        x_order = np.argsort(pos[:, 0], kind="stable")
        for rank, router in enumerate(x_order):
            as_of[router] = min(rank * config.n_as // n, config.n_as - 1)

    net = Network(f"brite-{config.model}-{n}r{config.n_hosts}h")
    routers = [
        net.add_router(f"r{i}", as_id=int(as_of[i])) for i in range(n)
    ]

    degree = np.zeros(n, dtype=np.int64)
    for u, v in edges:
        degree[u] += 1
        degree[v] += 1
    # Tiered capacity assignment: the top-degree decile forms the backbone.
    backbone_cut = np.quantile(degree, 0.9)
    for u, v in edges:
        d = float(np.hypot(*(pos[u] - pos[v])))
        lat = _latency_from_distance(d)
        if degree[u] >= backbone_cut and degree[v] >= backbone_cut:
            bw = Gbps(10)
        elif degree[u] >= backbone_cut or degree[v] >= backbone_cut:
            bw = Gbps(2.5)
        else:
            bw = Mbps(622)  # OC-12 style regional link
        net.add_link(routers[u], routers[v], bw, lat)

    # Hosts attach to edge (below-median-degree) routers with Zipf-like
    # weights: real stub networks come in very different sizes (a campus
    # hangs hundreds of hosts off one router, a branch office two), and
    # this clustering is what gives the traffic its spatial skew.
    edge_router_ids = [i for i in range(n) if degree[i] <= np.median(degree)]
    if not edge_router_ids:
        edge_router_ids = list(range(n))
    ranked = rng.permutation(len(edge_router_ids))
    weights = (np.argsort(ranked) + 1.0) ** -1.1
    weights /= weights.sum()
    attachments = rng.choice(
        len(edge_router_ids), size=config.n_hosts, replace=True, p=weights
    )
    for h in range(config.n_hosts):
        attach = edge_router_ids[int(attachments[h])]
        host = net.add_host(
            f"h{h}", as_id=int(as_of[attach]), site=f"stub{attach}"
        )
        net.add_link(host, routers[attach], Mbps(100), ms(2.5))

    net.validate()
    return net
