"""Network description file format (DML-style).

MaSSF stores the emulated network in a DML file (§2.2.1: "this information
is stored in the network description file and can be easily translated to a
vertex and adjacent edge graph").  We implement an equivalent bracketed
key–value format that round-trips :class:`~repro.topology.network.Network`::

    net [
      name "campus"
      node [ id 0 name "core0" kind router as 0 site "core" ]
      ...
      link [ id 0 from 0 to 1 bandwidth 1e10 latency 1e-4 ]
      ...
    ]

Tokens are whitespace-separated; strings are double-quoted; brackets nest.
"""

from __future__ import annotations

import io
from typing import Iterator

from repro.topology.elements import NodeKind
from repro.topology.network import Network

__all__ = ["dumps", "loads", "dump", "load", "DMLError"]


class DMLError(ValueError):
    """Raised on malformed DML input."""


# --------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------- #
def dumps(net: Network) -> str:
    """Serialize a network to DML text."""
    out = io.StringIO()
    out.write("net [\n")
    out.write(f'  name "{net.name}"\n')
    for node in net.nodes:
        out.write(
            f"  node [ id {node.node_id} name \"{node.name}\" "
            f"kind {node.kind.value} as {node.as_id} site \"{node.site}\" ]\n"
        )
    for link in net.links:
        out.write(
            f"  link [ id {link.link_id} from {link.u} to {link.v} "
            f"bandwidth {link.bandwidth_bps!r} latency {link.latency_s!r} ]\n"
        )
    out.write("]\n")
    return out.getvalue()


def dump(net: Network, path) -> None:
    """Serialize to a file path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(net))


# --------------------------------------------------------------------- #
# Tokenizer + parser
# --------------------------------------------------------------------- #
def _tokenize(text: str) -> Iterator[str]:
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c.isspace():
            i += 1
        elif c in "[]":
            yield c
            i += 1
        elif c == '"':
            j = text.find('"', i + 1)
            if j < 0:
                raise DMLError("unterminated string")
            yield text[i : j + 1]
            i = j + 1
        elif c == "#":  # comment to end of line
            j = text.find("\n", i)
            i = n if j < 0 else j + 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in "[]":
                j += 1
            yield text[i:j]
            i = j


def _parse_block(tokens: list[str], pos: int) -> tuple[dict, int]:
    """Parse tokens after an opening '[' into a multimap dict."""
    result: dict[str, list] = {}
    while pos < len(tokens):
        tok = tokens[pos]
        if tok == "]":
            return result, pos + 1
        key = tok
        pos += 1
        if pos >= len(tokens):
            raise DMLError(f"dangling key {key!r}")
        if tokens[pos] == "[":
            value, pos = _parse_block(tokens, pos + 1)
        else:
            value = tokens[pos]
            pos += 1
        result.setdefault(key, []).append(value)
    raise DMLError("unbalanced brackets")


def _scalar(block: dict, key: str, default=None):
    values = block.get(key)
    if not values:
        if default is not None:
            return default
        raise DMLError(f"missing key {key!r}")
    value = values[0]
    if isinstance(value, str) and value.startswith('"'):
        return value[1:-1]
    return value


def loads(text: str) -> Network:
    """Parse DML text into a :class:`Network`."""
    tokens = list(_tokenize(text))
    if len(tokens) < 3 or tokens[0] != "net" or tokens[1] != "[":
        raise DMLError("expected top-level 'net [ ... ]'")
    block, pos = _parse_block(tokens, 2)
    if pos != len(tokens):
        raise DMLError("trailing tokens after net block")

    net = Network(str(_scalar(block, "name", default="net")))
    nodes = sorted(block.get("node", []), key=lambda b: int(_scalar(b, "id")))
    for i, nb in enumerate(nodes):
        if int(_scalar(nb, "id")) != i:
            raise DMLError("node ids must be dense and start at 0")
        kind = str(_scalar(nb, "kind"))
        try:
            node_kind = NodeKind(kind)
        except ValueError:
            raise DMLError(f"unknown node kind {kind!r}") from None
        net.add_node(
            str(_scalar(nb, "name")),
            node_kind,
            as_id=int(_scalar(nb, "as", default="0")),
            site=str(_scalar(nb, "site", default="")),
        )
    links = sorted(block.get("link", []), key=lambda b: int(_scalar(b, "id")))
    for lb in links:
        net.add_link(
            int(_scalar(lb, "from")),
            int(_scalar(lb, "to")),
            float(_scalar(lb, "bandwidth")),
            float(_scalar(lb, "latency")),
        )
    return net


def load(path) -> Network:
    """Parse a DML file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
