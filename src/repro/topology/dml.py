"""Network description file format (DML-style).

MaSSF stores the emulated network in a DML file (§2.2.1: "this information
is stored in the network description file and can be easily translated to a
vertex and adjacent edge graph").  We implement an equivalent bracketed
key–value format that round-trips :class:`~repro.topology.network.Network`::

    net [
      name "campus"
      node [ id 0 name "core0" kind router as 0 site "core" ]
      ...
      link [ id 0 from 0 to 1 bandwidth 1e10 latency 1e-4 ]
      ...
    ]

Tokens are whitespace-separated; strings are double-quoted; brackets nest.
"""

from __future__ import annotations

import io
from typing import Iterator

from repro.topology.elements import NodeKind
from repro.topology.network import Network

__all__ = ["dumps", "loads", "dump", "load", "DMLError"]


class DMLError(ValueError):
    """Raised on malformed DML input."""


# --------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------- #
def dumps(net: Network) -> str:
    """Serialize a network to DML text."""
    out = io.StringIO()
    out.write("net [\n")
    out.write(f'  name "{net.name}"\n')
    for node in net.nodes:
        out.write(
            f"  node [ id {node.node_id} name \"{node.name}\" "
            f"kind {node.kind.value} as {node.as_id} site \"{node.site}\" ]\n"
        )
    for link in net.links:
        out.write(
            f"  link [ id {link.link_id} from {link.u} to {link.v} "
            f"bandwidth {link.bandwidth_bps!r} latency {link.latency_s!r} ]\n"
        )
    out.write("]\n")
    return out.getvalue()


def dump(net: Network, path) -> None:
    """Serialize to a file path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(net))


# --------------------------------------------------------------------- #
# Tokenizer + parser
# --------------------------------------------------------------------- #
def _tokenize(text: str) -> Iterator[str]:
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c.isspace():
            i += 1
        elif c in "[]":
            yield c
            i += 1
        elif c == '"':
            j = text.find('"', i + 1)
            if j < 0:
                raise DMLError("unterminated string")
            yield text[i : j + 1]
            i = j + 1
        elif c == "#":  # comment to end of line
            j = text.find("\n", i)
            i = n if j < 0 else j + 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in "[]":
                j += 1
            yield text[i:j]
            i = j


def _parse_block(tokens: list[str], pos: int) -> tuple[dict, int]:
    """Parse tokens after an opening '[' into a multimap dict."""
    result: dict[str, list] = {}
    while pos < len(tokens):
        tok = tokens[pos]
        if tok == "]":
            return result, pos + 1
        key = tok
        pos += 1
        if pos >= len(tokens):
            raise DMLError(f"dangling key {key!r}")
        if tokens[pos] == "[":
            value, pos = _parse_block(tokens, pos + 1)
        else:
            value = tokens[pos]
            pos += 1
        result.setdefault(key, []).append(value)
    raise DMLError("unbalanced brackets")


def _scalar(block: dict, key: str, default=None, where: str = "net block"):
    values = block.get(key)
    if not values:
        if default is not None:
            return default
        raise DMLError(f"{where}: missing key {key!r}")
    value = values[0]
    if isinstance(value, dict):
        raise DMLError(
            f"{where}: key {key!r} must be a scalar, got a nested block"
        )
    if isinstance(value, str) and value.startswith('"'):
        return value[1:-1]
    return value


def _int_scalar(block: dict, key: str, default=None, where: str = "net block"):
    raw = _scalar(block, key, default=default, where=where)
    try:
        return int(raw)
    except ValueError:
        raise DMLError(
            f"{where}: key {key!r} must be an integer, got {raw!r}"
        ) from None


def _float_scalar(
    block: dict, key: str, default=None, where: str = "net block"
):
    raw = _scalar(block, key, default=default, where=where)
    try:
        return float(raw)
    except ValueError:
        raise DMLError(
            f"{where}: key {key!r} must be a number, got {raw!r}"
        ) from None


def loads(text: str) -> Network:
    """Parse DML text into a :class:`Network`.

    Malformed input raises :class:`DMLError` whose message names the
    offending block (``node block 3``, ``link block 0``) and the key or
    constraint violated, so a bad line in a thousand-node file is findable.
    """
    tokens = list(_tokenize(text))
    if len(tokens) < 3 or tokens[0] != "net" or tokens[1] != "[":
        raise DMLError("expected top-level 'net [ ... ]'")
    block, pos = _parse_block(tokens, 2)
    if pos != len(tokens):
        raise DMLError("trailing tokens after net block")

    net = Network(str(_scalar(block, "name", default="net")))
    node_blocks = block.get("node", [])
    for b in node_blocks:
        if not isinstance(b, dict):
            raise DMLError(f"node entries must be blocks, got {b!r}")
    nodes = sorted(
        node_blocks,
        key=lambda b: _int_scalar(b, "id", where="node block"),
    )
    for i, nb in enumerate(nodes):
        where = f"node block {i}"
        if _int_scalar(nb, "id", where=where) != i:
            raise DMLError("node ids must be dense and start at 0")
        kind = str(_scalar(nb, "kind", where=where))
        try:
            node_kind = NodeKind(kind)
        except ValueError:
            raise DMLError(f"{where}: unknown node kind {kind!r}") from None
        try:
            net.add_node(
                str(_scalar(nb, "name", where=where)),
                node_kind,
                as_id=_int_scalar(nb, "as", default="0", where=where),
                site=str(_scalar(nb, "site", default="", where=where)),
            )
        except ValueError as exc:
            raise DMLError(f"{where}: {exc}") from None
    link_blocks = block.get("link", [])
    for b in link_blocks:
        if not isinstance(b, dict):
            raise DMLError(f"link entries must be blocks, got {b!r}")
    links = sorted(
        link_blocks,
        key=lambda b: _int_scalar(b, "id", where="link block"),
    )
    for lb in links:
        where = f"link block {_int_scalar(lb, 'id', where='link block')}"
        u = _int_scalar(lb, "from", where=where)
        v = _int_scalar(lb, "to", where=where)
        try:
            net.add_link(
                u,
                v,
                _float_scalar(lb, "bandwidth", where=where),
                _float_scalar(lb, "latency", where=where),
            )
        except (ValueError, IndexError, KeyError) as exc:
            raise DMLError(f"{where}: {exc}") from None
    return net


def load(path) -> Network:
    """Parse a DML file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
