"""Request handlers: one module-level callable per job kind.

Handlers are registered in a module-level registry via
:func:`register_handler` — the same discipline the parallel runtime
imposes on pooled callables (module-level, no global mutation), because
service workers run them concurrently in threads against shared warm
state; ``massf check``'s parallel-safety rule audits these registrations
(:mod:`repro.analysis.rules.parallel`).

Every handler has the signature ``handler(service, job, request) ->
dict`` where the returned dict is the JSON result body.  Handlers must:

- call ``job.checkpoint()`` between pipeline phases (prompt cancellation
  / deadline enforcement),
- reach shared state **only** through ``service.warm`` / ``service.disk``
  (never mutate a warm object: warm networks and routing states are
  shared across concurrent jobs),
- record phase timings on ``job.telemetry`` (merged into the service
  collector after the job settles).

Results include content checksums (:func:`repro.runtime.stable_hash`
over the produced arrays) so clients — and the parity tests — can verify
warm-served responses are bit-identical to cold runs.
"""

from __future__ import annotations

import threading
from dataclasses import asdict

__all__ = [
    "register_handler",
    "handler_for",
    "handle_map",
    "handle_sweep",
    "handle_emulate",
    "handle_apply_changes",
]

_HANDLERS: dict[str, object] = {}
_REGISTRY_LOCK = threading.Lock()

#: ``massf check`` lock-discipline contract: the registry is only
#: written under its lock.  Registration normally happens at import
#: time, but plugins/tests may register from any thread while workers
#: are already resolving handlers.
_GUARDED_BY = {"_HANDLERS": "_REGISTRY_LOCK"}


def register_handler(kind: str, fn) -> None:
    """Register the handler for one request kind (module import time)."""
    with _REGISTRY_LOCK:
        _HANDLERS[str(kind)] = fn


def handler_for(kind: str):
    """The registered handler, or ``None``."""
    with _REGISTRY_LOCK:
        return _HANDLERS.get(str(kind))


def _spec_with_changes(topology: dict, changes: list) -> dict:
    """Fold request changes into the topology spec (its cache identity)."""
    spec = dict(topology or {})
    if changes:
        spec = {**spec, "changes": list(changes)}
    return spec


def _workload_for(net, request, seed: int = 0):
    from repro.experiments.workloads import build_workload

    kwargs = {}
    if getattr(request, "duration", None) is not None:
        kwargs["duration"] = float(request.duration)
    return build_workload(
        net, app_name=request.app, intensity=request.intensity,
        seed=seed, **kwargs,
    )


def handle_map(service, job, request) -> dict:
    """Topology → routing → one TOP/PLACE/PROFILE mapping."""
    from repro.api import build_mapping
    from repro.obs.telemetry import _json_safe
    from repro.runtime.fingerprint import stable_hash

    tel = job.telemetry
    with tel.span("job/map"):
        net = service.warm.topology(
            _spec_with_changes(request.topology, request.changes)
        )
        job.checkpoint()
        state = service.warm.routing(net)
        job.checkpoint()
        workload = None
        if request.approach in ("place", "profile"):
            workload = _workload_for(net, request, seed=request.seed)
        mapping = build_mapping(
            net, request.k, request.approach, workload=workload,
            tables=state.tables, seed=request.seed, cache=service.disk,
        )
        job.checkpoint()
    return {
        "approach": mapping.approach,
        "k": int(mapping.k),
        "n_nodes": int(net.n_nodes),
        "parts": [int(p) for p in mapping.parts],
        "weighted_cut": float(mapping.partition.weighted_cut),
        "parts_checksum": stable_hash(mapping.parts),
        "diagnostics": _json_safe(dict(mapping.diagnostics)),
    }


def handle_sweep(service, job, request) -> dict:
    """Seed sweep of the full pipeline, multiplexed on the grid executor."""
    from repro.api import sweep

    tel = job.telemetry
    with tel.span("job/sweep"):
        net = service.warm.topology(request.topology)
        job.checkpoint()
        # Warm the routing layer so repeated sweeps share tables; the
        # sweep itself re-reads them through the disk cache.
        service.warm.routing(net)
        job.checkpoint()
        result = sweep(
            net,
            seeds=tuple(int(s) for s in request.seeds),
            app=request.app,
            k=int(request.k),
            approaches=tuple(request.approaches),
            intensity=request.intensity,
            duration=request.duration,
            workers=int(request.workers),
            cache=service.disk,
            telemetry=tel,
        )
        job.checkpoint()
    return {
        "setup": result.setup_name,
        "seeds": [int(s) for s in result.seeds],
        "imbalance": {k: asdict(v) for k, v in result.imbalance.items()},
        "app_time": {k: asdict(v) for k, v in result.app_time.items()},
        "network_time": {
            k: asdict(v) for k, v in result.network_time.items()
        },
    }


def handle_emulate(service, job, request) -> dict:
    """One emulation run; returns summary stats + a trace checksum."""
    from repro.api import emulate
    from repro.runtime.fingerprint import stable_hash

    tel = job.telemetry
    with tel.span("job/emulate"):
        net = service.warm.topology(request.topology)
        job.checkpoint()
        state = service.warm.routing(net)
        job.checkpoint()
        workload = _workload_for(net, request, seed=request.seed)
        result = emulate(
            net, tables=state.tables, workload=workload,
            engine=request.engine, k=request.k, seed=request.seed,
            train_packets=int(request.train_packets),
            telemetry=tel, cache=service.disk,
        )
        job.checkpoint()
    trace = result.trace
    return {
        "engine": result.engine,
        "n_events": int(trace.n_events),
        "wall_s": float(result.wall_s),
        "events_per_second": float(result.events_per_second),
        "trace_checksum": stable_hash(
            trace.time, trace.node, trace.next_node
        ),
    }


def handle_apply_changes(service, job, request) -> dict:
    """Routing for a changed topology, served through the delta engine.

    The base topology's warm network is **not** mutated: the changed
    network is built as its own warm entry (spec + canonical changes)
    and its routing is delta-derived from the warm base state when the
    change set is small — bit-identical to a cold rebuild.
    """
    from repro.runtime.fingerprint import stable_hash

    tel = job.telemetry
    with tel.span("job/apply_changes"):
        base = service.warm.topology(request.topology)
        service.warm.routing(base)  # ensure a delta-derivation anchor
        job.checkpoint()
        derives_before = service.warm.stats.delta_derives
        changed = service.warm.topology(
            _spec_with_changes(request.topology, request.changes)
        )
        state = service.warm.routing(changed)
        job.checkpoint()
    return {
        "n_nodes": int(changed.n_nodes),
        "n_changes": len(request.changes or ()),
        "delta_derived": service.warm.stats.delta_derives > derives_before,
        "dist_checksum": stable_hash(state.tables.dist),
        "next_hop_checksum": stable_hash(state.tables.next_hop),
    }


register_handler("map", handle_map)
register_handler("sweep", handle_sweep)
register_handler("emulate", handle_emulate)
register_handler("apply_changes", handle_apply_changes)
