"""Blocking Python client for the mapping service (stdlib ``http.client``).

The CLI's ``massf submit`` / ``massf jobs`` subcommands and the bench
driver both talk through :class:`ServiceClient`; tests use it against
:func:`repro.service.server.start_service_in_thread`.

    client = connect("http://127.0.0.1:8351")
    info = client.submit({"kind": "map", "topology": {...}, "k": 4})
    info = client.wait(info.job_id, timeout=60)
    print(info.state, info.result)
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit

from repro.service.jobs import QueueFullError
from repro.service.requests import JobInfo

__all__ = ["ServiceClient", "ServiceError", "connect"]


class ServiceError(RuntimeError):
    """Non-2xx answer from the service (`.status` carries the code)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)


class ServiceClient:
    """One service endpoint; connections are per-call (the server closes
    after each response)."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        split = urlsplit(base_url if "//" in base_url else f"//{base_url}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 8351
        self.timeout = float(timeout)

    # ------------------------------------------------------------------ #
    def _call(self, method: str, path: str, body: dict | None = None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8") or "{}")
            if response.status == 429:
                raise QueueFullError(data.get("error", "queue full"))
            if response.status >= 400:
                raise ServiceError(
                    response.status, data.get("error", "request failed")
                )
            return data
        finally:
            conn.close()

    # ------------------------------------------------------------------ #
    def submit(self, request: dict, timeout_s: float | None = None) -> JobInfo:
        """Submit a request document; raises
        :class:`~repro.service.jobs.QueueFullError` on backpressure."""
        body = dict(request)
        if timeout_s is not None:
            body["timeout_s"] = float(timeout_s)
        return JobInfo.from_dict(self._call("POST", "/api/v1/jobs", body))

    def job(self, job_id: str) -> JobInfo:
        return JobInfo.from_dict(self._call("GET", f"/api/v1/jobs/{job_id}"))

    def jobs(self) -> list[JobInfo]:
        data = self._call("GET", "/api/v1/jobs")
        return [JobInfo.from_dict(j) for j in data.get("jobs", [])]

    def cancel(self, job_id: str) -> bool:
        data = self._call("DELETE", f"/api/v1/jobs/{job_id}")
        return bool(data.get("cancelled"))

    def status(self) -> dict:
        return self._call("GET", "/api/v1/status")

    def metrics(self) -> dict:
        return self._call("GET", "/api/v1/metrics")

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_s: float = 0.05,
    ) -> JobInfo:
        """Poll until the job settles; raises TimeoutError otherwise."""
        deadline = time.monotonic() + timeout
        while True:
            info = self.job(job_id)
            if info.state in ("done", "failed", "cancelled"):
                return info
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{job_id} still {info.state} after {timeout:.1f}s"
                )
            time.sleep(poll_s)

    def events(self, max_events: int, timeout: float = 10.0) -> list[dict]:
        """Read up to ``max_events`` SSE messages (smoke-test helper)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        out: list[dict] = []
        try:
            conn.request("GET", "/api/v1/events")
            response = conn.getresponse()
            event: dict = {}
            deadline = time.monotonic() + timeout
            while len(out) < max_events and time.monotonic() < deadline:
                try:
                    line = response.fp.readline()
                except (TimeoutError, OSError):
                    break  # quiet stream — return what we have
                if not line:
                    break
                text = line.decode("utf-8").rstrip("\n")
                if text.startswith("event:"):
                    event["event"] = text[6:].strip()
                elif text.startswith("data:"):
                    event["data"] = json.loads(text[5:].strip())
                elif not text and event:
                    out.append(event)
                    event = {}
        finally:
            conn.close()
        return out


def connect(base_url: str, *, timeout: float = 30.0) -> ServiceClient:
    """Open a client for ``base_url`` (e.g. ``http://127.0.0.1:8351``)."""
    return ServiceClient(base_url, timeout=timeout)
