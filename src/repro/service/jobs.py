"""Job lifecycle for the mapping service.

A job moves ``PENDING → RUNNING → DONE | FAILED | CANCELLED``.  Jobs sit
in a **bounded** queue — the service's backpressure valve: when the
queue is full, submission raises :class:`QueueFullError` and the HTTP
layer answers 429 instead of buffering unboundedly (the multi-tenant
"many jobs, one substrate" discipline).

Deadlines are cooperative *and* signal-backed: every job carries a
:meth:`Job.checkpoint` the handlers call between pipeline phases
(raising :class:`JobCancelled` / :class:`JobTimeout` promptly even for
cancellation), and the worker additionally arms
:func:`repro.runtime.executor._arm_soft_timeout` — the SIGALRM guard
that interrupts a wedged computation on the main thread and degrades to
cooperative-only checking on worker threads (where Python forbids signal
handlers).
"""

from __future__ import annotations

import enum
import itertools
import queue
import threading
import time
from dataclasses import dataclass, field

from repro.obs.telemetry import Telemetry
from repro.service.requests import JobInfo

__all__ = [
    "JobState",
    "Job",
    "JobQueue",
    "QueueFullError",
    "JobCancelled",
    "JobTimeout",
]


class QueueFullError(RuntimeError):
    """The bounded job queue is at capacity (HTTP 429)."""


class JobCancelled(RuntimeError):
    """Raised at a checkpoint after the job was cancelled."""


class JobTimeout(RuntimeError):
    """Raised at a checkpoint after the job's deadline passed."""


class JobState(str, enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


_COUNTER = itertools.count(1)


@dataclass
class Job:
    """One submitted request plus its lifecycle state."""

    job_id: str
    request: object  # a repro.service.requests dataclass
    submitted_s: float
    timeout_s: float | None = None
    state: JobState = JobState.PENDING
    started_s: float | None = None
    finished_s: float | None = None
    error: str | None = None
    result: dict | None = None
    warm_hit: bool = False
    telemetry: Telemetry = field(default_factory=Telemetry)
    _cancel: threading.Event = field(default_factory=threading.Event)
    _done: threading.Event = field(default_factory=threading.Event)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @classmethod
    def create(cls, request, timeout_s: float | None = None) -> "Job":
        return cls(
            job_id=f"job-{next(_COUNTER)}",
            request=request,
            submitted_s=time.time(),
            timeout_s=timeout_s,
        )

    # ------------------------------------------------------------------ #
    @property
    def deadline_s(self) -> float | None:
        """Absolute wall-clock deadline (armed when the job starts)."""
        if self.timeout_s is None or self.started_s is None:
            return None
        return self.started_s + self.timeout_s

    def cancel(self) -> bool:
        """Request cancellation; True if the job was still live."""
        with self._lock:
            if self.state.terminal:
                return False
            self._cancel.set()
            if self.state is JobState.PENDING:
                # Never started: settle immediately; the worker skips it.
                self._settle(JobState.CANCELLED, error="cancelled")
            return True

    def checkpoint(self) -> None:
        """Raise if the job should stop (cancelled or past deadline).

        Handlers call this between pipeline phases; the HTTP layer's
        SIGALRM guard covers the stretches in between when available.
        """
        if self._cancel.is_set():
            raise JobCancelled(f"{self.job_id} cancelled")
        deadline = self.deadline_s
        if deadline is not None and time.time() > deadline:
            raise JobTimeout(
                f"{self.job_id} exceeded its {self.timeout_s:.1f}s deadline"
            )

    # ------------------------------------------------------------------ #
    def mark_running(self) -> bool:
        """PENDING → RUNNING; False when already settled (cancelled)."""
        with self._lock:
            if self.state is not JobState.PENDING:
                return False
            self.state = JobState.RUNNING
            self.started_s = time.time()
            return True

    def settle(
        self,
        state: JobState,
        *,
        result: dict | None = None,
        error: str | None = None,
        warm_hit: bool = False,
    ) -> None:
        with self._lock:
            if self.state.terminal:
                return
            self.warm_hit = warm_hit
            self._settle(state, result=result, error=error)

    def _settle(self, state, *, result=None, error=None) -> None:
        self.state = state
        self.result = result
        self.error = error
        self.finished_s = time.time()
        self._done.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job settles; True if it did within ``timeout``."""
        return self._done.wait(timeout)

    def info(self) -> JobInfo:
        with self._lock:
            return JobInfo(
                job_id=self.job_id,
                kind=getattr(self.request, "kind", "?"),
                state=self.state.value,
                submitted_s=self.submitted_s,
                started_s=self.started_s,
                finished_s=self.finished_s,
                deadline_s=self.deadline_s,
                error=self.error,
                result=self.result,
                warm_hit=self.warm_hit,
            )


class JobQueue:
    """Bounded FIFO of pending jobs + registry of every job ever seen."""

    #: ``massf check`` lock-discipline contract: the job registry is
    #: only written under the queue lock.
    _GUARDED_BY = {"_jobs": "_lock"}

    def __init__(self, maxsize: int = 64) -> None:
        self.maxsize = int(maxsize)
        self._queue: queue.Queue[Job | None] = queue.Queue(self.maxsize)
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()

    def offer(self, job: Job) -> Job:
        """Enqueue or raise :class:`QueueFullError` (backpressure)."""
        with self._lock:
            self._jobs[job.job_id] = job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                del self._jobs[job.job_id]
            raise QueueFullError(
                f"job queue full ({self.maxsize} pending)"
            ) from None
        return job

    def next(self, timeout: float | None = None) -> Job | None:
        """Dequeue the next job (None on timeout or wake-up sentinel)."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def wake_all(self, n: int) -> None:
        """Unblock ``n`` waiting workers with shutdown sentinels."""
        for _ in range(n):
            try:
                self._queue.put_nowait(None)
            except queue.Full:  # workers will drain and exit anyway
                break

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, submission order."""
        with self._lock:
            return list(self._jobs.values())

    @property
    def depth(self) -> int:
        """Jobs currently waiting in the queue."""
        return self._queue.qsize()
