"""Wire-format request/response dataclasses for the mapping service.

Every request crosses the HTTP boundary as JSON; these dataclasses are
the one schema shared by the server (:mod:`repro.service.handlers`), the
Python client (:mod:`repro.service.client`) and the ``massf submit``
CLI.  Each request kind knows how to

- round-trip JSON (``from_dict`` / ``to_dict``),
- produce a **canonical key** (:meth:`canonical`) — a nested tuple of
  primitives that is stable across processes and key-orderings, used for
  the warm-cache response memo and fingerprint-keyed layers.

Topology specs are plain dicts: ``{"source": "synth", "n_routers": 1000,
"seed": 0}`` (any :data:`repro.api.TOPOLOGIES` name, ``"synth"``, or a
DML path; remaining keys are factory kwargs).  Change specs are dicts
``{"op": "set_link_cost", "link_id": 5, "latency_s": 0.1}`` with ops
``set_link_cost`` / ``link_up`` / ``link_down`` / ``add_link``, decoded
by :func:`decode_changes` into :mod:`repro.routing.delta` dataclasses.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

__all__ = [
    "MapRequest",
    "SweepRequest",
    "EmulateRequest",
    "ApplyChangesRequest",
    "JobInfo",
    "REQUEST_KINDS",
    "parse_request",
    "decode_changes",
    "canonical_value",
]


def canonical_value(value: Any):
    """A hashable, order-independent form of a JSON-ish value."""
    if isinstance(value, dict):
        return tuple(
            (str(k), canonical_value(value[k])) for k in sorted(value)
        )
    if isinstance(value, (list, tuple)):
        return tuple(canonical_value(v) for v in value)
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    raise TypeError(f"non-JSON value in request: {type(value).__name__}")


def decode_changes(specs: list[dict]) -> list:
    """Decode change dicts into :mod:`repro.routing.delta` dataclasses."""
    from repro.routing.delta import AddLink, LinkDown, LinkUp, SetLinkCost

    out = []
    for spec in specs or ():
        op = str(spec.get("op", "")).strip().lower()
        if op == "set_link_cost":
            out.append(SetLinkCost(
                link_id=int(spec["link_id"]),
                bandwidth_bps=(
                    None if spec.get("bandwidth_bps") is None
                    else float(spec["bandwidth_bps"])
                ),
                latency_s=(
                    None if spec.get("latency_s") is None
                    else float(spec["latency_s"])
                ),
            ))
        elif op == "link_up":
            out.append(LinkUp(link_id=int(spec["link_id"])))
        elif op == "link_down":
            out.append(LinkDown(link_id=int(spec["link_id"])))
        elif op == "add_link":
            out.append(AddLink(
                u=int(spec["u"]), v=int(spec["v"]),
                bandwidth_bps=float(spec["bandwidth_bps"]),
                latency_s=float(spec["latency_s"]),
            ))
        else:
            raise ValueError(f"unknown change op {spec.get('op')!r}")
    return out


@dataclass(frozen=True)
class _Request:
    """Shared canonical/JSON plumbing for the request kinds."""

    def to_dict(self) -> dict:
        data = asdict(self)
        data["kind"] = self.kind  # type: ignore[attr-defined]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "_Request":
        fields = {f for f in cls.__dataclass_fields__}  # type: ignore
        kwargs = {k: v for k, v in data.items() if k in fields}
        return cls(**kwargs)

    def canonical(self) -> tuple:
        return (
            self.kind,  # type: ignore[attr-defined]
            canonical_value(asdict(self)),
        )


@dataclass(frozen=True)
class MapRequest(_Request):
    """Build one node → engine-node mapping."""

    kind = "map"
    topology: dict = field(default_factory=dict)
    k: int = 4
    approach: str = "top"
    app: str = "none"
    intensity: str = "moderate"
    duration: float | None = None
    seed: int = 0
    changes: list = field(default_factory=list)


@dataclass(frozen=True)
class SweepRequest(_Request):
    """Sweep the profile → map → evaluate pipeline across seeds."""

    kind = "sweep"
    topology: dict = field(default_factory=dict)
    seeds: list = field(default_factory=lambda: [1])
    app: str = "none"
    k: int = 4
    approaches: list = field(default_factory=lambda: ["top", "place"])
    intensity: str = "moderate"
    duration: float | None = None
    workers: int = 0


@dataclass(frozen=True)
class EmulateRequest(_Request):
    """Run one emulation and return its summary statistics."""

    kind = "emulate"
    topology: dict = field(default_factory=dict)
    app: str = "none"
    intensity: str = "moderate"
    duration: float | None = None
    engine: str = "sequential"
    k: int | None = None
    seed: int = 0
    train_packets: int = 32


@dataclass(frozen=True)
class ApplyChangesRequest(_Request):
    """Incrementally repair routing for a changed topology."""

    kind = "apply_changes"
    topology: dict = field(default_factory=dict)
    changes: list = field(default_factory=list)


REQUEST_KINDS: dict[str, type] = {
    "map": MapRequest,
    "sweep": SweepRequest,
    "emulate": EmulateRequest,
    "apply_changes": ApplyChangesRequest,
}


def parse_request(data: dict) -> _Request:
    """Decode one submitted JSON body into its request dataclass."""
    if not isinstance(data, dict):
        raise ValueError("request body must be a JSON object")
    kind = str(data.get("kind", "")).strip().lower()
    cls = REQUEST_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown request kind {data.get('kind')!r}; choose from "
            f"{', '.join(sorted(REQUEST_KINDS))}"
        )
    return cls.from_dict(data)


@dataclass
class JobInfo:
    """One job's externally visible state (the ``/jobs`` wire format)."""

    job_id: str
    kind: str
    state: str
    submitted_s: float
    started_s: float | None = None
    finished_s: float | None = None
    deadline_s: float | None = None
    error: str | None = None
    result: dict | None = None
    warm_hit: bool = False

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobInfo":
        fields = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in fields})
