"""The mapping service core: worker threads draining the bounded queue.

:class:`MappingService` owns the shared state every job multiplexes
onto — the warm cache (:mod:`repro.service.warm`), the on-disk artifact
cache, the :class:`~repro.runtime.pools.PoolRegistry` of reusable pmap
workers, and the service telemetry — plus a fixed set of worker threads
(started via the module-level :func:`_worker_loop`, the parallel-safety
discipline for dispatched callables).

Job execution order per job:

1. ``PENDING → RUNNING`` (a job cancelled while pending is skipped);
2. response-memo probe — an exact canonical repeat settles immediately
   as a warm hit, bit-identical to the original (it *is* the original);
3. the registered handler runs under the soft-deadline guard with
   cooperative checkpoints;
4. only a **fully successful** result is memoized into warm state —
   failed, timed-out and cancelled jobs settle without touching it;
5. the job's telemetry merges into the service collector under a lock
   (the collector's span stack is not thread-safe, so jobs record on
   private collectors and merge snapshots).
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field

from repro.obs.telemetry import Telemetry
from repro.runtime.cache import resolve_cache
from repro.runtime.pools import PoolRegistry
from repro.service.jobs import (
    Job,
    JobCancelled,
    JobQueue,
    JobState,
    JobTimeout,
)
from repro.service.warm import DEFAULT_BUDGET_BYTES, WarmCache

__all__ = ["ServiceConfig", "MappingService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs (the ``massf serve`` flag surface)."""

    workers: int = 2                 # job worker threads
    queue_size: int = 64             # bounded queue capacity (backpressure)
    default_timeout_s: float | None = None   # per-job soft deadline
    budget_bytes: int = DEFAULT_BUDGET_BYTES  # warm-cache memory budget
    max_delta_changes: int = 64      # delta-derivation ceiling
    cache: object = None             # disk cache spec (resolve_cache)
    host: str = "127.0.0.1"
    port: int = 8351
    pool_workers: int = 0            # pmap pool size leased per job (0 off)


@contextlib.contextmanager
def _soft_deadline(timeout_s: float | None):
    """Arm the executor's SIGALRM guard when possible.

    On the main thread a wedged job is interrupted mid-computation; on
    worker threads (where ``signal.signal`` is forbidden) this is a
    no-op and enforcement falls back to the job's cooperative
    checkpoints — the same graceful degradation the grid executor uses.
    """
    from repro.runtime.executor import _TaskTimeout, _arm_soft_timeout

    if (
        timeout_s is None
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    import signal

    old_handler, armed = _arm_soft_timeout(timeout_s)
    try:
        yield
    except _TaskTimeout as exc:
        raise JobTimeout(str(exc)) from None
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)


def _worker_loop(service: "MappingService") -> None:
    """Drain the queue until the service stops (thread target)."""
    while True:
        job = service.queue.next(timeout=0.2)
        if service._stop.is_set():
            return
        if job is None:
            continue
        service._run_job(job)


@dataclass
class _ServiceCounters:
    submitted: int = 0
    done: int = 0
    failed: int = 0
    cancelled: int = 0
    warm_hits: int = 0
    rejected: int = 0
    latencies_s: list = field(default_factory=list)


class MappingService:
    """Shared-state job executor behind the HTTP front end."""

    #: ``massf check`` lock-discipline contract: worker threads only
    #: touch the shared counters under the service lock.
    _GUARDED_BY = {"counters": "_lock"}

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.disk = resolve_cache(self.config.cache)
        self.warm = WarmCache(
            budget_bytes=self.config.budget_bytes,
            disk=self.disk,
            max_delta_changes=self.config.max_delta_changes,
            telemetry=self.telemetry,
        )
        self.pools = PoolRegistry(self.config.pool_workers)
        self.queue = JobQueue(self.config.queue_size)
        self.counters = _ServiceCounters()
        self.started_s = time.time()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()   # telemetry merge + counters

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "MappingService":
        if self._threads:
            return self
        for i in range(max(1, int(self.config.workers))):
            thread = threading.Thread(
                target=_worker_loop, args=(self,),
                name=f"massf-worker-{i}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        self.queue.wake_all(len(self._threads))
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()
        self.pools.close()

    def __enter__(self) -> "MappingService":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------ #
    # Submission / inspection
    # ------------------------------------------------------------------ #
    def submit(self, request, timeout_s: float | None = None) -> Job:
        """Enqueue a request; raises
        :class:`~repro.service.jobs.QueueFullError` when the queue is at
        capacity (the HTTP layer maps it to 429)."""
        if timeout_s is None:
            timeout_s = self.config.default_timeout_s
        job = Job.create(request, timeout_s=timeout_s)
        try:
            self.queue.offer(job)
        except Exception:
            with self._lock:
                self.counters.rejected += 1
            raise
        with self._lock:
            self.counters.submitted += 1
        self.telemetry.gauge("service.queue_depth", self.queue.depth)
        self.telemetry.event(
            "service.jobs", job=job.job_id, state="submitted",
            kind=job.request.kind,
        )
        return job

    def job(self, job_id: str) -> Job | None:
        return self.queue.get(job_id)

    def cancel(self, job_id: str) -> bool:
        job = self.queue.get(job_id)
        if job is None:
            return False
        live = job.cancel()
        if live:
            self.telemetry.event(
                "service.jobs", job=job.job_id, state="cancel-requested",
            )
        return live

    def status(self) -> dict:
        with self._lock:
            latencies = sorted(self.counters.latencies_s)
            counters = {
                "submitted": self.counters.submitted,
                "done": self.counters.done,
                "failed": self.counters.failed,
                "cancelled": self.counters.cancelled,
                "warm_hits": self.counters.warm_hits,
                "rejected": self.counters.rejected,
            }
        def _pct(q: float) -> float:
            if not latencies:
                return 0.0
            idx = min(len(latencies) - 1, int(q * len(latencies)))
            return latencies[idx]
        return {
            "uptime_s": time.time() - self.started_s,
            "workers": len(self._threads),
            "queue_depth": self.queue.depth,
            "queue_size": self.queue.maxsize,
            "jobs": counters,
            "latency_p50_s": _pct(0.50),
            "latency_p95_s": _pct(0.95),
            "warm": self.warm.stats.to_dict(),
            "warm_nbytes": self.warm.nbytes,
            "disk": (
                {
                    "hits": self.disk.stats.hits,
                    "misses": self.disk.stats.misses,
                    "stores": self.disk.stats.stores,
                }
                if self.disk is not None else None
            ),
            "pools": self.pools.stats(),
        }

    # ------------------------------------------------------------------ #
    # Execution (worker threads)
    # ------------------------------------------------------------------ #
    def _run_job(self, job: Job) -> None:
        from repro.service.handlers import handler_for

        if not job.mark_running():
            # Cancelled while pending: already settled.
            with self._lock:
                self.counters.cancelled += 1
            self._publish(job)
            return
        self.telemetry.gauge("service.queue_depth", self.queue.depth)
        canon = None
        started = time.perf_counter()
        try:
            canon = job.request.canonical()
            found, memo = self.warm.memo_get(canon)
            if found:
                job.settle(JobState.DONE, result=memo, warm_hit=True)
            else:
                handler = handler_for(job.request.kind)
                if handler is None:
                    raise ValueError(
                        f"no handler for kind {job.request.kind!r}"
                    )
                with _soft_deadline(job.timeout_s):
                    result = handler(self, job, job.request)
                job.checkpoint()  # last look before publishing
                self.warm.memo_put(canon, result)
                job.settle(JobState.DONE, result=result)
        except JobCancelled:
            job.settle(JobState.CANCELLED, error="cancelled")
        except JobTimeout as exc:
            job.settle(JobState.FAILED, error=str(exc))
        except Exception as exc:  # noqa: BLE001 — jobs never kill workers
            job.settle(
                JobState.FAILED, error=f"{type(exc).__name__}: {exc}"
            )
        elapsed = time.perf_counter() - started
        with self._lock:
            if job.state is JobState.DONE:
                self.counters.done += 1
                if job.warm_hit:
                    self.counters.warm_hits += 1
            elif job.state is JobState.CANCELLED:
                self.counters.cancelled += 1
            else:
                self.counters.failed += 1
            self.counters.latencies_s.append(elapsed)
            # Merge the job's private collector (span stacks are not
            # thread-safe; snapshots merge safely under the lock).
            self.telemetry.merge(job.telemetry.to_dict())
        self._publish(job)

    def _publish(self, job: Job) -> None:
        self.telemetry.event(
            "service.jobs", job=job.job_id, state=job.state.value,
            kind=job.request.kind, warm_hit=job.warm_hit,
            error=job.error,
        )
