"""JSON-over-HTTP front end: stdlib ``asyncio.start_server`` only.

A deliberately small HTTP/1.1 loop (no framework, no new dependencies):
one coroutine per connection, requests parsed by hand, responses JSON.
Job execution happens on the service's worker threads; the event loop
only ever shuffles bytes, so a slow job never blocks status polls or
other submissions.

Endpoints (all under ``/api/v1``):

- ``POST /api/v1/jobs`` — submit; body is a request document (see
  :mod:`repro.service.requests`) plus optional ``"timeout_s"``.  Returns
  202 with the job id, or **429** when the bounded queue is full.
- ``GET /api/v1/jobs`` — every known job, submission order.
- ``GET /api/v1/jobs/<id>`` — one job (404 unknown).
- ``DELETE /api/v1/jobs/<id>`` — request cancellation.
- ``GET /api/v1/status`` — queue depth, counters, warm/disk/pool stats.
- ``GET /api/v1/metrics`` — the full telemetry snapshot
  (:meth:`repro.obs.telemetry.Telemetry.to_dict`).
- ``GET /api/v1/events`` — **SSE** stream; each telemetry event row is
  one ``event: <series>`` / ``data: <row JSON>`` message (the
  ``service.jobs`` series carries the job lifecycle).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Callable

from repro.service.core import MappingService, ServiceConfig
from repro.service.jobs import QueueFullError
from repro.service.requests import parse_request

__all__ = ["serve", "start_service_in_thread"]

_MAX_BODY = 8 * 1024 * 1024


def _response(
    status: int,
    body: dict | list,
    *,
    reason: str | None = None,
) -> bytes:
    payload = json.dumps(body).encode("utf-8")
    reason = reason or {
        200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 429: "Too Many Requests",
        500: "Internal Server Error",
    }.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + payload


async def _read_request(reader) -> tuple[str, str, dict, bytes] | None:
    """Parse one request; None on EOF / malformed input."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("ascii").split()
    except ValueError:
        return None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0) or 0)
    if length < 0 or length > _MAX_BODY:
        return None
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


async def _stream_events(service: MappingService, writer) -> None:
    """Bridge telemetry events onto one SSE connection until it drops."""
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue = asyncio.Queue()

    def _listener(series: str, row: dict) -> None:
        # Called from worker threads — hop onto the loop thread-safely.
        loop.call_soon_threadsafe(queue.put_nowait, (series, row))

    unsubscribe = service.telemetry.subscribe(_listener)
    try:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        writer.write(b": connected\n\n")
        await writer.drain()
        while True:
            try:
                series, row = await asyncio.wait_for(
                    queue.get(), timeout=15.0
                )
                message = (
                    f"event: {series}\ndata: {json.dumps(row)}\n\n"
                ).encode("utf-8")
            except asyncio.TimeoutError:
                message = b": keepalive\n\n"
            writer.write(message)
            await writer.drain()
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        unsubscribe()


def _route(service: MappingService, method: str, path: str, body: bytes):
    """Dispatch one non-streaming request → (status, body-dict)."""
    parts = [p for p in path.split("?", 1)[0].split("/") if p]
    if len(parts) < 2 or parts[0] != "api" or parts[1] != "v1":
        return 404, {"error": f"unknown path {path!r}"}
    tail = parts[2:]

    if tail == ["jobs"] and method == "POST":
        try:
            data = json.loads(body.decode("utf-8") or "{}")
            timeout_s = data.pop("timeout_s", None)
            request = parse_request(data)
        except (ValueError, TypeError) as exc:
            return 400, {"error": str(exc)}
        try:
            job = service.submit(
                request,
                timeout_s=None if timeout_s is None else float(timeout_s),
            )
        except QueueFullError as exc:
            return 429, {"error": str(exc), "queue_depth": service.queue.depth}
        return 202, job.info().to_dict()

    if tail == ["jobs"] and method == "GET":
        return 200, {"jobs": [j.info().to_dict() for j in service.queue.jobs()]}

    if len(tail) == 2 and tail[0] == "jobs":
        job = service.job(tail[1])
        if job is None:
            return 404, {"error": f"unknown job {tail[1]!r}"}
        if method == "GET":
            return 200, job.info().to_dict()
        if method == "DELETE":
            return 200, {
                "job_id": job.job_id, "cancelled": service.cancel(job.job_id),
            }
        return 405, {"error": f"{method} not allowed"}

    if tail == ["status"] and method == "GET":
        return 200, service.status()
    if tail == ["metrics"] and method == "GET":
        return 200, service.telemetry.to_dict()
    return 404, {"error": f"unknown path {path!r}"}


async def _handle_connection(service: MappingService, reader, writer):
    try:
        parsed = await _read_request(reader)
        if parsed is None:
            return
        method, path, _headers, body = parsed
        if path.split("?", 1)[0] == "/api/v1/events" and method == "GET":
            await _stream_events(service, writer)
            return
        try:
            status, payload = _route(service, method, path, body)
        except Exception as exc:  # noqa: BLE001 — connection must answer
            status, payload = 500, {
                "error": f"{type(exc).__name__}: {exc}"
            }
        writer.write(_response(status, payload))
        await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _serve_async(
    service: MappingService,
    *,
    host: str,
    port: int,
    ready: "threading.Event | None" = None,
    bound: dict | None = None,
    stop_event: "asyncio.Event | None" = None,
) -> None:
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )
    sock = server.sockets[0].getsockname()
    if bound is not None:
        bound["host"], bound["port"] = sock[0], sock[1]
    if ready is not None:
        ready.set()
    async with server:
        if stop_event is None:
            await server.serve_forever()
        else:
            await stop_event.wait()


def serve(
    config: ServiceConfig | None = None,
    *,
    service: MappingService | None = None,
    log: Callable[[str], None] | None = None,
) -> None:
    """Run the service until interrupted (the ``massf serve`` entry)."""
    config = config or ServiceConfig()
    own = service is None
    service = service or MappingService(config)
    service.start()
    if log is not None:
        log(
            f"massf service on http://{config.host}:{config.port} "
            f"({config.workers} workers, queue {config.queue_size})"
        )
    try:
        asyncio.run(
            _serve_async(service, host=config.host, port=config.port)
        )
    except KeyboardInterrupt:
        pass
    finally:
        if own:
            service.stop()


def start_service_in_thread(
    config: ServiceConfig | None = None,
    *,
    service: MappingService | None = None,
) -> tuple[MappingService, str, Callable[[], None]]:
    """Boot a real server on a background thread (tests / benchmarks).

    Binds ``config.port`` (use ``0`` for an ephemeral port) and returns
    ``(service, base_url, stop)``; ``stop()`` shuts down the listener
    and the service's workers.
    """
    config = config or ServiceConfig(port=0)
    own = service is None
    service = service or MappingService(config)
    service.start()
    ready = threading.Event()
    bound: dict = {}
    loop_holder: dict = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        stop_event = asyncio.Event()
        loop_holder["loop"], loop_holder["stop"] = loop, stop_event
        try:
            loop.run_until_complete(_serve_async(
                service, host=config.host, port=config.port,
                ready=ready, bound=bound, stop_event=stop_event,
            ))
        finally:
            # Drain lingering connection/SSE tasks before closing the
            # loop, else they die noisily on "Event loop is closed".
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(target=_run, name="massf-http", daemon=True)
    thread.start()
    if not ready.wait(10.0):
        raise RuntimeError("service failed to bind within 10s")

    def stop() -> None:
        loop = loop_holder.get("loop")
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop_holder["stop"].set)
        thread.join(5.0)
        if own:
            service.stop()

    base_url = f"http://{bound['host']}:{bound['port']}"
    return service, base_url, stop
