"""Mapping-as-a-service: a persistent concurrent front end.

The call-per-process pipeline pays full process startup, topology
construction and routing-table builds on every invocation.  This package
keeps one process alive and amortizes that state across requests — the
ROADMAP's "millions of users" story:

- :mod:`repro.service.requests` — the JSON wire schema (request /
  response dataclasses shared by server, client and CLI);
- :mod:`repro.service.jobs` — job lifecycle, the bounded backpressure
  queue, cooperative deadlines;
- :mod:`repro.service.warm` — warm in-memory caches (topologies,
  delta-derivable routing states, response memos) under an LRU byte
  budget, layered over the on-disk artifact cache;
- :mod:`repro.service.handlers` — one module-level handler per request
  kind (map / sweep / emulate / apply_changes), audited by the
  parallel-safety rule;
- :mod:`repro.service.core` — the worker threads multiplexing jobs onto
  the shared warm state, grid executor and pmap pool registry;
- :mod:`repro.service.server` — the stdlib-``asyncio`` JSON-over-HTTP
  front end with SSE telemetry streaming;
- :mod:`repro.service.client` — the blocking Python/CLI client.

Quickstart::

    from repro.service import MappingService, ServiceConfig, connect
    from repro.service.server import start_service_in_thread

    service, url, stop = start_service_in_thread(ServiceConfig(port=0))
    client = connect(url)
    info = client.submit({"kind": "map",
                          "topology": {"source": "synth",
                                       "n_routers": 200, "seed": 0},
                          "k": 4})
    info = client.wait(info.job_id)
    stop()

Or from the shell: ``massf serve``, ``massf submit``, ``massf jobs``,
``massf bench service``.
"""

from repro.service.client import ServiceClient, ServiceError, connect
from repro.service.core import MappingService, ServiceConfig
from repro.service.jobs import (
    Job,
    JobQueue,
    JobState,
    QueueFullError,
)
from repro.service.requests import (
    ApplyChangesRequest,
    EmulateRequest,
    JobInfo,
    MapRequest,
    SweepRequest,
    parse_request,
)
from repro.service.server import serve, start_service_in_thread
from repro.service.warm import WarmCache

__all__ = [
    "MappingService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceError",
    "connect",
    "serve",
    "start_service_in_thread",
    "WarmCache",
    "Job",
    "JobQueue",
    "JobState",
    "QueueFullError",
    "JobInfo",
    "MapRequest",
    "SweepRequest",
    "EmulateRequest",
    "ApplyChangesRequest",
    "parse_request",
]
