"""``massf bench service``: cold vs warm throughput under concurrency.

Boots a *real* server (socket, HTTP, SSE and all) on a background
thread, drives a mixed map / sweep / apply_changes batch against it
twice — once against cold state (fresh process-equivalent: empty warm
cache, empty disk cache) and once against warm state (the same requests
again) — and reports request throughput, latency percentiles and cache
hit rates.  The warm/cold throughput ratio is the service's headline
number and the CI gate (``--min-speedup``).

Warm-served results are bit-identical to cold ones (the parity
assertions run inside the bench: every warm response body must equal its
cold counterpart).
"""

from __future__ import annotations

import tempfile
import time

__all__ = ["bench_service", "build_mixed_batch"]


def build_mixed_batch(
    n_routers: int,
    *,
    seed: int = 0,
    duration: float = 1.0,
    hosts_per_router: float = 1.0,
    batch: int = 8,
) -> list[dict]:
    """A mixed request batch over one synthetic topology.

    Mostly maps (varying ``k`` / seed), one seed sweep and one
    apply_changes (the delta-reuse path), cycled up to ``batch``
    requests.
    """
    topology = {
        "source": "synth", "n_routers": int(n_routers),
        "hosts_per_router": float(hosts_per_router), "seed": int(seed),
    }
    pool: list[dict] = [
        {"kind": "map", "topology": topology, "k": 8, "approach": "top"},
        {"kind": "map", "topology": topology, "k": 16, "approach": "top"},
        {
            "kind": "sweep", "topology": topology, "seeds": [1],
            "k": 8, "approaches": ["top"], "app": "none",
            "intensity": "light", "duration": float(duration), "workers": 0,
        },
        {
            "kind": "apply_changes", "topology": topology,
            "changes": [
                {"op": "set_link_cost", "link_id": 0, "latency_s": 0.05},
            ],
        },
        {"kind": "map", "topology": topology, "k": 32, "approach": "top"},
        {
            "kind": "map", "topology": topology, "k": 8, "approach": "top",
            "seed": 1,
        },
    ]
    return [pool[i % len(pool)] for i in range(max(1, int(batch)))]


def _drive(client, requests: list[dict], timeout: float) -> dict:
    """Submit the batch, wait for every job, measure from the outside."""
    start = time.perf_counter()
    infos = [client.submit(request) for request in requests]
    settled = [client.wait(info.job_id, timeout=timeout) for info in infos]
    wall = time.perf_counter() - start
    failed = [info for info in settled if info.state != "done"]
    if failed:
        raise RuntimeError(
            f"{len(failed)} bench jobs failed; first: {failed[0].error}"
        )
    latencies = sorted(
        (info.finished_s or 0.0) - info.submitted_s for info in settled
    )

    def _pct(q: float) -> float:
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "n_requests": len(settled),
        "wall_s": wall,
        "throughput_rps": len(settled) / wall if wall > 0 else float("inf"),
        "p50_s": _pct(0.50),
        "p95_s": _pct(0.95),
        "warm_hits": sum(1 for info in settled if info.warm_hit),
        "results": {info.job_id: info.result for info in settled},
        "order": [info.job_id for info in settled],
    }


def bench_service(
    *,
    n_routers: int = 1000,
    batch: int = 8,
    service_workers: int = 2,
    seed: int = 0,
    duration: float = 1.0,
    hosts_per_router: float = 1.0,
    timeout: float = 600.0,
    min_speedup: float | None = None,
    budget: float | None = None,
    telemetry=None,
) -> tuple[list[dict], list[str]]:
    """Run the cold/warm study; returns ``(rows, over_budget_lines)``."""
    from repro.service.client import connect
    from repro.service.core import ServiceConfig
    from repro.service.server import start_service_in_thread

    requests = build_mixed_batch(
        n_routers, seed=seed, duration=duration,
        hosts_per_router=hosts_per_router, batch=batch,
    )
    over_budget: list[str] = []
    with tempfile.TemporaryDirectory(prefix="massf-bench-") as tmp:
        config = ServiceConfig(
            port=0, workers=service_workers,
            queue_size=max(64, 2 * len(requests)), cache=tmp,
        )
        service, url, stop = start_service_in_thread(config)
        try:
            client = connect(url, timeout=timeout)
            cold = _drive(client, requests, timeout)
            warm = _drive(client, requests, timeout)
            status = client.status()
        finally:
            stop()

    # Parity: a warm-served batch must be bit-identical to the cold one.
    cold_bodies = [cold["results"][jid] for jid in cold["order"]]
    warm_bodies = [warm["results"][jid] for jid in warm["order"]]
    if cold_bodies != warm_bodies:
        raise RuntimeError(
            "warm responses differ from cold ones — warm-cache parity "
            "violation"
        )

    speedup = (
        warm["throughput_rps"] / cold["throughput_rps"]
        if cold["throughput_rps"] > 0 else float("inf")
    )
    if telemetry is not None:
        telemetry.gauge("bench.service_speedup", speedup)
        telemetry.count("bench.runs", 2)

    def _row(phase: str, data: dict) -> dict:
        return {
            "phase": phase,
            "n_routers": int(n_routers),
            "n_requests": data["n_requests"],
            "wall_s": round(data["wall_s"], 4),
            "throughput_rps": round(data["throughput_rps"], 3),
            "p50_s": round(data["p50_s"], 4),
            "p95_s": round(data["p95_s"], 4),
            "warm_hits": data["warm_hits"],
        }

    warm_stats = status.get("warm", {})
    rows = [
        _row("cold", cold),
        _row("warm", warm),
        {
            "phase": "summary",
            "n_routers": int(n_routers),
            "speedup": round(speedup, 2),
            "warm_hit_rate": (
                warm["warm_hits"] / warm["n_requests"]
                if warm["n_requests"] else 0.0
            ),
            "warm_layers": warm_stats.get("layers", {}),
            "delta_derives": warm_stats.get("delta_derives", 0),
            "cold_builds": warm_stats.get("cold_builds", 0),
            "parity": "identical",
        },
    ]

    if budget is not None and cold["wall_s"] > budget:
        over_budget.append(
            f"service cold phase took {cold['wall_s']:.2f}s "
            f"(budget {budget:.2f}s)"
        )
    if min_speedup is not None and speedup < min_speedup:
        over_budget.append(
            f"warm/cold speedup {speedup:.2f}x below the "
            f"--min-speedup {min_speedup:.2f}x floor"
        )
    return rows, over_budget
