"""Warm in-memory caches shared across service requests.

The perf core of service mode: a long-running process keeps the
expensive intermediate objects *live* between requests, layered over the
on-disk :class:`~repro.runtime.cache.ArtifactCache` (which keeps them
across restarts, but still pays unpickling per process).  Three layers,
all under one LRU with a configurable byte budget:

- **topologies** — canonical spec → built
  :class:`~repro.topology.network.Network` (no re-parse / re-generate);
- **routing** — ``(fingerprint, metric)`` →
  :class:`~repro.routing.delta.RoutingState`.  A miss first tries to
  **delta-derive** from any warm state over the same node universe via
  :func:`repro.routing.delta.derive_routing` (bit-identical to a cold
  build, at incremental-SPF cost) before falling back to
  :func:`~repro.routing.spf.build_routing`;
- **responses** — canonical request → finished result dict, so an exact
  repeat is served without touching the pipeline at all.

PLACE traffic estimates warm through the shared disk cache's memory
tier (kind ``"place-block"``), which this object owns and hands to every
handler.

Everything is guarded by one lock; computations run *outside* it, so a
slow cold build never blocks warm hits for other jobs.  Entries are
inserted only by fully-successful jobs — a failing or cancelled job
cannot poison warm state.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["WarmCache", "WarmStats"]

#: Default in-memory budget: enough for a handful of 1k-router routing
#: states (each ~12 MB of dist + next_hop).
DEFAULT_BUDGET_BYTES = 512 * 1024 * 1024


@dataclass
class WarmStats:
    """Per-layer hit/miss/eviction accounting for the metrics endpoint."""

    layers: dict = field(default_factory=dict)
    delta_derives: int = 0
    cold_builds: int = 0
    evictions: int = 0

    def _layer(self, name: str) -> dict:
        return self.layers.setdefault(name, {"hits": 0, "misses": 0})

    def hit(self, layer: str) -> None:
        self._layer(layer)["hits"] += 1

    def miss(self, layer: str) -> None:
        self._layer(layer)["misses"] += 1

    def hit_rate(self, layer: str) -> float:
        per = self._layer(layer)
        total = per["hits"] + per["misses"]
        return per["hits"] / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "layers": {k: dict(v) for k, v in self.layers.items()},
            "delta_derives": self.delta_derives,
            "cold_builds": self.cold_builds,
            "evictions": self.evictions,
        }


def _network_nbytes(net) -> int:
    """Rough live size of a built Network (links dominate)."""
    return 256 * getattr(net, "n_links", 0) + 128 * getattr(net, "n_nodes", 0)


def _routing_nbytes(state) -> int:
    tables = state.tables
    graph = state.graph
    if hasattr(graph, "nbytes"):          # dense ndarray
        graph_nbytes = int(graph.nbytes)
    else:                                  # scipy CSR cost graph
        graph_nbytes = sum(
            int(getattr(graph, name).nbytes)
            for name in ("data", "indices", "indptr")
            if hasattr(graph, name)
        )
    return int(tables.dist.nbytes + tables.next_hop.nbytes) + graph_nbytes


class WarmCache:
    """LRU of topologies / routing states / response memos under a byte
    budget.

    Parameters
    ----------
    budget_bytes:
        Total in-memory budget across all layers; least-recently-used
        entries are evicted past it (a single entry larger than the
        budget is still admitted — the budget bounds *retention*, not
        request size).
    disk:
        The shared on-disk :class:`~repro.runtime.cache.ArtifactCache`
        (or ``None``); handed to cold builds so disk hits still skip
        recomputation.
    max_delta_changes:
        Ceiling on the canonical change set size for which a routing miss
        is served by delta-derivation instead of a full rebuild.
    """

    #: ``massf check`` lock-discipline contract: the LRU map and its
    #: byte counter only change under the cache's RLock.
    _GUARDED_BY = {"_entries": "_lock", "_nbytes": "_lock"}

    def __init__(
        self,
        *,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
        disk=None,
        max_delta_changes: int = 64,
        telemetry=None,
    ) -> None:
        self.budget_bytes = int(budget_bytes)
        self.disk = disk
        self.max_delta_changes = int(max_delta_changes)
        self._telemetry = telemetry
        # (layer, key) -> (value, nbytes); insertion/recency order.
        self._entries: OrderedDict[tuple, tuple[object, int]] = OrderedDict()
        self._nbytes = 0
        self._lock = threading.RLock()
        self.stats = WarmStats()

    # ------------------------------------------------------------------ #
    # Generic LRU plumbing
    # ------------------------------------------------------------------ #
    def _get(self, layer: str, key) -> tuple[bool, object]:
        with self._lock:
            entry = self._entries.get((layer, key))
            if entry is None:
                self.stats.miss(layer)
                return False, None
            self._entries.move_to_end((layer, key))
            self.stats.hit(layer)
            return True, entry[0]

    def _put(self, layer: str, key, value, nbytes: int) -> None:
        with self._lock:
            old = self._entries.pop((layer, key), None)
            if old is not None:
                self._nbytes -= old[1]
            self._entries[(layer, key)] = (value, int(nbytes))
            self._nbytes += int(nbytes)
            while self._nbytes > self.budget_bytes and len(self._entries) > 1:
                _, (_, dropped) = self._entries.popitem(last=False)
                self._nbytes -= dropped
                self.stats.evictions += 1
                if self._telemetry is not None:
                    self._telemetry.count("service.warm_evictions")

    def keys(self, layer: str) -> list:
        """The layer's live keys, LRU → MRU (test/introspection aid)."""
        with self._lock:
            return [k for (lay, k) in self._entries if lay == layer]

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._nbytes

    # ------------------------------------------------------------------ #
    # Topology layer
    # ------------------------------------------------------------------ #
    @staticmethod
    def topology_key(spec: dict) -> tuple:
        from repro.service.requests import canonical_value

        return canonical_value(spec or {})

    def topology(self, spec: dict):
        """The built Network for a canonical topology spec."""
        key = self.topology_key(spec)
        found, net = self._get("topology", key)
        if found:
            return net
        net = build_topology(spec)
        self._put("topology", key, net, _network_nbytes(net))
        return net

    # ------------------------------------------------------------------ #
    # Routing layer
    # ------------------------------------------------------------------ #
    def routing(self, net, metric: str = "latency"):
        """A warm :class:`RoutingState` for ``net`` (never mutated here).

        Resolution order: exact fingerprint hit → delta-derivation from a
        warm sibling (≤ ``max_delta_changes`` canonically-changed edges;
        bit-identical to a cold build) → cold
        :func:`~repro.routing.spf.build_routing` through the disk cache.
        """
        from repro.routing.delta import derive_routing, routing_state
        from repro.routing.spf import build_routing

        key = (net.fingerprint(), metric)
        found, state = self._get("routing", key)
        if found:
            return state

        # Delta path: scan warm candidates MRU-first outside the lock
        # (a candidate evicted mid-scan just fails the derive harmlessly).
        with self._lock:
            candidates = [
                entry[0]
                for (layer, k), entry in reversed(self._entries.items())
                if layer == "routing" and k[1] == metric
            ]
        for candidate in candidates:
            if candidate.tables.net.n_nodes != net.n_nodes:
                continue
            derived = derive_routing(
                candidate, net, max_changes=self.max_delta_changes,
                cache=self.disk, telemetry=self._telemetry,
            )
            if derived is None:
                continue
            state, _touched = derived
            self.stats.delta_derives += 1
            if self._telemetry is not None:
                self._telemetry.count("service.warm_delta_derives")
            self._put("routing", key, state, _routing_nbytes(state))
            return state

        tables = build_routing(
            net, metric, cache=self.disk, telemetry=self._telemetry
        )
        state = routing_state(tables)
        self.stats.cold_builds += 1
        self._put("routing", key, state, _routing_nbytes(state))
        return state

    # ------------------------------------------------------------------ #
    # Response memo layer
    # ------------------------------------------------------------------ #
    def memo_get(self, canon: tuple) -> tuple[bool, dict | None]:
        found, value = self._get("response", canon)
        return (True, value) if found else (False, None)  # type: ignore

    def memo_put(self, canon: tuple, result: dict) -> None:
        # Rough: responses are small JSON-ish dicts.
        self._put("response", canon, result, 64 * 1024)


def build_topology(spec: dict):
    """Build a Network from a canonical topology spec dict.

    ``source`` selects :func:`repro.topology.synth.synth_network`
    (``"synth"``) or :func:`repro.api.load_topology` (built-in names and
    DML paths); remaining keys are factory kwargs.  ``changes`` (a list
    of change dicts) is applied after the build via
    :func:`repro.routing.delta.apply_changes`.
    """
    from repro.api import load_topology
    from repro.routing.delta import apply_changes
    from repro.service.requests import decode_changes
    from repro.topology.synth import synth_network

    spec = dict(spec or {})
    source = str(spec.pop("source", "synth")).strip().lower()
    changes = spec.pop("changes", None)
    if source == "synth":
        net = synth_network(**spec)
    else:
        net = load_topology(source, **spec)
    if changes:
        apply_changes(net, decode_changes(changes))
    return net
