"""Experiment result records and text-table rendering.

The benchmark harness prints tables shaped like the paper's figures; these
helpers keep that formatting in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ApproachOutcome", "ExperimentTable", "format_series"]


@dataclass
class ApproachOutcome:
    """All §4.1.1 metrics for one (setup, approach) cell.

    ``load_imbalance`` — normalized std-dev of engine-node loads;
    ``app_emulation_time`` — Figures 6/7;
    ``network_emulation_time`` — replay, Figures 9/10.
    """

    approach: str
    load_imbalance: float
    app_emulation_time: float
    network_emulation_time: float
    edge_cut: float = 0.0
    remote_packets: int = 0
    lookahead: float = 0.0
    diagnostics: dict = field(default_factory=dict)


@dataclass
class ExperimentTable:
    """A figure/table: rows = setups, columns = approaches."""

    title: str
    row_names: list[str]
    col_names: list[str]
    values: np.ndarray  # (rows, cols)
    unit: str = ""

    def render(self, fmt: str = "{:.3f}") -> str:
        """Plain-text table."""
        widths = [max(10, len(c) + 2) for c in self.col_names]
        name_w = max([len(r) for r in self.row_names] + [8]) + 2
        lines = [self.title + (f"  [{self.unit}]" if self.unit else "")]
        header = " " * name_w + "".join(
            c.rjust(w) for c, w in zip(self.col_names, widths)
        )
        lines.append(header)
        for i, row in enumerate(self.row_names):
            cells = "".join(
                fmt.format(self.values[i, j]).rjust(w)
                for j, w in enumerate(widths)
            )
            lines.append(row.ljust(name_w) + cells)
        return "\n".join(lines)

    def relative_to(self, baseline_col: int = 0) -> "ExperimentTable":
        """Values normalized to one column (e.g. TOP = 1.0)."""
        base = self.values[:, baseline_col : baseline_col + 1]
        safe = np.where(base > 0, base, 1.0)
        return ExperimentTable(
            title=self.title + " (relative)",
            row_names=list(self.row_names),
            col_names=list(self.col_names),
            values=self.values / safe,
            unit="x",
        )


def format_series(
    title: str, xs: np.ndarray, series: dict[str, np.ndarray],
    x_label: str = "t", max_points: int = 30,
) -> str:
    """Render named series as aligned text columns (figure stand-in).

    Long series are decimated to ``max_points`` for readability.
    """
    xs = np.asarray(xs, dtype=np.float64)
    step = max(1, len(xs) // max_points)
    idx = np.arange(0, len(xs), step)
    lines = [title]
    header = x_label.rjust(10) + "".join(name.rjust(14) for name in series)
    lines.append(header)
    for i in idx:
        row = f"{xs[i]:10.1f}"
        for values in series.values():
            v = values[i]
            row += ("      nan".rjust(14) if np.isnan(v) else f"{v:14.3f}")
        lines.append(row)
    return "\n".join(lines)
