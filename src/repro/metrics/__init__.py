"""Evaluation metrics (§4.1.1) and result records.

- :func:`repro.metrics.imbalance.load_imbalance` — normalized standard
  deviation of per-engine-node kernel event rates.
- :func:`repro.metrics.imbalance.fine_grained_imbalance` — the Figure 8
  series: imbalance per fixed-length interval.
- :mod:`repro.metrics.summary` — experiment result records and text-table
  rendering used by the benchmark harness.
"""

from repro.metrics.imbalance import (
    fine_grained_imbalance,
    load_imbalance,
    lp_interval_loads,
)
from repro.metrics.summary import ApproachOutcome, ExperimentTable

__all__ = [
    "load_imbalance",
    "fine_grained_imbalance",
    "lp_interval_loads",
    "ApproachOutcome",
    "ExperimentTable",
]
