"""Load imbalance metrics.

§4.1.1: "We define the load of a simulation engine node as the simulation
kernel event rate (essentially one per packet). ... Assuming the simulation
kernel event rates are k_1 .. k_n, the load imbalance is calculated as the
normalized standard deviation of {k}."
"""

from __future__ import annotations

import numpy as np

from repro.engine.trace import EventTrace

__all__ = [
    "load_imbalance",
    "lp_interval_loads",
    "fine_grained_imbalance",
    "fine_grained_imbalance_series",
    "imbalance_auc",
    "time_to_rebalance",
]


def load_imbalance(loads: np.ndarray) -> float:
    """Normalized standard deviation: ``std(loads) / mean(loads)``.

    0 means perfectly even; values near or above 1 mean some engine node
    carries a multiple of the average load.  Zero total load maps to 0.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        return 0.0
    mean = loads.mean()
    if mean <= 0:
        return 0.0
    return float(loads.std() / mean)


def lp_interval_loads(
    trace: EventTrace, parts: np.ndarray, interval: float
) -> np.ndarray:
    """Per-engine-node packet loads binned by virtual time.

    Returns ``float64[k, n_bins]`` — the raw data behind Figure 2 (load
    variation over the emulation lifetime).
    """
    parts = np.asarray(parts, dtype=np.int64)
    if interval <= 0:
        raise ValueError("interval must be positive")
    k = int(parts.max()) + 1 if len(parts) else 1
    n_bins = max(1, int(np.ceil(trace.duration / interval)))
    out = np.zeros((k, n_bins), dtype=np.float64)
    if trace.n_events:
        bins = np.minimum((trace.time / interval).astype(np.int64), n_bins - 1)
        np.add.at(out, (parts[trace.node], bins), trace.packets)
    return out


def fine_grained_imbalance(
    trace: EventTrace,
    parts: np.ndarray,
    interval: float = 2.0,
    min_activity_frac: float = 0.0,
) -> np.ndarray:
    """Imbalance per interval — the Figure 8 series.

    §4.2.2: "We collected the actual load of simulation engine nodes in two
    second intervals and calculate the load imbalances for each period."
    Intervals with total load below ``min_activity_frac`` of the peak
    interval score NaN (no meaningful imbalance to report).
    """
    series = lp_interval_loads(trace, parts, interval)
    return fine_grained_imbalance_series(
        series, min_activity_frac=min_activity_frac
    )


def fine_grained_imbalance_series(
    series: np.ndarray, min_activity_frac: float = 0.0
) -> np.ndarray:
    """Per-interval imbalance of an already-binned ``(k, n_bins)`` load
    matrix — the form telemetry timelines arrive in (see
    :mod:`repro.obs`)."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2:
        raise ValueError("series must be a (k, n_bins) matrix")
    totals = series.sum(axis=0)
    means = totals / series.shape[0]
    with np.errstate(invalid="ignore", divide="ignore"):
        out = series.std(axis=0) / means
    floor = min_activity_frac * (totals.max() if totals.size else 0.0)
    out[totals <= max(floor, 0.0)] = np.nan
    return out


def imbalance_auc(series: np.ndarray, interval: float) -> float:
    """Area under an imbalance-over-time curve (the rebalancing score).

    ``series`` is a per-interval imbalance vector (e.g. from
    :func:`fine_grained_imbalance_series` or a
    :class:`repro.rebalance.log.MigrationLog` timeline); NaN entries mark
    near-idle intervals and contribute zero area.  Lower is better — a
    run that recovers from a demand shift quickly accumulates less area
    than one that stays skewed.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    series = np.asarray(series, dtype=np.float64)
    return float(np.nansum(series) * interval)


def time_to_rebalance(
    times: np.ndarray,
    series: np.ndarray,
    shift_time: float,
    threshold: float,
) -> float:
    """Virtual seconds from a demand shift until balance recovers.

    The first entry at or after ``shift_time`` whose imbalance is at most
    ``threshold`` (NaN / idle intervals do not count as recovered) marks
    recovery; returns ``inf`` when the run never recovers.
    """
    times = np.asarray(times, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    if times.shape != series.shape:
        raise ValueError("times and series must align")
    recovered = (
        (times >= shift_time) & ~np.isnan(series) & (series <= threshold)
    )
    if not recovered.any():
        return float("inf")
    return float(times[int(np.argmax(recovered))] - shift_time)
