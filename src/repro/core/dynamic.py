"""Dynamic remapping — the paper's §6 future work, implemented.

"Load imbalance happens due to burst/variation of traffic injected from the
application.  Static partitions are fundamentally limited for large
emulation if traffic varies widely. ... Dynamic remapping the virtual
network during the emulation is the only solution.  Such dynamic remapping
is a major challenge for distributed emulators like MaSSF."

The scheme implemented here:

- the emulation runs in fixed-length **epochs**;
- during epoch *e* every router's NetFlow-style counters accumulate; at the
  epoch boundary the *observed* epoch loads become new vertex/edge weights
  (strictly causal: epoch *e* data maps epoch *e + 1*);
- rather than repartitioning from scratch (which would migrate most of the
  network), the previous assignment is **refined** under the new weights —
  greedy k-way refinement moves only boundary vertices, so migration stays
  incremental, exactly the diffusion-style repartitioning the dynamic
  load-balancing literature (Zoltan et al. [29]) recommends;
- migrating a virtual node costs wall-clock time (state + routing-table
  transfer), charged at each boundary; a remap is adopted only if its
  predicted improvement on the *previous* epoch exceeds its migration cost
  (hysteresis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graphbuild import (
    latency_objective_weights,
    link_weights_to_adjwgt,
    network_csr,
)
from repro.engine.costmodel import CostModel
from repro.engine.parallel import EmulationMetrics, evaluate_mapping
from repro.engine.trace import EventTrace
from repro.partition.kwayrefine import kway_refine
from repro.routing.tables import memory_weights
from repro.topology.network import Network

__all__ = ["DynamicConfig", "EpochOutcome", "DynamicResult", "dynamic_remap"]


@dataclass(frozen=True)
class DynamicConfig:
    """Knobs of the dynamic remapper.

    Attributes
    ----------
    n_epochs:
        Number of fixed-length epochs the run is divided into.
    migration_cost_s:
        Wall-clock cost of migrating one virtual node between engine nodes
        (serialize state + reroute).
    latency_priority:
        Weight of the latency objective when blending epoch traffic into
        refinement edge weights (the §2.3 ``p``).
    tolerance:
        Balance envelope for the per-epoch refinement.
    refine_passes:
        Greedy k-way refinement passes per epoch boundary.
    hysteresis:
        Adopt a remap only when the predicted wall-time gain on the just
        finished epoch exceeds ``hysteresis × migration cost``.
    memory_weight:
        Memory term folded into the epoch vertex weights (§2.2.2).
    """

    n_epochs: int = 4
    migration_cost_s: float = 0.25
    latency_priority: float = 0.6
    tolerance: float = 1.20
    refine_passes: int = 6
    hysteresis: float = 1.0
    memory_weight: float = 0.1


@dataclass
class EpochOutcome:
    """One epoch's mapping and measured metrics."""

    epoch: int
    parts: np.ndarray
    metrics: EmulationMetrics
    migrated_nodes: int
    migration_cost_s: float
    remap_adopted: bool


@dataclass
class DynamicResult:
    """Epoch-by-epoch outcomes plus the totals the benchmarks report."""

    epochs: list[EpochOutcome]
    config: DynamicConfig

    @property
    def wall_network(self) -> float:
        """Total network emulation time including migration stalls."""
        return float(
            sum(e.metrics.wall_network + e.migration_cost_s
                for e in self.epochs)
        )

    @property
    def wall_app(self) -> float:
        """Total application emulation time including migration stalls."""
        return float(
            sum(e.metrics.wall_app + e.migration_cost_s for e in self.epochs)
        )

    @property
    def total_migrated(self) -> int:
        return int(sum(e.migrated_nodes for e in self.epochs))

    @property
    def mean_imbalance(self) -> float:
        """Load-weighted mean of per-epoch imbalances."""
        weights = np.array(
            [e.metrics.loads.sum() for e in self.epochs], dtype=np.float64
        )
        values = np.array([e.metrics.load_imbalance for e in self.epochs])
        if weights.sum() <= 0:
            return 0.0
        return float((weights * values).sum() / weights.sum())

    def summary(self) -> str:
        return (
            f"dynamic: {len(self.epochs)} epochs, "
            f"imbalance={self.mean_imbalance:.3f}, "
            f"wall_net={self.wall_network:.1f}s, "
            f"migrated={self.total_migrated} nodes"
        )


def _epoch_loads(
    trace: EventTrace, net: Network, t0: float, t1: float
) -> tuple[np.ndarray, np.ndarray]:
    """Observed per-node and per-link packet loads within [t0, t1)."""
    mask = (trace.time >= t0) & (trace.time < t1)
    node_load = np.zeros(net.n_nodes, dtype=np.float64)
    np.add.at(node_load, trace.node[mask], trace.packets[mask])
    link_load = np.zeros(net.n_links, dtype=np.float64)
    fwd = mask & (trace.next_node >= 0)
    # Attribute to the link between node and next_node.
    for u, v, p in zip(trace.node[fwd], trace.next_node[fwd],
                       trace.packets[fwd]):
        link = net.find_link(int(u), int(v))
        if link is not None:
            link_load[link.link_id] += p
    return node_load, link_load


def dynamic_remap(
    trace: EventTrace,
    net: Network,
    initial_parts: np.ndarray,
    cost: CostModel | None = None,
    compute=None,
    config: DynamicConfig | None = None,
) -> DynamicResult:
    """Run the epoch-refine-migrate loop over a recorded emulation.

    Parameters
    ----------
    trace:
        The full evaluation-run event trace (virtual behaviour is mapping
        independent, so epoch slices can be scored under any assignment).
    initial_parts:
        The mapping epoch 0 starts with (typically a static PROFILE or TOP
        result).
    compute:
        Optional application compute profile.  Epoch slices use the
        corresponding window of the profile implicitly via absolute times,
        which is approximated by scoring slices without compute when None.
    """
    cost = cost or CostModel()
    config = config or DynamicConfig()
    if config.n_epochs < 1:
        raise ValueError("need at least one epoch")
    parts = np.asarray(initial_parts, dtype=np.int64).copy()
    k = int(parts.max()) + 1

    graph, link_index = network_csr(net)
    lat_w = latency_objective_weights(net)
    mem = memory_weights(net)
    mem_norm = mem / max(mem.mean(), 1e-12)

    edges = np.linspace(0.0, trace.duration, config.n_epochs + 1)
    outcomes: list[EpochOutcome] = []
    rng = np.random.default_rng(0)

    for e in range(config.n_epochs):
        t0, t1 = float(edges[e]), float(edges[e + 1])
        epoch_slice = trace.slice(t0, t1)

        migrated = 0
        migration_cost = 0.0
        adopted = False
        if e > 0:
            # Remap for this epoch from the PREVIOUS epoch's observations.
            prev0, prev1 = float(edges[e - 1]), float(edges[e])
            node_load, link_load = _epoch_loads(trace, net, prev0, prev1)
            vwgt = node_load / max(node_load.mean(), 1e-12)
            vwgt = vwgt + config.memory_weight * mem_norm
            lat_norm = lat_w / max(lat_w.max(), 1e-12)
            traffic_norm = link_load / max(link_load.max(), 1e-12)
            blended = (
                config.latency_priority * lat_norm
                + (1.0 - config.latency_priority) * traffic_norm
            )
            epoch_graph = graph.with_vwgt(vwgt[:, None]).with_adjwgt(
                link_weights_to_adjwgt(blended, link_index)
            )
            candidate = kway_refine(
                epoch_graph, parts, k, tolerance=config.tolerance,
                max_passes=config.refine_passes, rng=rng,
            )
            moved = int((candidate != parts).sum())
            if moved:
                # Hysteresis: predicted gain on the previous epoch must
                # beat the migration bill.
                prev_slice = trace.slice(prev0, prev1)
                gain = (
                    evaluate_mapping(prev_slice, net, parts, cost=cost)
                    .wall_network
                    - evaluate_mapping(prev_slice, net, candidate, cost=cost)
                    .wall_network
                )
                bill = moved * config.migration_cost_s
                if gain > config.hysteresis * bill:
                    parts = candidate
                    migrated = moved
                    migration_cost = bill
                    adopted = True

        metrics = evaluate_mapping(
            epoch_slice, net, parts, cost=cost, compute=None
        )
        outcomes.append(
            EpochOutcome(
                epoch=e, parts=parts.copy(), metrics=metrics,
                migrated_nodes=migrated, migration_cost_s=migration_cost,
                remap_adopted=adopted,
            )
        )
    return DynamicResult(epochs=outcomes, config=config)
