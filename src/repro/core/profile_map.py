"""PROFILE — profile-based mapping (§3.3).

Consumes :class:`~repro.profiling.aggregate.ProfileData` from a profiling
run: measured per-node packet loads become the compute vertex weight,
measured per-link packets the traffic objective, and — when segment
clustering is enabled — the emulation lifetime is split at dominating-node
changes and each segment contributes one balance constraint
(multi-constraint partitioning).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregate import balance_inputs
from repro.core.graphbuild import latency_objective_weights
from repro.core.segments import find_segments, segment_weights
from repro.profiling.aggregate import ProfileData
from repro.routing.tables import memory_weights
from repro.topology.network import Network

__all__ = ["ProfileInputs", "build_profile_inputs"]


@dataclass(frozen=True)
class ProfileInputs:
    """Partition inputs of the PROFILE approach."""

    vwgt: np.ndarray
    link_weights_latency: np.ndarray
    link_weights_traffic: np.ndarray
    n_segments: int
    diagnostics: dict


def build_profile_inputs(
    net: Network,
    profile: ProfileData,
    initial_parts: np.ndarray | None = None,
    use_segments: bool = True,
    max_segments: int = 3,
    min_segment_bins: int = 8,
    low_traffic_frac: float = 0.05,
    memory_weight: float = 0.1,
    memory_mode: str = "sum",
) -> ProfileInputs:
    """Compute PROFILE vertex/edge weights.

    Parameters
    ----------
    profile:
        Aggregated NetFlow data from the profiling run.
    initial_parts:
        The partition the profiling run executed under; required for
        segment clustering (the load curves are per *physical* node).
        Without it (or with ``use_segments=False``) the average load over
        the whole run is the single constraint.
    """
    segments: list[np.ndarray] = []
    if use_segments and initial_parts is not None:
        lp_series = profile.lp_series(np.asarray(initial_parts))
        segments = find_segments(
            lp_series,
            low_traffic_frac=low_traffic_frac,
            min_segment_bins=min_segment_bins,
            max_segments=max_segments,
        )

    if len(segments) >= 2:
        seg_w = segment_weights(profile.node_series, segments)
        # Normalize each segment column to mean 1 so segments with little
        # absolute traffic still balance, then append the memory term the
        # same way the single-constraint path does.
        means = seg_w.mean(axis=0)
        means[means <= 0] = 1.0
        vwgt = seg_w / means
        # Memory folds into every constraint column (weighted-sum mode) —
        # a column of its own would over-constrain small part counts.
        mem = memory_weights(net)
        vwgt = vwgt + memory_weight * (mem / max(mem.mean(), 1e-12))[:, None]
        link_weights_latency = latency_objective_weights(net)
    else:
        vwgt, link_weights_latency = balance_inputs(
            profile.node_packets, net, memory_weight=memory_weight,
            memory_mode=memory_mode,
        )

    return ProfileInputs(
        vwgt=vwgt,
        link_weights_latency=link_weights_latency,
        link_weights_traffic=profile.link_packets.astype(np.float64),
        n_segments=len(segments),
        diagnostics={
            "approach": "profile",
            "n_segments": len(segments),
            "profiled_packets": float(profile.node_packets.sum()),
            "use_segments": bool(use_segments and initial_parts is not None),
        },
    )
