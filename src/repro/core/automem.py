"""Automatic memory-weight adjustment (§5's second future-work item).

"It will be part of future work to adjust these parameters automatically.
For example, given a partition, MaSSF can predict more accurate memory
requirements on every simulation engine node.  If the memory imbalance will
hurt performance or correctness, then it can adjust the memory weight and
repartition automatically."

:func:`auto_memory_map` implements exactly that loop: map with the current
memory weight, predict each engine node's memory footprint from the
routing-table model, and — while any engine node exceeds its budget —
raise the memory weight geometrically and repartition.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.mapper import Mapper, MapperConfig, MappingResult
from repro.routing.tables import memory_weights
from repro.topology.network import Network

__all__ = ["AutoMemoryResult", "predict_part_memory", "auto_memory_map"]


@dataclass
class AutoMemoryResult:
    """Outcome of the adjust-and-repartition loop."""

    mapping: MappingResult
    memory_weight: float
    part_memory: np.ndarray
    iterations: int
    fits: bool

    def summary(self) -> str:
        state = "fits" if self.fits else "STILL OVER BUDGET"
        return (
            f"auto-mem: weight={self.memory_weight:.3f} after "
            f"{self.iterations} iteration(s), max part memory "
            f"{self.part_memory.max():.0f} ({state})"
        )


def predict_part_memory(
    net: Network, parts: np.ndarray, k: int
) -> np.ndarray:
    """Predicted memory footprint per engine node (routing-table model)."""
    mem = memory_weights(net)
    out = np.zeros(k, dtype=np.float64)
    np.add.at(out, np.asarray(parts, dtype=np.int64), mem)
    return out


def auto_memory_map(
    net: Network,
    n_parts: int,
    memory_budget: float,
    config: MapperConfig | None = None,
    tables=None,
    growth: float = 2.0,
    max_iterations: int = 8,
) -> AutoMemoryResult:
    """TOP-map ``net`` with automatic memory-weight escalation.

    Parameters
    ----------
    memory_budget:
        Maximum memory units one engine node may hold (same units as the
        ``10 + x²`` router model).
    growth:
        Multiplicative memory-weight increase per failed iteration.
    """
    if memory_budget <= 0:
        raise ValueError("memory_budget must be positive")
    if growth <= 1.0:
        raise ValueError("growth must exceed 1")
    config = config or MapperConfig()

    total_memory = float(memory_weights(net).sum())
    if total_memory / n_parts > memory_budget:
        raise ValueError(
            f"infeasible: even a perfect split needs "
            f"{total_memory / n_parts:.0f} per engine node"
        )

    weight = max(config.memory_weight, 1e-3)
    mapping = None
    part_mem = np.zeros(n_parts)
    for iteration in range(1, max_iterations + 1):
        mapper = Mapper(
            net, n_parts=n_parts, tables=tables,
            config=replace(config, memory_weight=weight),
        )
        mapping = mapper.map_top()
        part_mem = predict_part_memory(net, mapping.parts, n_parts)
        if part_mem.max() <= memory_budget:
            return AutoMemoryResult(
                mapping=mapping, memory_weight=weight,
                part_memory=part_mem, iterations=iteration, fits=True,
            )
        weight *= growth
    assert mapping is not None
    return AutoMemoryResult(
        mapping=mapping, memory_weight=weight / growth,
        part_memory=part_mem, iterations=max_iterations, fits=False,
    )
