"""PLACE — application-placement-based mapping (§3.2).

Traffic is estimated in two parts and summed:

- **Background**: each generator supplies its average-bandwidth prediction
  per endpoint pair ("all traffic generators can provide some prediction of
  their generated traffic load").
- **Foreground**: the placement approximation — every injection point is
  assumed to fully utilize its access link, talking to all other endpoints
  with evenly distributed bandwidth.

Each predicted flow is routed by *traceroute inside the emulator* (ICMP over
the instantiated routing tables), optionally with one representative
endpoint per sub-network to cut the number of traceroute executions.  The
aggregated per-link load becomes the traffic objective; per-node
through-traffic becomes the compute term of the vertex weight.

The estimation hot path is batched: flows dedupe to distinct endpoint
pairs with one vectorized pass, routes are discovered by batched TTL
stepping (:func:`repro.routing.icmp.batched_walks`), and per-link /
per-node rates accumulate through ``np.add.at`` in route order — so the
result is bit-identical to the preserved scalar reference
(:func:`repro.routing._reference.estimate_traffic_reference`).  Route
blocks optionally fan out across a fork-shared process pool
(:func:`repro.runtime.pmap.parallel_map`) with per-block artifact caching;
block boundaries never change the sums because the parent folds the flat
per-block arrays back in pair order before accumulating.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.aggregate import (
    accumulate_rates,
    balance_inputs,
    flatten_route_rates,
)
from repro.routing.icmp import batched_walks, plan_routes
from repro.routing.spf import ROUTING_TABLE_VERSION
from repro.routing.tables import RoutingTables
from repro.topology.network import Network
from repro.traffic.apps.base import ForegroundApp
from repro.traffic.flows import PredictedFlow, TrafficGenerator

__all__ = [
    "PlaceInputs",
    "TrafficEstimate",
    "TrafficEstimateState",
    "foreground_placement_flows",
    "estimate_traffic",
    "estimate_traffic_state",
    "update_traffic_estimate",
    "build_place_inputs",
]


@dataclass(frozen=True)
class TrafficEstimate:
    """Routed and aggregated predicted traffic.

    ``link_rate`` / ``node_rate`` are bytes/s per link and through-node;
    ``n_routes`` counts distinct routed pairs (the traceroute budget).
    """

    link_rate: np.ndarray
    node_rate: np.ndarray
    n_routes: int


@dataclass(frozen=True)
class PlaceInputs:
    """Partition inputs of the PLACE approach."""

    vwgt: np.ndarray
    link_weights_latency: np.ndarray
    link_weights_traffic: np.ndarray
    estimate: TrafficEstimate
    diagnostics: dict


def foreground_placement_flows(
    net: Network,
    app: ForegroundApp,
    burst_factor: float = 2.0,
) -> list[PredictedFlow]:
    """The §3.2 placement approximation for one application.

    Each injection point is assumed to fully utilize its access link,
    "and every node talks to all other nodes with evenly distributed
    bandwidth".  When the application supplies a coarse aggregate-volume
    hint (:meth:`ForegroundApp.offered_bytes` — e.g. the matrix or dataflow
    sizes a user certainly knows), the per-endpoint rate is capped at
    ``burst_factor ×`` the implied average: on hosts whose NICs are far
    faster than the application, the literal full-utilization assumption
    would drown the (accurate) background prediction and misdirect the
    partition.  Without a hint, the paper's literal assumption applies.
    """
    endpoints = app.endpoints
    if len(endpoints) < 2:
        return []
    hint = app.offered_bytes()
    hint_rate = None
    if hint is not None and app.duration > 0:
        hint_rate = burst_factor * hint / (len(endpoints) * app.duration)
    flows: list[PredictedFlow] = []
    for src in endpoints:
        access_rate = net.node_total_bandwidth(src) / 8.0  # bytes/s
        src_rate = access_rate
        if hint_rate is not None:
            src_rate = min(access_rate, hint_rate)
        share = src_rate / (len(endpoints) - 1)
        for dst in endpoints:
            if dst != src:
                flows.append(PredictedFlow(src, dst, share))
    return flows


def _dedupe_flows(
    flows: list[PredictedFlow], n_nodes: int
) -> tuple[list[tuple[int, int]], np.ndarray]:
    """Merge flows into (sorted distinct pairs, per-pair summed rates).

    One vectorized pass: duplicate pairs sum their rates in flow order
    (``np.add.at``), matching the scalar dict accumulation bit-for-bit.
    """
    m = len(flows)
    src = np.fromiter((f.src for f in flows), dtype=np.int64, count=m)
    dst = np.fromiter((f.dst for f in flows), dtype=np.int64, count=m)
    rate = np.fromiter(
        (f.bytes_per_s for f in flows), dtype=np.float64, count=m
    )
    keys = src * n_nodes + dst
    uniq, inv = np.unique(keys, return_inverse=True)
    pair_rates = accumulate_rates(inv, rate, uniq.size)
    pairs = [
        (int(k) // n_nodes, int(k) % n_nodes) for k in uniq.tolist()
    ]
    return pairs, pair_rates


def _estimate_block(item: dict, shared) -> dict:
    """Route one pair block and flatten its rate contributions.

    ``item`` is pure data (cache-keyable): the block's pairs and rates
    plus the routes already resolved by the plan (``known``, local
    indices).  ``shared`` carries the routing tables (fork-inherited in
    pool mode, never pickled) and, inline, the live stats object.
    """
    tables, stats = shared
    pairs = item["pairs"]
    known: dict[int, list[int]] = item["known"]
    walk_local = [i for i in range(len(pairs)) if i not in known]
    walked = batched_walks(
        tables, [pairs[i] for i in walk_local], stats=stats
    )
    path_of = dict(known)
    path_of.update(zip(walk_local, walked))
    paths = [path_of[i] for i in range(len(pairs))]
    nodes, node_rates, us, vs, edge_rates = flatten_route_rates(
        paths, item["rates"]
    )
    return {
        "nodes": nodes,
        "node_rates": node_rates,
        "lids": tables.link_ids_of(us, vs),
        "edge_rates": edge_rates,
    }


def estimate_traffic(
    net: Network,
    tables: RoutingTables,
    flows: list[PredictedFlow],
    use_representatives: bool = True,
    *,
    workers: int | None = 0,
    cache=None,
    pairs_per_block: int | None = None,
    telemetry=None,
    stats=None,
) -> TrafficEstimate:
    """Route predicted flows (traceroute) and aggregate per link/node.

    ``workers`` fans the route blocks across a fork-shared process pool
    (``0``/``1`` inline, ``None`` auto); ``cache`` (an
    :class:`~repro.runtime.cache.ArtifactCache`) stores each block's
    flattened contributions under kind ``"place-block"`` so repeated
    estimates skip the route walks; ``pairs_per_block`` overrides the
    block size.  All of these change scheduling only — the returned rates
    are bit-identical in every configuration.  ``stats`` (a
    :class:`repro.routing.perf.RoutingStats`) collects walk counters
    (inline mode only — pool workers keep their own copies).
    """
    from repro.obs.telemetry import ensure_telemetry
    from repro.runtime.pmap import parallel_map

    tel = ensure_telemetry(telemetry)
    with tel.span("place/estimate"):
        if not flows:
            return TrafficEstimate(
                link_rate=np.zeros(net.n_links, dtype=np.float64),
                node_rate=np.zeros(net.n_nodes, dtype=np.float64),
                n_routes=0,
            )
        pairs, pair_rates = _dedupe_flows(flows, net.n_nodes)
        n_pairs = len(pairs)
        if stats is not None:
            stats.routed_pairs += n_pairs
        plan = plan_routes(
            tables, pairs, use_representatives=use_representatives,
            stats=stats,
        )

        n_workers = workers if workers is not None else (os.cpu_count() or 1)
        if pairs_per_block is None:
            if n_workers <= 1:
                pairs_per_block = n_pairs
            else:
                pairs_per_block = max(1, -(-n_pairs // (4 * n_workers)))
        items = []
        for start in range(0, n_pairs, pairs_per_block):
            end = min(start + pairs_per_block, n_pairs)
            items.append({
                "pairs": pairs[start:end],
                "rates": pair_rates[start:end],
                "known": {
                    i - start: plan.known[i]
                    for i in range(start, end)
                    if i in plan.known
                },
            })

        def _block_key(item: dict) -> tuple:
            return (
                net.fingerprint(), tables.metric, ROUTING_TABLE_VERSION,
                item["pairs"], item["rates"], item["known"],
            )

        blocks = parallel_map(
            _estimate_block, items, workers=workers,
            shared=(tables, stats), cache=cache, kind="place-block",
            key_of=_block_key, telemetry=telemetry,
        )

        # Fold the flat per-block arrays back in pair order: one unbuffered
        # accumulation pass, bit-identical to the scalar per-pair loop.
        link_rate = accumulate_rates(
            np.concatenate([b["lids"] for b in blocks]),
            np.concatenate([b["edge_rates"] for b in blocks]),
            net.n_links,
        )
        node_rate = accumulate_rates(
            np.concatenate([b["nodes"] for b in blocks]),
            np.concatenate([b["node_rates"] for b in blocks]),
            net.n_nodes,
        )
    tel.count("place.flows", len(flows))
    tel.count("place.pairs", n_pairs)
    tel.count("place.walks", plan.n_walks)
    tel.count("place.blocks", len(items))
    return TrafficEstimate(
        link_rate=link_rate, node_rate=node_rate, n_routes=plan.n_walks
    )


@dataclass
class TrafficEstimateState:
    """Routed pairs + their paths, kept live across topology changes.

    Produced by :func:`estimate_traffic_state`; after an incremental
    routing repair (:func:`repro.routing.delta.update_routing`),
    :func:`update_traffic_estimate` re-walks only the pairs whose stored
    path crossed a recomputed source row and re-aggregates.  ``tables``
    must be the *same* object the delta engine splices into.
    """

    net: Network
    tables: RoutingTables
    pairs: list
    pair_rates: np.ndarray
    paths: list
    estimate: TrafficEstimate


def _aggregate_paths(
    net: Network, tables: RoutingTables, paths, pair_rates
) -> TrafficEstimate:
    """Flatten + accumulate all paths, exactly like the single-block
    fold in :func:`estimate_traffic` (bit-identical by construction)."""
    nodes, node_rates, us, vs, edge_rates = flatten_route_rates(
        paths, pair_rates
    )
    link_rate = accumulate_rates(
        tables.link_ids_of(us, vs), edge_rates, net.n_links
    )
    node_rate = accumulate_rates(nodes, node_rates, net.n_nodes)
    return TrafficEstimate(
        link_rate=link_rate, node_rate=node_rate, n_routes=len(paths)
    )


def estimate_traffic_state(
    net: Network,
    tables: RoutingTables,
    flows: list[PredictedFlow],
    *,
    telemetry=None,
    stats=None,
) -> TrafficEstimateState:
    """Route predicted flows and keep the per-pair paths for updates.

    The returned estimate is bit-identical to
    ``estimate_traffic(net, tables, flows, use_representatives=False)``
    — the state simply retains what that computation discards (the
    deduped pairs and their routed paths) so later
    :func:`update_traffic_estimate` calls can skip unchanged regions.
    """
    from repro.obs.telemetry import ensure_telemetry

    tel = ensure_telemetry(telemetry)
    with tel.span("place/estimate-state"):
        if not flows:
            pairs: list = []
            pair_rates = np.zeros(0, dtype=np.float64)
            paths: list = []
        else:
            pairs, pair_rates = _dedupe_flows(flows, net.n_nodes)
            if stats is not None:
                stats.routed_pairs += len(pairs)
            paths = batched_walks(tables, pairs, stats=stats)
        estimate = _aggregate_paths(net, tables, paths, pair_rates)
    tel.count("place.pairs", len(pairs))
    return TrafficEstimateState(
        net=net, tables=tables, pairs=pairs, pair_rates=pair_rates,
        paths=paths, estimate=estimate,
    )


def update_traffic_estimate(
    state: TrafficEstimateState,
    touched: np.ndarray,
    *,
    telemetry=None,
    stats=None,
) -> TrafficEstimate:
    """Repair a traffic estimate after an incremental routing update.

    ``touched`` is the recomputed-source array returned by
    :func:`repro.routing.delta.update_routing` (the tables themselves
    were already spliced in place).  A stored path is provably still the
    path a fresh walk would take iff none of its forwarding decisions —
    every node on it except the final destination — lives in a touched
    row; only the remainder is re-walked.  Aggregation always reruns
    over all pairs (link ids behind a hop can change under link
    up/down), so the result is bit-identical to a from-scratch
    ``estimate_traffic(..., use_representatives=False)`` on the updated
    tables.  ``stats`` fills ``rewalked_pairs`` / ``kept_pairs``.
    """
    from repro.obs.telemetry import ensure_telemetry

    tel = ensure_telemetry(telemetry)
    net, tables = state.net, state.tables
    n_pairs = len(state.pairs)
    with tel.span("place/estimate-update"):
        touched = np.asarray(touched, dtype=np.int64)
        if n_pairs and len(touched):
            lengths = np.fromiter(
                (len(p) for p in state.paths), dtype=np.int64, count=n_pairs
            )
            total = int(lengths.sum())
            flat = np.fromiter(
                (v for p in state.paths for v in p), dtype=np.int64,
                count=total,
            )
            offsets = np.zeros(n_pairs, dtype=np.int64)
            np.cumsum(lengths[:-1], out=offsets[1:])
            touched_mask = np.zeros(net.n_nodes, dtype=bool)
            touched_mask[touched] = True
            hit = touched_mask[flat]
            hit[offsets + lengths - 1] = False  # dst decides nothing
            affected = np.logical_or.reduceat(hit, offsets)
            walk_idx = np.flatnonzero(affected)
        else:
            walk_idx = np.zeros(0, dtype=np.int64)
        if len(walk_idx):
            rewalked = batched_walks(
                tables, [state.pairs[i] for i in walk_idx.tolist()],
                stats=stats,
            )
            for i, path in zip(walk_idx.tolist(), rewalked):
                state.paths[i] = path
        if stats is not None:
            stats.rewalked_pairs += len(walk_idx)
            stats.kept_pairs += n_pairs - len(walk_idx)
        state.estimate = _aggregate_paths(
            net, tables, state.paths, state.pair_rates
        )
    tel.count("place.rewalked_pairs", len(walk_idx))
    return state.estimate


def build_place_inputs(
    net: Network,
    tables: RoutingTables,
    background: list[TrafficGenerator],
    apps: list[ForegroundApp],
    memory_weight: float = 0.1,
    memory_mode: str = "sum",
    use_representatives: bool = True,
    *,
    workers: int | None = 0,
    cache=None,
    pairs_per_block: int | None = None,
    telemetry=None,
) -> PlaceInputs:
    """Compute PLACE vertex/edge weights.

    ``background`` generators must already be prepared (populations fixed)
    so their predictions are available.  ``workers`` / ``cache`` /
    ``pairs_per_block`` tune the traffic estimation (see
    :func:`estimate_traffic`) without changing any output bit.
    """
    flows: list[PredictedFlow] = []
    for gen in background:
        flows.extend(gen.predicted_flows(net, tables))
    for app in apps:
        flows.extend(foreground_placement_flows(net, app))
    estimate = estimate_traffic(
        net, tables, flows, use_representatives=use_representatives,
        workers=workers, cache=cache, pairs_per_block=pairs_per_block,
        telemetry=telemetry,
    )
    vwgt, link_weights_latency = balance_inputs(
        estimate.node_rate, net, memory_weight=memory_weight,
        memory_mode=memory_mode,
    )
    return PlaceInputs(
        vwgt=vwgt,
        link_weights_latency=link_weights_latency,
        link_weights_traffic=estimate.link_rate,
        estimate=estimate,
        diagnostics={
            "approach": "place",
            "n_predicted_flows": len(flows),
            "n_routes": estimate.n_routes,
            "total_predicted_mbytes_per_s": float(estimate.link_rate.sum() / 1e6),
        },
    )
