"""PLACE — application-placement-based mapping (§3.2).

Traffic is estimated in two parts and summed:

- **Background**: each generator supplies its average-bandwidth prediction
  per endpoint pair ("all traffic generators can provide some prediction of
  their generated traffic load").
- **Foreground**: the placement approximation — every injection point is
  assumed to fully utilize its access link, talking to all other endpoints
  with evenly distributed bandwidth.

Each predicted flow is routed by *traceroute inside the emulator* (ICMP over
the instantiated routing tables), optionally with one representative
endpoint per sub-network to cut the number of traceroute executions.  The
aggregated per-link load becomes the traffic objective; per-node
through-traffic becomes the compute term of the vertex weight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graphbuild import combine_compute_memory, latency_objective_weights
from repro.routing.icmp import discover_routes
from repro.routing.tables import RoutingTables
from repro.topology.network import Network
from repro.traffic.apps.base import ForegroundApp
from repro.traffic.flows import PredictedFlow, TrafficGenerator

__all__ = [
    "PlaceInputs",
    "TrafficEstimate",
    "foreground_placement_flows",
    "estimate_traffic",
    "build_place_inputs",
]


@dataclass(frozen=True)
class TrafficEstimate:
    """Routed and aggregated predicted traffic.

    ``link_rate`` / ``node_rate`` are bytes/s per link and through-node;
    ``n_routes`` counts distinct routed pairs (the traceroute budget).
    """

    link_rate: np.ndarray
    node_rate: np.ndarray
    n_routes: int


@dataclass(frozen=True)
class PlaceInputs:
    """Partition inputs of the PLACE approach."""

    vwgt: np.ndarray
    link_weights_latency: np.ndarray
    link_weights_traffic: np.ndarray
    estimate: TrafficEstimate
    diagnostics: dict


def foreground_placement_flows(
    net: Network,
    app: ForegroundApp,
    burst_factor: float = 2.0,
) -> list[PredictedFlow]:
    """The §3.2 placement approximation for one application.

    Each injection point is assumed to fully utilize its access link,
    "and every node talks to all other nodes with evenly distributed
    bandwidth".  When the application supplies a coarse aggregate-volume
    hint (:meth:`ForegroundApp.offered_bytes` — e.g. the matrix or dataflow
    sizes a user certainly knows), the per-endpoint rate is capped at
    ``burst_factor ×`` the implied average: on hosts whose NICs are far
    faster than the application, the literal full-utilization assumption
    would drown the (accurate) background prediction and misdirect the
    partition.  Without a hint, the paper's literal assumption applies.
    """
    endpoints = app.endpoints
    if len(endpoints) < 2:
        return []
    hint = app.offered_bytes()
    hint_rate = None
    if hint is not None and app.duration > 0:
        hint_rate = burst_factor * hint / (len(endpoints) * app.duration)
    flows: list[PredictedFlow] = []
    for src in endpoints:
        access_rate = net.node_total_bandwidth(src) / 8.0  # bytes/s
        src_rate = access_rate
        if hint_rate is not None:
            src_rate = min(access_rate, hint_rate)
        share = src_rate / (len(endpoints) - 1)
        for dst in endpoints:
            if dst != src:
                flows.append(PredictedFlow(src, dst, share))
    return flows


def estimate_traffic(
    net: Network,
    tables: RoutingTables,
    flows: list[PredictedFlow],
    use_representatives: bool = True,
) -> TrafficEstimate:
    """Route predicted flows (traceroute) and aggregate per link/node."""
    link_rate = np.zeros(net.n_links, dtype=np.float64)
    node_rate = np.zeros(net.n_nodes, dtype=np.float64)
    # Merge duplicate pairs first — one traceroute per distinct pair.
    pair_rate: dict[tuple[int, int], float] = {}
    for flow in flows:
        key = (flow.src, flow.dst)
        pair_rate[key] = pair_rate.get(key, 0.0) + flow.bytes_per_s
    pairs = sorted(pair_rate)
    routes, n_walks = discover_routes(
        tables, pairs, use_representatives=use_representatives
    )
    for pair in pairs:
        rate = pair_rate[pair]
        path = routes[pair]
        for node in path:
            node_rate[node] += rate
        for u, v in zip(path, path[1:]):
            link_rate[tables.link_between(u, v).link_id] += rate
    return TrafficEstimate(
        link_rate=link_rate, node_rate=node_rate, n_routes=n_walks
    )


def build_place_inputs(
    net: Network,
    tables: RoutingTables,
    background: list[TrafficGenerator],
    apps: list[ForegroundApp],
    memory_weight: float = 0.1,
    memory_mode: str = "sum",
    use_representatives: bool = True,
) -> PlaceInputs:
    """Compute PLACE vertex/edge weights.

    ``background`` generators must already be prepared (populations fixed)
    so their predictions are available.
    """
    flows: list[PredictedFlow] = []
    for gen in background:
        flows.extend(gen.predicted_flows(net, tables))
    for app in apps:
        flows.extend(foreground_placement_flows(net, app))
    estimate = estimate_traffic(
        net, tables, flows, use_representatives=use_representatives
    )
    vwgt = combine_compute_memory(
        estimate.node_rate, net, memory_weight=memory_weight, mode=memory_mode
    )
    return PlaceInputs(
        vwgt=vwgt,
        link_weights_latency=latency_objective_weights(net),
        link_weights_traffic=estimate.link_rate,
        estimate=estimate,
        diagnostics={
            "approach": "place",
            "n_predicted_flows": len(flows),
            "n_routes": estimate.n_routes,
            "total_predicted_mbytes_per_s": float(estimate.link_rate.sum() / 1e6),
        },
    )
