"""Building the partition input graph from the emulated network.

§2.2.1: "The input graph G is defined by two categories of parameters:
network structure and traffic information. ... Network traffic information
is used to define edge weights in the graph, and it may also affect vertex
weights."  This module provides the structure side — the CSR skeleton with a
CSR-slot → link-id index so any per-link weight vector can be dropped in —
and the individual weight recipes the approaches compose.
"""

from __future__ import annotations

import numpy as np

from repro.partition.csr import CSRGraph
from repro.routing.tables import memory_weights
from repro.topology.network import Network

__all__ = [
    "network_csr",
    "link_weights_to_adjwgt",
    "latency_objective_weights",
    "bandwidth_vertex_weights",
    "combine_compute_memory",
]


def network_csr(net: Network) -> tuple[CSRGraph, np.ndarray]:
    """Convert a network to a unit-weight CSR graph.

    Returns ``(graph, link_index)`` where ``link_index`` is parallel to
    ``graph.adjncy``: the link id behind each CSR adjacency slot.  Per-link
    weight vectors become CSR edge weights via
    :func:`link_weights_to_adjwgt`.
    """
    n = net.n_nodes
    xadj = np.zeros(n + 1, dtype=np.int64)
    for v in range(n):
        xadj[v + 1] = xadj[v] + net.degree(v)
    adjncy = np.zeros(xadj[-1], dtype=np.int64)
    link_index = np.zeros(xadj[-1], dtype=np.int64)
    cursor = xadj[:-1].copy()
    for v in range(n):
        for nbr, link in net.neighbors(v):
            adjncy[cursor[v]] = nbr
            link_index[cursor[v]] = link.link_id
            cursor[v] += 1
    graph = CSRGraph(
        xadj=xadj, adjncy=adjncy,
        adjwgt=np.ones(xadj[-1], dtype=np.float64),
        vwgt=np.ones((n, 1), dtype=np.float64),
    )
    return graph, link_index


def link_weights_to_adjwgt(
    link_weights: np.ndarray, link_index: np.ndarray
) -> np.ndarray:
    """Expand a per-link weight vector into a CSR-parallel edge weight
    array (each undirected edge gets the same weight in both slots)."""
    link_weights = np.asarray(link_weights, dtype=np.float64)
    return link_weights[link_index]


def latency_objective_weights(net: Network, exponent: float = 2.0) -> np.ndarray:
    """Per-link weights for the *maximize cut latency* objective.

    Graph partitioners minimize the cut, so the objective is inverted:
    ``w = (min_latency / latency) ** exponent`` ∈ (0, 1].  Low-latency links
    become heavy (expensive to cut, i.e. kept inside a partition, where they
    cannot shrink the lookahead); high-latency links become cheap to cut.

    The conservative window is set by the *minimum* cut latency, so the
    penalty for cutting a short link must dominate any number of long-link
    cuts; the super-linear exponent (default 2) encodes that.
    """
    lats = np.array(
        [link.latency_s for link in net.links], dtype=np.float64
    )
    if len(lats) == 0:
        return lats
    return (lats.min() / lats) ** exponent


def bandwidth_vertex_weights(net: Network) -> np.ndarray:
    """TOP's vertex weight: total link bandwidth in and out of each node
    (§3.1), normalized to Gbit/s for conditioning."""
    out = np.array(
        [net.node_total_bandwidth(v) for v in range(net.n_nodes)],
        dtype=np.float64,
    )
    return out / 1e9


def combine_compute_memory(
    compute: np.ndarray,
    net: Network,
    memory_weight: float = 0.1,
    mode: str = "sum",
) -> np.ndarray:
    """Combine the compute and memory requirements into vertex weights.

    §2.2.2: the vertex weight is a "weighted sum of computation and memory
    requirement"; the paper also notes multi-constraint balancing as an
    alternative.  Both columns are normalized to mean 1 before combining so
    ``memory_weight`` is a unit-free priority (the second "magic number" of
    §5; small when engine nodes have plenty of RAM).

    Returns ``(n, 1)`` for ``mode="sum"`` or ``(n, 2)`` for
    ``mode="constraint"``.
    """
    compute = np.asarray(compute, dtype=np.float64)
    memory = memory_weights(net)

    def normalized(x: np.ndarray) -> np.ndarray:
        mean = x.mean()
        return x / mean if mean > 0 else x

    comp_n, mem_n = normalized(compute), normalized(memory)
    if mode == "sum":
        return (comp_n + memory_weight * mem_n)[:, None]
    if mode == "constraint":
        return np.stack([comp_n, memory_weight * mem_n], axis=1)
    raise ValueError(f"unknown memory mode {mode!r}")
