"""The Mapper facade: one entry point for TOP / PLACE / PROFILE.

Implements Figure 1's pipeline: network structure + traffic information →
input graph (vertex constraints, edge objectives) → graph partitioning →
node-to-engine mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.graphbuild import link_weights_to_adjwgt, network_csr
from repro.core.multi_objective import combine_objectives
from repro.core.place import build_place_inputs
from repro.core.profile_map import build_profile_inputs
from repro.core.top import build_top_inputs
from repro.partition.api import PartitionResult, part_graph
from repro.profiling.aggregate import ProfileData
from repro.routing.spf import build_routing
from repro.routing.tables import RoutingTables
from repro.topology.network import Network
from repro.traffic.apps.base import ForegroundApp
from repro.traffic.flows import TrafficGenerator

__all__ = ["MapperConfig", "MappingResult", "Mapper"]


@dataclass(frozen=True)
class MapperConfig:
    """Tunables shared by the three approaches.

    Attributes
    ----------
    algorithm, tolerance, seed:
        Passed to the partitioner.
    latency_priority:
        The §2.3 ``p`` — tradeoff between the maximize-cut-latency and
        minimize-cut-traffic objectives.  Default 0.6 (the paper's 6:4).
    memory_weight, memory_mode:
        The §5 compute/memory tradeoff; ``mode`` is ``"sum"`` (weighted sum,
        the paper's default) or ``"constraint"`` (multi-constraint).
    use_segments, max_segments:
        §3.3 segment clustering for PROFILE.
    profile_interval:
        NetFlow binning interval (seconds) used when aggregating profiles.
    use_representatives:
        PLACE's traceroute-reduction optimization.
    """

    algorithm: str = "multilevel"
    # Balance envelope: looser than METIS's classic 1.03 because the
    # emulation weights are lumpy (hub routers, whole subnets) — a tight
    # envelope forces cuts through low-latency subnets, which costs far
    # more emulation time than a few percent of weight imbalance.
    tolerance: float = 1.20
    seed: int = 0
    latency_priority: float = 0.6
    memory_weight: float = 0.1
    memory_mode: str = "sum"
    use_segments: bool = True
    max_segments: int = 3
    profile_interval: float = 5.0
    use_representatives: bool = True


@dataclass
class MappingResult:
    """A node → engine-node assignment plus provenance."""

    approach: str
    parts: np.ndarray
    k: int
    partition: PartitionResult
    diagnostics: dict = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.approach.upper()}: {self.partition.summary()} "
            f"({self.diagnostics.get('n_segments', 0)} segments)"
        )


class Mapper:
    """Maps one network onto ``n_parts`` engine nodes.

    Builds the CSR skeleton and routing once; each ``map_*`` call assembles
    approach-specific weights and partitions.
    """

    def __init__(
        self,
        net: Network,
        n_parts: int,
        tables: RoutingTables | None = None,
        config: MapperConfig | None = None,
        engine_capacities: np.ndarray | None = None,
        telemetry=None,
    ) -> None:
        """``engine_capacities`` (shape ``(n_parts,)``) requests an uneven
        weight split for a heterogeneous engine cluster — the extension the
        paper's §5 leaves open ("currently assumes homogeneous physical
        resources").  ``telemetry`` (a
        :class:`repro.obs.telemetry.Telemetry`) records per-approach
        ``map/<approach>`` spans and the partitioner's own spans."""
        from repro.obs.telemetry import ensure_telemetry

        if n_parts < 1:
            raise ValueError("n_parts must be >= 1")
        self.net = net
        self.n_parts = n_parts
        self.telemetry = ensure_telemetry(telemetry)
        self.tables = (
            tables if tables is not None
            else build_routing(net, telemetry=self.telemetry)
        )
        self.config = config or MapperConfig()
        if engine_capacities is not None:
            caps = np.asarray(engine_capacities, dtype=np.float64)
            if caps.shape != (n_parts,):
                raise ValueError(
                    f"engine_capacities must have shape ({n_parts},)"
                )
            if np.any(caps <= 0):
                raise ValueError("engine capacities must be positive")
            self.target_fracs = caps / caps.sum()
        else:
            self.target_fracs = None
        self._graph, self._link_index = network_csr(net)

    # ------------------------------------------------------------------ #
    def _partition(
        self, vwgt: np.ndarray, link_weights: np.ndarray
    ) -> PartitionResult:
        graph = self._graph.with_vwgt(vwgt).with_adjwgt(
            link_weights_to_adjwgt(link_weights, self._link_index)
        )
        return part_graph(
            graph, self.n_parts, algorithm=self.config.algorithm,
            tolerance=self.config.tolerance, seed=self.config.seed,
            target_fracs=self.target_fracs, telemetry=self.telemetry,
        )

    def _partition_multi_objective(
        self,
        vwgt: np.ndarray,
        latency_weights: np.ndarray,
        traffic_weights: np.ndarray,
    ) -> tuple[PartitionResult, dict]:
        graph = self._graph.with_vwgt(vwgt)
        combo = combine_objectives(
            graph, self._link_index, latency_weights, traffic_weights,
            self.n_parts, p=self.config.latency_priority,
            algorithm=self.config.algorithm, tolerance=self.config.tolerance,
            seed=self.config.seed,
        )
        result = self._partition(vwgt, combo.link_weights)
        return result, {
            "c_latency": combo.c_latency,
            "c_bandwidth": combo.c_bandwidth,
            "latency_priority": combo.p,
        }

    # ------------------------------------------------------------------ #
    def map_top(self) -> MappingResult:
        """TOP: static topology, latency objective only (§3.1)."""
        with self.telemetry.span("map/top"):
            inputs = build_top_inputs(
                self.net, memory_weight=self.config.memory_weight,
                memory_mode=self.config.memory_mode,
            )
            result = self._partition(inputs.vwgt, inputs.link_weights)
        return MappingResult(
            approach="top", parts=result.parts, k=self.n_parts,
            partition=result, diagnostics=dict(inputs.diagnostics),
        )

    def map_place(
        self,
        background: list[TrafficGenerator],
        apps: list[ForegroundApp],
    ) -> MappingResult:
        """PLACE: predicted background + placement-approximated foreground
        traffic, multi-objective partitioning (§3.2)."""
        with self.telemetry.span("map/place"):
            inputs = build_place_inputs(
                self.net, self.tables, background, apps,
                memory_weight=self.config.memory_weight,
                memory_mode=self.config.memory_mode,
                use_representatives=self.config.use_representatives,
                telemetry=self.telemetry,
            )
            result, mo_diag = self._partition_multi_objective(
                inputs.vwgt, inputs.link_weights_latency,
                inputs.link_weights_traffic,
            )
        diag = dict(inputs.diagnostics)
        diag.update(mo_diag)
        return MappingResult(
            approach="place", parts=result.parts, k=self.n_parts,
            partition=result, diagnostics=diag,
        )

    def map_profile(
        self,
        profile: ProfileData,
        initial_parts: np.ndarray | None = None,
    ) -> MappingResult:
        """PROFILE: measured NetFlow loads with segment clustering (§3.3)."""
        with self.telemetry.span("map/profile"):
            inputs = build_profile_inputs(
                self.net, profile, initial_parts=initial_parts,
                use_segments=self.config.use_segments,
                max_segments=self.config.max_segments,
                memory_weight=self.config.memory_weight,
                memory_mode=self.config.memory_mode,
            )
            result, mo_diag = self._partition_multi_objective(
                inputs.vwgt, inputs.link_weights_latency,
                inputs.link_weights_traffic,
            )
        diag = dict(inputs.diagnostics)
        diag.update(mo_diag)
        return MappingResult(
            approach="profile", parts=result.parts, k=self.n_parts,
            partition=result, diagnostics=diag,
        )

    def map_network(
        self,
        approach: str,
        background: list[TrafficGenerator] | None = None,
        apps: list[ForegroundApp] | None = None,
        profile: ProfileData | None = None,
        initial_parts: np.ndarray | None = None,
    ) -> MappingResult:
        """Dispatch by approach name ("top" | "place" | "profile")."""
        approach = approach.lower()
        if approach == "top":
            return self.map_top()
        if approach == "place":
            return self.map_place(background or [], apps or [])
        if approach == "profile":
            if profile is None:
                raise ValueError("PROFILE requires profile data")
            return self.map_profile(profile, initial_parts=initial_parts)
        raise ValueError(f"unknown approach {approach!r}")
