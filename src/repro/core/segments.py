"""Profile segment clustering (§3.3).

"The clustering algorithm first removes segments that have little traffic.
Then it gets a smooth load curve for each physical node by calculating the
average load of each node over a larger period of time.  The dominating node
of [a] special point is the node with the maximal load.  The change of
dominating node identifies a major load variation of the emulation system.
So we can split the whole emulation period at these odd points and use each
segment as a constraint to the graph partitioning algorithm."

Segments are represented as boolean masks over profile bins (low-traffic
bins are excluded from every segment — they were "removed").
"""

from __future__ import annotations

import numpy as np

__all__ = ["find_segments", "segment_weights"]


def _smooth(series: np.ndarray, width: int) -> np.ndarray:
    """Row-wise moving average with edge-shrinking window."""
    # numpy's mode="same" returns max(M, N) samples, so the kernel must not
    # exceed the series length (short profiling runs).
    width = min(width, series.shape[1])
    if width <= 1:
        return series
    kernel = np.ones(width) / width
    out = np.empty_like(series, dtype=np.float64)
    norm = np.convolve(np.ones(series.shape[1]), kernel, mode="same")
    for i in range(series.shape[0]):
        out[i] = np.convolve(series[i], kernel, mode="same") / norm
    return out


def find_segments(
    lp_series: np.ndarray,
    low_traffic_frac: float = 0.05,
    smooth_bins: int = 7,
    min_segment_bins: int = 8,
    max_segments: int = 3,
    max_change_rate: float = 0.20,
    retention_threshold: float = 0.65,
) -> list[np.ndarray]:
    """Split the emulation lifetime into dominating-node segments.

    Parameters
    ----------
    lp_series:
        ``(k, n_bins)`` per-engine-node load series from the profiling run
        (under the initial partition).
    low_traffic_frac:
        Bins whose total load is below this fraction of the peak bin are
        removed before clustering (and from the resulting weights).
    smooth_bins:
        Moving-average width for the smooth load curves.
    min_segment_bins:
        Segments shorter than this merge into their predecessor.
    max_segments:
        Upper bound on constraints handed to the partitioner; the smallest
        segments merge into neighbours until the bound holds.
    max_change_rate:
        Stability guard: when the dominating node changes more often than
        this fraction of active bins, the variation is fast oscillation
        (e.g. a round-robin communication pattern), not stage structure —
        per-stage constraints would chase noise, so the whole run becomes
        one segment (the average-load constraint).
    retention_threshold:
        A segment boundary is kept only when it marks a real stage change:
        one side's dominating engine node must lose at least
        ``1 - retention_threshold`` of its load *share* across the
        boundary.  Boundaries where every dominant stays comparably hot are
        background-randomness drift; constraints built from them amplify
        profiling noise instead of balancing stages.

    Returns
    -------
    List of boolean masks over bins; masks are disjoint and cover every
    active bin.  At least one segment is returned whenever any bin is
    active.
    """
    lp_series = np.asarray(lp_series, dtype=np.float64)
    if lp_series.ndim != 2:
        raise ValueError("lp_series must be (k, n_bins)")
    k, n_bins = lp_series.shape
    total = lp_series.sum(axis=0)
    peak = total.max() if n_bins else 0.0
    if peak <= 0:
        return []
    active = total >= low_traffic_frac * peak
    if not active.any():
        return []

    smooth = _smooth(lp_series, smooth_bins)
    dominating = np.argmax(smooth, axis=0)

    active_idx = np.nonzero(active)[0]
    # Stability guard (see max_change_rate above).
    if len(active_idx) > 1:
        dom_active = dominating[active_idx]
        changes = int((np.diff(dom_active) != 0).sum())
        if changes / len(active_idx) > max_change_rate:
            mask = np.zeros(n_bins, dtype=bool)
            mask[active_idx] = True
            return [mask]

    # Split the active bins where the dominating engine node changes.
    segments: list[list[int]] = [[int(active_idx[0])]]
    for prev, cur in zip(active_idx[:-1], active_idx[1:]):
        if dominating[cur] != dominating[prev]:
            segments.append([int(cur)])
        else:
            segments[-1].append(int(cur))

    # Merge short segments into their predecessor (or successor for the
    # first one).
    merged: list[list[int]] = []
    for seg in segments:
        if merged and len(seg) < min_segment_bins:
            merged[-1].extend(seg)
        else:
            merged.append(list(seg))
    if len(merged) > 1 and len(merged[0]) < min_segment_bins:
        merged[1] = merged[0] + merged[1]
        merged = merged[1:]

    # Coalesce consecutive segments that ended up with the same dominating
    # engine node (short-blip merges can create such pairs).
    def dominating_of(seg: list[int]) -> int:
        return int(np.argmax(smooth[:, np.array(seg, dtype=np.int64)].sum(axis=1)))

    coalesced: list[list[int]] = []
    for seg in merged:
        if coalesced and dominating_of(coalesced[-1]) == dominating_of(seg):
            coalesced[-1] = coalesced[-1] + seg
        else:
            coalesced.append(seg)
    merged = coalesced

    # Keep a boundary only on a genuine dominance shift (see
    # retention_threshold above).
    def share_vector(seg: list[int]) -> np.ndarray:
        v = lp_series[:, np.array(seg, dtype=np.int64)].sum(axis=1)
        total_v = v.sum()
        return v / total_v if total_v > 0 else v

    def is_stage_boundary(a: list[int], b: list[int]) -> bool:
        sa, sb = share_vector(a), share_vector(b)
        if sa.sum() == 0 or sb.sum() == 0:
            return False
        dom_a, dom_b = int(np.argmax(sa)), int(np.argmax(sb))
        retention = min(
            sb[dom_a] / sa[dom_a] if sa[dom_a] > 0 else 1.0,
            sa[dom_b] / sb[dom_b] if sb[dom_b] > 0 else 1.0,
        )
        return retention < retention_threshold

    deduped: list[list[int]] = []
    for seg in merged:
        if deduped and not is_stage_boundary(deduped[-1], seg):
            deduped[-1] = deduped[-1] + seg
            continue
        deduped.append(seg)
    merged = deduped

    # Enforce the cap by repeatedly folding the smallest segment into its
    # smaller neighbour.
    while len(merged) > max_segments:
        sizes = [len(s) for s in merged]
        i = int(np.argmin(sizes))
        if i == 0:
            merged[1] = merged[0] + merged[1]
            del merged[0]
        elif i == len(merged) - 1:
            merged[-2] = merged[-2] + merged[-1]
            del merged[-1]
        else:
            j = i - 1 if len(merged[i - 1]) <= len(merged[i + 1]) else i + 1
            a, b = sorted((i, j))
            merged[a] = merged[a] + merged[b]
            del merged[b]

    masks = []
    for seg in merged:
        mask = np.zeros(n_bins, dtype=bool)
        mask[np.array(seg, dtype=np.int64)] = True
        masks.append(mask)
    return masks


def segment_weights(
    node_series: np.ndarray, segments: list[np.ndarray]
) -> np.ndarray:
    """Per-segment vertex weights: ``(n_nodes, n_segments)``.

    Column ``s`` is each virtual node's load inside segment ``s`` — the
    multi-constraint input of §3.3.
    """
    node_series = np.asarray(node_series, dtype=np.float64)
    if not segments:
        raise ValueError("no segments supplied")
    cols = [node_series[:, mask].sum(axis=1) for mask in segments]
    return np.stack(cols, axis=1)
