"""Multi-objective edge-weight combination (§2.3).

The paper combines the latency objective and the traffic objective with the
algorithm of Schloegel, Karypis & Kumar [18]:

1. partition with the latency weights alone → optimal cut ``C_latency``;
2. partition with the traffic weights alone → optimal cut ``C_bandwidth``;
3. set every edge to
   ``w = p · w_latency / C_latency + (1 − p) · w_bandwidth / C_bandwidth``
   where ``p`` is the user-controllable latency priority (default 0.6 — the
   paper's 6:4 ratio);
4. partition once more with the combined weights.

Steps 1–3 live here; the caller runs step 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graphbuild import link_weights_to_adjwgt
from repro.partition.api import part_graph
from repro.partition.csr import CSRGraph

__all__ = ["MultiObjective", "combine_objectives"]

_EPS = 1e-12


@dataclass(frozen=True)
class MultiObjective:
    """Result of the combination.

    Attributes
    ----------
    link_weights:
        Combined per-link weights for the final partitioning run.
    c_latency, c_bandwidth:
        The single-objective optimal cuts used as normalizers.
    p:
        The latency priority used.
    """

    link_weights: np.ndarray
    c_latency: float
    c_bandwidth: float
    p: float


def combine_objectives(
    graph: CSRGraph,
    link_index: np.ndarray,
    latency_weights: np.ndarray,
    traffic_weights: np.ndarray,
    k: int,
    p: float = 0.6,
    algorithm: str = "multilevel",
    tolerance: float = 1.05,
    seed: int = 0,
) -> MultiObjective:
    """Compute the §2.3 combined per-link edge weights.

    ``graph`` must already carry the vertex weights (constraints) that the
    final partitioning will use, so the normalizing single-objective runs
    see the same balance problem.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("latency priority p must be in [0, 1]")
    latency_weights = np.asarray(latency_weights, dtype=np.float64)
    traffic_weights = np.asarray(traffic_weights, dtype=np.float64)
    if latency_weights.shape != traffic_weights.shape:
        raise ValueError("objective weight vectors must be parallel")

    g_lat = graph.with_adjwgt(
        link_weights_to_adjwgt(latency_weights, link_index)
    )
    r_lat = part_graph(g_lat, k, algorithm=algorithm, tolerance=tolerance,
                       seed=seed)
    g_bw = graph.with_adjwgt(
        link_weights_to_adjwgt(traffic_weights, link_index)
    )
    r_bw = part_graph(g_bw, k, algorithm=algorithm, tolerance=tolerance,
                      seed=seed)

    c_lat = max(r_lat.weighted_cut, _EPS)
    c_bw = max(r_bw.weighted_cut, _EPS)
    combined = p * latency_weights / c_lat + (1.0 - p) * traffic_weights / c_bw
    return MultiObjective(
        link_weights=combined, c_latency=float(r_lat.weighted_cut),
        c_bandwidth=float(r_bw.weighted_cut), p=p,
    )
