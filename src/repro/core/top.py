"""TOP — network-topology-based mapping (§3.1).

"Each virtual node is weighted with the total bandwidth in and out of it.
The optimization objective is to maximize the link latency between
simulation engine nodes. ... This basic approach is simple and fast,
therefore, it forms a performance baseline for our experiments."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graphbuild import (
    bandwidth_vertex_weights,
    combine_compute_memory,
    latency_objective_weights,
)
from repro.topology.network import Network

__all__ = ["TopInputs", "build_top_inputs"]


@dataclass(frozen=True)
class TopInputs:
    """Partition inputs of the TOP approach.

    ``vwgt`` — vertex weights (bandwidth compute term + memory term);
    ``link_weights`` — the latency objective;
    ``diagnostics`` — human-oriented details for experiment logs.
    """

    vwgt: np.ndarray
    link_weights: np.ndarray
    diagnostics: dict


def build_top_inputs(
    net: Network,
    memory_weight: float = 0.1,
    memory_mode: str = "sum",
) -> TopInputs:
    """Compute TOP vertex/edge weights for ``net``."""
    compute = bandwidth_vertex_weights(net)
    vwgt = combine_compute_memory(
        compute, net, memory_weight=memory_weight, mode=memory_mode
    )
    link_weights = latency_objective_weights(net)
    return TopInputs(
        vwgt=vwgt,
        link_weights=link_weights,
        diagnostics={
            "approach": "top",
            "compute_total_gbps": float(compute.sum()),
            "memory_weight": memory_weight,
            "memory_mode": memory_mode,
        },
    )
