"""The paper's contribution: traffic-based network mapping.

Three approaches turn an emulated network plus (increasingly detailed)
traffic information into a partition-ready weighted graph:

- :mod:`repro.core.top` — **TOP**: static topology only (§3.1).
- :mod:`repro.core.place` — **PLACE**: topology + predicted background
  traffic + application-placement approximation, routed with traceroute
  (§3.2).
- :mod:`repro.core.profile_map` — **PROFILE**: NetFlow profile data with
  segment clustering into multi-constraint weights (§3.3).

Shared machinery: :mod:`repro.core.graphbuild` (network → CSR graph and the
individual weight recipes), :mod:`repro.core.multi_objective` (the §2.3
normalized combination of the latency and traffic objectives) and
:mod:`repro.core.segments` (the §3.3 dominating-node clustering).

:class:`repro.core.mapper.Mapper` is the facade tying it all together.
"""

from repro.core.automem import AutoMemoryResult, auto_memory_map
from repro.core.dynamic import DynamicConfig, DynamicResult, dynamic_remap
from repro.core.mapper import Mapper, MapperConfig, MappingResult
from repro.core.multi_objective import MultiObjective, combine_objectives
from repro.core.segments import find_segments, segment_weights

__all__ = [
    "Mapper",
    "MapperConfig",
    "MappingResult",
    "combine_objectives",
    "MultiObjective",
    "find_segments",
    "segment_weights",
    "dynamic_remap",
    "DynamicConfig",
    "DynamicResult",
    "auto_memory_map",
    "AutoMemoryResult",
]

APPROACHES = ("top", "place", "profile")
