"""Shared aggregation kernels for the mapping approaches.

PLACE folds per-route predicted rates into per-link / per-node loads;
PROFILE folds per-node NetFlow series into per-engine loads; both combine
a compute load with the routing-table memory model into vertex weights.
This module is the common home of those folds.

The accumulation primitive is ``np.add.at`` — *unbuffered*, so repeated
indices apply their additions in element order.  A vectorized fold over
indices flattened in loop order is therefore **bit-identical** to the
scalar Python loop it replaces, which is what lets the differential parity
suite compare optimized and reference kernels with ``==`` instead of
tolerances.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accumulate_rates",
    "flatten_route_rates",
    "balance_inputs",
]


def accumulate_rates(
    idx: np.ndarray, values: np.ndarray, size: int
) -> np.ndarray:
    """Sum ``values`` into ``size`` buckets selected by ``idx``.

    ``values`` may be ``(m,)`` or ``(m, ...)`` (rows accumulate whole).
    Additions land in element order (``np.add.at`` is unbuffered), so the
    result is bit-identical to the equivalent sequential loop.
    """
    idx = np.asarray(idx, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    out = np.zeros((size,) + values.shape[1:], dtype=np.float64)
    np.add.at(out, idx, values)
    return out


def flatten_route_rates(
    paths: list[list[int]], rates: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten routed paths + per-path rates into accumulation arrays.

    Returns ``(nodes, node_rates, us, vs, edge_rates)``: every node visit
    and every traversed edge of every path, in path-major order — exactly
    the order the scalar accumulation loop would touch them, so feeding
    them to :func:`accumulate_rates` reproduces its sums bit-for-bit.
    """
    n_paths = len(paths)
    rates = np.asarray(rates, dtype=np.float64)
    lengths = np.fromiter(
        (len(p) for p in paths), dtype=np.int64, count=n_paths
    )
    total = int(lengths.sum())
    nodes = np.fromiter(
        (v for p in paths for v in p), dtype=np.int64, count=total
    )
    node_rates = np.repeat(rates, lengths)
    # Edges: consecutive node pairs within each path; the last slot of
    # every path starts no edge.
    is_last = np.zeros(total, dtype=bool)
    if n_paths:
        is_last[np.cumsum(lengths) - 1] = True
    us = nodes[~is_last]
    vs = nodes[1:][~is_last[:-1]] if total else nodes[:0]
    edge_rates = node_rates[~is_last]
    return nodes, node_rates, us, vs, edge_rates


def balance_inputs(
    compute: np.ndarray,
    net,
    memory_weight: float = 0.1,
    memory_mode: str = "sum",
) -> tuple[np.ndarray, np.ndarray]:
    """Vertex weights + latency-objective edge weights for one approach.

    The §2.2.2 recipe shared by PLACE and PROFILE: the approach's compute
    load combines with the routing-table memory model into ``vwgt``, and
    the network's latencies become the maximize-cut-latency objective.
    Returns ``(vwgt, link_weights_latency)``.
    """
    from repro.core.graphbuild import (
        combine_compute_memory,
        latency_objective_weights,
    )

    vwgt = combine_compute_memory(
        compute, net, memory_weight=memory_weight, mode=memory_mode
    )
    return vwgt, latency_objective_weights(net)
