"""Seed sweeps: mean ± spread statistics over repeated experiments.

The paper reports single runs; a reproduction should show its orderings are
not seed luck.  :func:`sweep_setup` repeats ``evaluate_setup`` across seeds
and aggregates each §4.1.1 metric per approach; :func:`ordering_confidence`
reports how often the expected ordering (TOP worst, PROFILE best) held.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.runner import RunnerConfig, evaluate_setup
from repro.experiments.setups import ExperimentSetup

__all__ = ["MetricStats", "SweepResult", "sweep_setup", "ordering_confidence"]


@dataclass(frozen=True)
class MetricStats:
    """Mean / std / min / max of one metric across seeds."""

    mean: float
    std: float
    min: float
    max: float
    values: tuple[float, ...]

    @classmethod
    def of(cls, values: list[float]) -> "MetricStats":
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            mean=float(arr.mean()), std=float(arr.std()),
            min=float(arr.min()), max=float(arr.max()),
            values=tuple(float(v) for v in arr),
        )

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f}"


@dataclass
class SweepResult:
    """Per-approach metric statistics for one setup across seeds."""

    setup_name: str
    seeds: tuple[int, ...]
    imbalance: dict[str, MetricStats]
    app_time: dict[str, MetricStats]
    network_time: dict[str, MetricStats]

    def render(self) -> str:
        lines = [
            f"{self.setup_name} over seeds {list(self.seeds)}",
            f"{'approach':10s} {'imbalance':>18s} {'app time [s]':>22s} "
            f"{'net time [s]':>22s}",
        ]
        for name in self.imbalance:
            lines.append(
                f"{name:10s} {str(self.imbalance[name]):>18s} "
                f"{self.app_time[name].mean:11.1f} ± "
                f"{self.app_time[name].std:6.1f} "
                f"{self.network_time[name].mean:11.1f} ± "
                f"{self.network_time[name].std:6.1f}"
            )
        return "\n".join(lines)


def sweep_setup(
    setup: ExperimentSetup,
    seeds: tuple[int, ...] = (1, 2, 3),
    approaches: tuple[str, ...] = ("top", "place", "profile"),
    config: RunnerConfig | None = None,
) -> SweepResult:
    """Run ``evaluate_setup`` once per seed and aggregate the metrics."""
    if not seeds:
        raise ValueError("need at least one seed")
    imbalance: dict[str, list[float]] = {a: [] for a in approaches}
    app_time: dict[str, list[float]] = {a: [] for a in approaches}
    net_time: dict[str, list[float]] = {a: [] for a in approaches}
    for seed in seeds:
        results = evaluate_setup(
            setup, approaches=approaches, seed=seed, config=config
        )
        for name in approaches:
            outcome = results[name].outcome
            imbalance[name].append(outcome.load_imbalance)
            app_time[name].append(outcome.app_emulation_time)
            net_time[name].append(outcome.network_emulation_time)
    return SweepResult(
        setup_name=setup.describe(),
        seeds=tuple(seeds),
        imbalance={a: MetricStats.of(v) for a, v in imbalance.items()},
        app_time={a: MetricStats.of(v) for a, v in app_time.items()},
        network_time={a: MetricStats.of(v) for a, v in net_time.items()},
    )


def ordering_confidence(
    result: SweepResult,
    metric: str = "imbalance",
    better: str = "profile",
    worse: str = "top",
) -> float:
    """Fraction of seeds in which ``better`` beat ``worse`` on ``metric``."""
    stats = getattr(result, metric)
    if better not in stats or worse not in stats:
        raise ValueError("approach missing from the sweep")
    b = np.asarray(stats[better].values)
    w = np.asarray(stats[worse].values)
    return float((b < w).mean())
