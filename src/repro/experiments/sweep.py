"""Seed sweeps: mean ± spread statistics over repeated experiments.

The paper reports single runs; a reproduction should show its orderings are
not seed luck.  :func:`sweep_setup` repeats ``evaluate_setup`` across seeds
and aggregates each §4.1.1 metric per approach; :func:`ordering_confidence`
reports how often the expected ordering (TOP worst, PROFILE best) held.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.runner import RunnerConfig, evaluate_setup
from repro.experiments.setups import ExperimentSetup

__all__ = [
    "MetricStats",
    "SweepResult",
    "sweep_setup",
    "sweep_result_from_grid",
    "ordering_confidence",
]


@dataclass(frozen=True)
class MetricStats:
    """Mean / std / min / max of one metric across seeds."""

    mean: float
    std: float
    min: float
    max: float
    values: tuple[float, ...]

    @classmethod
    def of(cls, values: list[float]) -> "MetricStats":
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            mean=float(arr.mean()), std=float(arr.std()),
            min=float(arr.min()), max=float(arr.max()),
            values=tuple(float(v) for v in arr),
        )

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f}"


@dataclass
class SweepResult:
    """Per-approach metric statistics for one setup across seeds."""

    setup_name: str
    seeds: tuple[int, ...]
    imbalance: dict[str, MetricStats]
    app_time: dict[str, MetricStats]
    network_time: dict[str, MetricStats]

    def render(self) -> str:
        lines = [
            f"{self.setup_name} over seeds {list(self.seeds)}",
            f"{'approach':10s} {'imbalance':>18s} {'app time [s]':>22s} "
            f"{'net time [s]':>22s}",
        ]
        for name in self.imbalance:
            lines.append(
                f"{name:10s} {str(self.imbalance[name]):>18s} "
                f"{self.app_time[name].mean:11.1f} ± "
                f"{self.app_time[name].std:6.1f} "
                f"{self.network_time[name].mean:11.1f} ± "
                f"{self.network_time[name].std:6.1f}"
            )
        return "\n".join(lines)


def _aggregate(
    setup_name: str,
    seeds: tuple[int, ...],
    approaches: tuple[str, ...],
    outcome_of,
) -> SweepResult:
    """Build a :class:`SweepResult` from ``outcome_of(seed, approach)``."""
    imbalance: dict[str, list[float]] = {a: [] for a in approaches}
    app_time: dict[str, list[float]] = {a: [] for a in approaches}
    net_time: dict[str, list[float]] = {a: [] for a in approaches}
    for seed in seeds:
        for name in approaches:
            outcome = outcome_of(seed, name)
            imbalance[name].append(outcome.load_imbalance)
            app_time[name].append(outcome.app_emulation_time)
            net_time[name].append(outcome.network_emulation_time)
    return SweepResult(
        setup_name=setup_name,
        seeds=tuple(seeds),
        imbalance={a: MetricStats.of(v) for a, v in imbalance.items()},
        app_time={a: MetricStats.of(v) for a, v in app_time.items()},
        network_time={a: MetricStats.of(v) for a, v in net_time.items()},
    )


def sweep_setup(
    setup: ExperimentSetup,
    seeds: tuple[int, ...] = (1, 2, 3),
    approaches: tuple[str, ...] = ("top", "place", "profile"),
    config: RunnerConfig | None = None,
    *,
    runtime=None,
    cache=None,
    progress=None,
    telemetry=None,
) -> SweepResult:
    """Run ``evaluate_setup`` once per seed and aggregate the metrics.

    The default path runs the seeds serially in-process.  Passing a
    ``runtime`` (:class:`repro.runtime.executor.RuntimeConfig`) fans the
    (seed × approach) grid out over worker processes instead — results are
    bit-for-bit identical to the serial path (deterministic per-cell
    seeding).  ``cache`` shares routing tables and emulation runs across
    cells and across repeated sweeps; ``progress`` is forwarded to the
    grid executor.  ``telemetry``
    (:class:`repro.obs.telemetry.Telemetry`) collects the sweep's phase
    breakdown, per-cell records and load timelines; cell completions are
    additionally mirrored into its ``progress`` event series live, so a
    monitoring hook sees them as they happen.
    """
    from repro.obs.telemetry import ensure_telemetry

    tel = ensure_telemetry(telemetry)
    if not seeds:
        raise ValueError("need at least one seed")
    seeds = tuple(int(s) for s in seeds)
    if tel.enabled:
        user_progress = progress

        def progress(cell, done, total):  # noqa: F811 - deliberate wrap
            tel.event(
                "progress", done=done, total=total,
                setup=cell.setup_name, seed=cell.seed,
                approach=cell.approach, ok=cell.ok,
                duration_s=round(cell.duration_s, 6),
            )
            if user_progress is not None:
                user_progress(cell, done, total)

    if runtime is not None:
        from repro.runtime.executor import run_grid

        with tel.span("sweep"):
            grid = run_grid(
                setup, seeds, approaches, config=config, runtime=runtime,
                cache=cache, progress=progress, telemetry=tel,
            )
            return sweep_result_from_grid(grid, setup, seeds, approaches)
    results_by_seed = {}
    with tel.span("sweep"):
        for seed in seeds:
            results_by_seed[seed] = evaluate_setup(
                setup, approaches=approaches, seed=seed, config=config,
                cache=cache, telemetry=tel,
            )
            if progress is not None:
                _emit_serial_progress(
                    progress, setup, seed, seeds, approaches,
                    results_by_seed[seed],
                )
    return _aggregate(
        setup.describe(), seeds, tuple(approaches),
        lambda seed, name: results_by_seed[seed][name].outcome,
    )


def _emit_serial_progress(
    progress, setup, seed, seeds, approaches, results
) -> None:
    """Synthesize per-cell progress callbacks on the serial path.

    The grid executor reports cells as workers finish; the serial path
    previously reported nothing.  One :class:`CellResult`-shaped record
    per approach keeps the callback signature identical on both paths.
    """
    from repro.runtime.executor import CellResult

    seed_index = list(seeds).index(seed)
    total = len(seeds) * len(approaches)
    for i, name in enumerate(approaches):
        cell = CellResult(
            setup_name=setup.name, app_name=setup.app_name,
            seed=seed, approach=name,
            outcome=results[name].outcome,
        )
        progress(cell, seed_index * len(approaches) + i + 1, total)


def sweep_result_from_grid(
    grid, setup: ExperimentSetup, seeds, approaches
) -> SweepResult:
    """Aggregate one setup's cells of a grid run into a SweepResult.

    Raises ``RuntimeError`` listing the error records if any cell of the
    requested (seed × approach) block failed — statistics over a partial
    grid would be silently wrong.
    """
    failures = [
        c for c in grid.failures() if c.setup_name == setup.name
    ]
    if failures:
        detail = "; ".join(
            f"seed={c.seed} approach={c.approach}: "
            f"{(c.error or '').splitlines()[0]}"
            for c in failures[:5]
        )
        raise RuntimeError(
            f"{len(failures)} sweep cell(s) failed: {detail}"
        )
    return _aggregate(
        setup.describe(), tuple(int(s) for s in seeds), tuple(approaches),
        lambda seed, name: grid.outcome(setup.name, seed, name),
    )


def ordering_confidence(
    result: SweepResult,
    metric: str = "imbalance",
    better: str = "profile",
    worse: str = "top",
) -> float:
    """Fraction of seeds in which ``better`` beat ``worse`` on ``metric``."""
    stats = getattr(result, metric)
    if better not in stats or worse not in stats:
        raise ValueError("approach missing from the sweep")
    b = np.asarray(stats[better].values)
    w = np.asarray(stats[worse].values)
    return float((b < w).mean())
