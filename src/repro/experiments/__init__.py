"""End-to-end experiment harness regenerating the paper's evaluation.

- :mod:`repro.experiments.setups` — the Table 1 configurations plus the
  §4.2.3 large-network setup.
- :mod:`repro.experiments.workloads` — background + foreground workload
  construction with per-topology scaling.
- :mod:`repro.experiments.runner` — profile run → mapping → evaluation run
  → metrics, for each approach.
- :mod:`repro.experiments.report` — table/series rendering for every figure
  and table.
"""

from repro.experiments import report, runner, setups, workloads
from repro.experiments.runner import ApproachEvaluation, evaluate_setup
from repro.experiments.setups import ExperimentSetup
from repro.experiments.workloads import Workload, build_workload

__all__ = [
    "setups",
    "workloads",
    "runner",
    "report",
    "ExperimentSetup",
    "Workload",
    "build_workload",
    "evaluate_setup",
    "ApproachEvaluation",
]
