"""Workload construction: background traffic + foreground application.

§4.2.1 runs each application on each topology "with moderate background
traffic".  Background is the HTTP model with populations scaled to the
topology size and servers placed with a Zipf site bias (server farms).
Foreground endpoints default to *packed* placement — the application
occupies one or two sites, like a real Grid job — which is what makes its
injection points matter to the mapping approaches; ``placement="spread"``
gives the round-robin alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.compute import ComputeProfile
from repro.engine.kernel import EmulationKernel
from repro.topology.network import Network
from repro.traffic.apps.base import ForegroundApp
from repro.traffic.apps.gridnpb import GridNPBApp
from repro.traffic.apps.scalapack import ScaLapackApp
from repro.traffic.flows import TrafficGenerator
from repro.traffic.http import HttpTraffic

__all__ = ["Workload", "SyntheticTransfers", "DiurnalTransfers",
           "spread_endpoints", "build_workload", "INTENSITIES"]

# HTTP think-time means per intensity level (seconds).
INTENSITIES = {"light": 20.0, "moderate": 6.0, "heavy": 2.5}


@dataclass
class Workload:
    """One experiment's traffic: background generators + one application."""

    background: list[TrafficGenerator]
    app: ForegroundApp | None
    duration: float
    name: str = "workload"

    def prepare(self, net: Network, rng: np.random.Generator) -> None:
        """Fix population choices (before mapping or emulation)."""
        for gen in self.background:
            gen.prepare(net, rng)

    def install(self, kernel: EmulationKernel, rng: np.random.Generator) -> None:
        """Schedule everything on a kernel."""
        for gen in self.background:
            gen.install(kernel, rng)
        if self.app is not None:
            self.app.install(kernel, rng)

    def compute_profile(self) -> ComputeProfile:
        """The application's compute demand (background has none)."""
        if self.app is None:
            return ComputeProfile.zero(self.duration)
        return self.app.compute_profile()

    @property
    def apps(self) -> list[ForegroundApp]:
        return [self.app] if self.app is not None else []

    def describe(self) -> str:
        parts = [g.describe() for g in self.background]
        if self.app is not None:
            parts.append(self.app.name)
        return f"{self.name}: " + ", ".join(parts)


def _site_pools(
    net: Network, rng: np.random.Generator
) -> tuple[list[str], dict[str, list[int]]]:
    by_site: dict[str, list[int]] = {}
    for host in net.hosts():
        by_site.setdefault(host.site or "_", []).append(host.node_id)
    if not by_site:
        raise ValueError("network has no hosts")
    sites = sorted(by_site)
    pools = {s: [int(v) for v in rng.permutation(by_site[s])] for s in sites}
    return sites, pools


def spread_endpoints(
    net: Network, count: int, rng: np.random.Generator
) -> list[int]:
    """Pick ``count`` host endpoints spread across sites round-robin.

    Within each site the host is chosen at random; sites are cycled so a
    10-process app on a 5-site grid gets 2 processes per site.
    """
    sites, pools = _site_pools(net, rng)
    chosen: list[int] = []
    i = 0
    while len(chosen) < count:
        site = sites[i % len(sites)]
        pool = pools[site]
        if pool:
            chosen.append(pool.pop())
        i += 1
        if all(not p for p in pools.values()):
            raise ValueError(f"not enough hosts for {count} endpoints")
    return chosen


def packed_endpoints(
    net: Network, count: int, rng: np.random.Generator,
    max_sites: int = 2,
) -> list[int]:
    """Pick ``count`` endpoints concentrated on a few random sites.

    Grid jobs land where capacity is, not uniformly: a 10-process run
    typically occupies one or two clusters.  This concentration is what
    makes the application's *injection points* matter — approaches that know
    them (PLACE, PROFILE) can split the hot sites across engine nodes while
    topology-only mapping cannot.
    """
    sites, pools = _site_pools(net, rng)
    order = [sites[i] for i in rng.permutation(len(sites))]
    per_site = max(1, -(-count // max_sites))
    chosen: list[int] = []
    for site in order:
        pool = pools[site]
        take = min(per_site, len(pool), count - len(chosen))
        chosen.extend(pool[:take])
        if len(chosen) >= count:
            return chosen
    # Fewer / smaller sites than expected: top up from whatever remains.
    for site in order:
        pool = pools[site][per_site:]
        take = min(len(pool), count - len(chosen))
        chosen.extend(pool[:take])
        if len(chosen) >= count:
            return chosen
    raise ValueError(f"not enough hosts for {count} endpoints")


def build_workload(
    net: Network,
    app_name: str = "scalapack",
    intensity: str = "moderate",
    seed: int = 0,
    duration: float | None = None,
    http_servers: int | None = None,
    clients_per_server: int = 10,
    scalapack_procs: int = 10,
    gridnpb_procs: int = 9,
    placement: str = "packed",
) -> Workload:
    """Build the paper's workload for one topology.

    Parameters
    ----------
    app_name:
        ``"scalapack"``, ``"gridnpb"`` or ``"none"`` (background only).
    intensity:
        HTTP background level; keys of :data:`INTENSITIES`.
    http_servers:
        Override the server count (default: one per ~10 hosts, ≥ 2).
    placement:
        Foreground endpoint placement: ``"packed"`` (default — the app
        occupies one or two sites, like a real Grid job) or ``"spread"``
        (round-robin across sites).
    """
    if intensity not in INTENSITIES:
        raise ValueError(
            f"intensity must be one of {sorted(INTENSITIES)}, got {intensity!r}"
        )
    if placement == "packed":
        place = packed_endpoints
    elif placement == "spread":
        place = spread_endpoints
    else:
        raise ValueError(f"unknown placement {placement!r}")
    rng = np.random.default_rng(seed)
    hosts = net.hosts()
    n_hosts = len(hosts)

    def access_rate(endpoints: list[int]) -> float:
        """Slowest endpoint access-link rate, in bytes/s."""
        return min(net.node_total_bandwidth(e) for e in endpoints) / 8.0

    app: ForegroundApp | None
    if app_name == "scalapack":
        endpoints = place(net, min(scalapack_procs, n_hosts), rng)
        # Network-intensive sizing (the paper's apps saturate their NICs in
        # bursts): a panel occupies the access link for ~0.8 s, capped to
        # keep the packet budget sane on fast-NIC topologies.
        panel = float(np.clip(access_rate(endpoints) * 0.5, 0.7e6, 5e6))
        app = ScaLapackApp(endpoints=endpoints, panel_bytes=panel)
    elif app_name == "gridnpb":
        endpoints = place(net, min(gridnpb_procs, n_hosts), rng)
        volume = float(np.clip(access_rate(endpoints) * 8.0, 10e6, 64e6))
        app = GridNPBApp(endpoints=endpoints, volume=volume)
    elif app_name == "none":
        app = None
    else:
        raise ValueError(f"unknown app {app_name!r}")

    if duration is None:
        duration = app.duration * 1.05 if app is not None else 300.0

    n_servers = http_servers
    if n_servers is None:
        n_servers = max(2, n_hosts // 10)
    http = HttpTraffic(
        request_size=200e3,
        think_time=INTENSITIES[intensity],
        clients_per_server=clients_per_server,
        n_servers=n_servers,
        duration=duration,
        # Server farms concentrate on a few sites; this is what makes
        # bandwidth-only (TOP) weights a poor predictor of actual load.
        site_skew=1.5,
    )
    return Workload(
        background=[http], app=app, duration=float(duration),
        name=f"{net.name}/{app_name}/{intensity}",
    )


@dataclass
class SyntheticTransfers:
    """Open-loop transfer soup: ``n_flows`` random host-to-host transfers.

    Every transfer is known at install time (no control callbacks, no
    delivery hooks), which is the trace-replay shape the engine
    benchmarks measure: the kernel's whole run is pure train forwarding,
    so throughput numbers reflect the event hot path rather than python
    callback dispatch.  Endpoints, sizes and start times are fixed by
    :meth:`prepare` (or on first :meth:`install`) from the seed.

    Duck-types the :class:`Workload` surface the emulation entry points
    need (``prepare`` / ``install`` / ``duration``).
    """

    n_flows: int = 1000
    duration: float = 2.0
    min_bytes: int = 20_000
    max_bytes: int = 400_000
    name: str = "synthetic-transfers"
    _drawn: tuple | None = None

    def prepare(self, net: Network, rng: np.random.Generator) -> None:
        """Fix endpoint / size / start-time choices."""
        hosts = np.asarray([h.node_id for h in net.hosts()], dtype=np.int64)
        if len(hosts) < 2:
            raise ValueError("need at least two hosts for transfers")
        n = int(self.n_flows)
        src = rng.choice(hosts, size=n)
        dst = rng.choice(hosts, size=n)
        clash = src == dst
        while clash.any():
            dst[clash] = rng.choice(hosts, size=int(clash.sum()))
            clash = src == dst
        nbytes = rng.integers(self.min_bytes, self.max_bytes, size=n)
        # Injections spread over the first half so queues drain in-run.
        start = rng.uniform(0.0, self.duration / 2.0, size=n)
        self._drawn = (src, dst, nbytes, np.sort(start))

    def install(self, kernel: EmulationKernel, rng: np.random.Generator):
        from repro.engine.packet import Transfer

        if self._drawn is None:
            self.prepare(kernel.net, rng)
        src, dst, nbytes, start = self._drawn
        transfers = [
            Transfer(src=int(s), dst=int(d), nbytes=float(b), tag="soup")
            for s, d, b in zip(src, dst, nbytes)
        ]
        submit_bulk = getattr(kernel, "submit_transfers", None)
        if submit_bulk is not None:
            submit_bulk(transfers, start)
        else:  # reference kernel: one submission per transfer
            for tr, t in zip(transfers, start):
                kernel.submit_transfer(tr, float(t))


@dataclass
class DiurnalTransfers:
    """Transfer soup whose hot spot rotates between host regions.

    The run splits into ``n_phases`` equal virtual-time phases; in phase
    ``p`` a ``hot_frac`` share of the flows is drawn *within* region
    ``p % n_regions`` (both endpoints), the rest uniformly across all
    hosts — a compressed diurnal demand cycle.  A partition aligned with
    the regions is perfectly reasonable for phase 0 and badly skewed the
    moment the hot spot moves, which is exactly the scenario an online
    rebalancer exists for (and a pre-run PLACE mapping, seeing only the
    aggregate matrix, cannot fix).

    Regions default to site groups (sorted site name order).  Duck-types
    the :class:`Workload` surface (``prepare`` / ``install`` /
    ``duration``) like :class:`SyntheticTransfers`.
    """

    n_flows: int = 600
    duration: float = 6.0
    n_phases: int = 3
    hot_frac: float = 0.8
    min_bytes: int = 20_000
    max_bytes: int = 200_000
    name: str = "diurnal-transfers"
    _drawn: tuple | None = None

    @property
    def phase_s(self) -> float:
        return self.duration / self.n_phases

    def shift_times(self) -> list[float]:
        """Virtual times at which the hot region moves."""
        return [p * self.phase_s for p in range(1, self.n_phases)]

    def prepare(self, net: Network, rng: np.random.Generator) -> None:
        regions = self._regions(net)
        all_hosts = np.concatenate(regions)
        n = int(self.n_flows)
        start = np.sort(rng.uniform(0.0, self.duration, size=n))
        phase = np.minimum(
            (start / self.phase_s).astype(np.int64), self.n_phases - 1
        )
        hot = rng.random(n) < self.hot_frac
        src = np.empty(n, dtype=np.int64)
        dst = np.empty(n, dtype=np.int64)
        for i in range(n):
            pool = (
                regions[phase[i] % len(regions)] if hot[i] else all_hosts
            )
            s, d = rng.choice(pool, size=2, replace=False)
            src[i], dst[i] = s, d
        nbytes = rng.integers(self.min_bytes, self.max_bytes, size=n)
        self._drawn = (src, dst, nbytes, start)

    def _regions(self, net: Network) -> list[np.ndarray]:
        by_site: dict[str, list[int]] = {}
        for host in net.hosts():
            by_site.setdefault(host.site or "_", []).append(host.node_id)
        regions = [
            np.asarray(by_site[s], dtype=np.int64) for s in sorted(by_site)
        ]
        regions = [r for r in regions if len(r) >= 2]
        if not regions:
            raise ValueError(
                "diurnal transfers need at least one site with two hosts"
            )
        return regions

    def install(self, kernel: EmulationKernel, rng: np.random.Generator):
        from repro.engine.packet import Transfer

        if self._drawn is None:
            self.prepare(kernel.net, rng)
        src, dst, nbytes, start = self._drawn
        transfers = [
            Transfer(src=int(s), dst=int(d), nbytes=float(b), tag="diurnal")
            for s, d, b in zip(src, dst, nbytes)
        ]
        submit_bulk = getattr(kernel, "submit_transfers", None)
        if submit_bulk is not None:
            submit_bulk(transfers, start)
        else:
            for tr, t in zip(transfers, start):
                kernel.submit_transfer(tr, float(t))
