"""Experiment setups: Table 1 and the §4.2.3 scalability configuration.

=============  =======  =====  =====================
Topology       Routers  Hosts  Emulation engine nodes
=============  =======  =====  =====================
Campus         20       40     3
TeraGrid       27       150    5
Brite          160      132    8
Brite (large)  200      364    20
=============  =======  =====  =====================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable

import numpy as np

from repro.experiments.workloads import (
    DiurnalTransfers,
    Workload,
    build_workload,
)
from repro.topology.brite import brite_network
from repro.topology.campus import campus_network
from repro.topology.elements import Gbps, Mbps, ms
from repro.topology.network import Network
from repro.topology.teragrid import teragrid_network

__all__ = [
    "ExperimentSetup",
    "campus_setup",
    "teragrid_setup",
    "brite_setup",
    "large_brite_setup",
    "table1_setups",
    "DiurnalScenario",
    "diurnal_network",
    "diurnal_scenario",
]


@dataclass
class ExperimentSetup:
    """One (topology, engine-node count, workload) configuration.

    The network is built lazily and cached; workloads are rebuilt per seed
    so repeated runs with different seeds vary arrivals but keep structure.
    """

    name: str
    network_factory: Callable[[], Network]
    n_engine_nodes: int
    app_name: str = "scalapack"
    intensity: str = "moderate"
    workload_kwargs: dict = field(default_factory=dict)
    _network: Network | None = field(default=None, repr=False)

    @property
    def network(self) -> Network:
        if self._network is None:
            self._network = self.network_factory()
        return self._network

    def build_workload(self, seed: int = 0) -> Workload:
        return build_workload(
            self.network, app_name=self.app_name, intensity=self.intensity,
            seed=seed, **self.workload_kwargs,
        )

    def describe(self) -> str:
        net = self.network
        return (
            f"{self.name}: {len(net.routers())} routers / "
            f"{len(net.hosts())} hosts on {self.n_engine_nodes} engine "
            f"nodes, app={self.app_name}"
        )


def campus_setup(app: str = "scalapack", **kwargs) -> ExperimentSetup:
    """Campus: 20 routers / 40 hosts / 3 engine nodes.

    Defaults to heavy background: on a 10 Mbps-edge LAN the paper's
    "moderate" absolute rates already saturate.
    """
    kwargs.setdefault("intensity", "heavy")
    return ExperimentSetup(
        name="campus", network_factory=campus_network, n_engine_nodes=3,
        app_name=app, **kwargs,
    )


def teragrid_setup(app: str = "scalapack", **kwargs) -> ExperimentSetup:
    """TeraGrid: 27 routers / 150 hosts / 5 engine nodes."""
    return ExperimentSetup(
        name="teragrid", network_factory=teragrid_network, n_engine_nodes=5,
        app_name=app, **kwargs,
    )


def brite_setup(app: str = "scalapack", seed: int = 0, **kwargs) -> ExperimentSetup:
    """Brite: 160 routers / 132 hosts / 8 engine nodes."""
    # partial (not a lambda) keeps the setup picklable for the parallel
    # grid executor.
    return ExperimentSetup(
        name="brite",
        network_factory=partial(
            brite_network, n_routers=160, n_hosts=132, seed=seed
        ),
        n_engine_nodes=8, app_name=app, **kwargs,
    )


def large_brite_setup(app: str = "scalapack", seed: int = 0, **kwargs) -> ExperimentSetup:
    """§4.2.3 scalability: 200 routers / 364 hosts / 20 engine nodes,
    single AS, higher background intensity."""
    kwargs.setdefault("intensity", "heavy")
    return ExperimentSetup(
        name="brite-large",
        network_factory=partial(
            brite_network, n_routers=200, n_hosts=364, seed=seed
        ),
        n_engine_nodes=20, app_name=app, **kwargs,
    )


def table1_setups(app: str = "scalapack", **kwargs) -> list[ExperimentSetup]:
    """The three Table 1 rows for one application."""
    return [
        campus_setup(app, **kwargs),
        teragrid_setup(app, **kwargs),
        brite_setup(app, **kwargs),
    ]


# --------------------------------------------------------------------- #
# Diurnal-shift rebalancing scenario
# --------------------------------------------------------------------- #
def diurnal_network(
    n_regions: int = 3,
    edges_per_region: int = 3,
    hosts_per_edge: int = 3,
) -> Network:
    """Clustered network for the rebalancing demo: ``n_regions`` sites,
    each a core router with ``edges_per_region`` edge routers and their
    hosts, cores joined in a high-latency backbone ring.

    Intra-region links are fast and short (cheap to keep together);
    backbone links are long (cheap to cut) — so a region-per-LP partition
    is the natural static choice, which is precisely the mapping a
    rotating hot region defeats.
    """
    net = Network("diurnal")
    cores = []
    for r in range(n_regions):
        site = f"region{r}"
        core = net.add_router(f"core{r}", site=site)
        cores.append(core)
        for e in range(edges_per_region):
            edge = net.add_router(f"edge{r}-{e}", site=site)
            net.add_link(core, edge, Gbps(1), ms(5))
            for h in range(hosts_per_edge):
                host = net.add_host(f"host{r}-{e}-{h}", site=site)
                net.add_link(edge, host, Mbps(100), ms(2))
    for r in range(n_regions):
        net.add_link(cores[r], cores[(r + 1) % n_regions], Gbps(10), ms(20))
    return net


@dataclass
class DiurnalScenario:
    """The rebalancing study's fixture: network + region-aligned static
    partition + rotating-hot-spot workload.

    ``parts`` maps each region to its own LP — the partition every static
    approach would pick (minimal cut, balanced aggregate load) and the one
    the rotating demand defeats phase by phase.  ``shift_times`` are the
    instants the hot region moves (the ``time_to_rebalance`` anchors).
    """

    net: Network
    parts: np.ndarray
    workload: DiurnalTransfers
    k: int

    @property
    def shift_times(self) -> list[float]:
        return self.workload.shift_times()


def diurnal_scenario(
    n_regions: int = 3,
    n_flows: int = 600,
    duration: float = 6.0,
    hot_frac: float = 0.8,
    seed: int = 0,
) -> DiurnalScenario:
    """Build the diurnal-shift scenario (workload prepared, seeded)."""
    net = diurnal_network(n_regions=n_regions)
    sites = sorted({node.site for node in net.nodes})
    site_part = {s: i for i, s in enumerate(sites)}
    parts = np.asarray(
        [site_part[node.site] for node in net.nodes], dtype=np.int64
    )
    workload = DiurnalTransfers(
        n_flows=n_flows, duration=duration,
        n_phases=n_regions, hot_frac=hot_frac,
    )
    workload.prepare(net, np.random.default_rng(seed))
    return DiurnalScenario(
        net=net, parts=parts, workload=workload, k=n_regions
    )
