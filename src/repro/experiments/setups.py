"""Experiment setups: Table 1 and the §4.2.3 scalability configuration.

=============  =======  =====  =====================
Topology       Routers  Hosts  Emulation engine nodes
=============  =======  =====  =====================
Campus         20       40     3
TeraGrid       27       150    5
Brite          160      132    8
Brite (large)  200      364    20
=============  =======  =====  =====================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable

from repro.experiments.workloads import Workload, build_workload
from repro.topology.brite import brite_network
from repro.topology.campus import campus_network
from repro.topology.network import Network
from repro.topology.teragrid import teragrid_network

__all__ = [
    "ExperimentSetup",
    "campus_setup",
    "teragrid_setup",
    "brite_setup",
    "large_brite_setup",
    "table1_setups",
]


@dataclass
class ExperimentSetup:
    """One (topology, engine-node count, workload) configuration.

    The network is built lazily and cached; workloads are rebuilt per seed
    so repeated runs with different seeds vary arrivals but keep structure.
    """

    name: str
    network_factory: Callable[[], Network]
    n_engine_nodes: int
    app_name: str = "scalapack"
    intensity: str = "moderate"
    workload_kwargs: dict = field(default_factory=dict)
    _network: Network | None = field(default=None, repr=False)

    @property
    def network(self) -> Network:
        if self._network is None:
            self._network = self.network_factory()
        return self._network

    def build_workload(self, seed: int = 0) -> Workload:
        return build_workload(
            self.network, app_name=self.app_name, intensity=self.intensity,
            seed=seed, **self.workload_kwargs,
        )

    def describe(self) -> str:
        net = self.network
        return (
            f"{self.name}: {len(net.routers())} routers / "
            f"{len(net.hosts())} hosts on {self.n_engine_nodes} engine "
            f"nodes, app={self.app_name}"
        )


def campus_setup(app: str = "scalapack", **kwargs) -> ExperimentSetup:
    """Campus: 20 routers / 40 hosts / 3 engine nodes.

    Defaults to heavy background: on a 10 Mbps-edge LAN the paper's
    "moderate" absolute rates already saturate.
    """
    kwargs.setdefault("intensity", "heavy")
    return ExperimentSetup(
        name="campus", network_factory=campus_network, n_engine_nodes=3,
        app_name=app, **kwargs,
    )


def teragrid_setup(app: str = "scalapack", **kwargs) -> ExperimentSetup:
    """TeraGrid: 27 routers / 150 hosts / 5 engine nodes."""
    return ExperimentSetup(
        name="teragrid", network_factory=teragrid_network, n_engine_nodes=5,
        app_name=app, **kwargs,
    )


def brite_setup(app: str = "scalapack", seed: int = 0, **kwargs) -> ExperimentSetup:
    """Brite: 160 routers / 132 hosts / 8 engine nodes."""
    # partial (not a lambda) keeps the setup picklable for the parallel
    # grid executor.
    return ExperimentSetup(
        name="brite",
        network_factory=partial(
            brite_network, n_routers=160, n_hosts=132, seed=seed
        ),
        n_engine_nodes=8, app_name=app, **kwargs,
    )


def large_brite_setup(app: str = "scalapack", seed: int = 0, **kwargs) -> ExperimentSetup:
    """§4.2.3 scalability: 200 routers / 364 hosts / 20 engine nodes,
    single AS, higher background intensity."""
    kwargs.setdefault("intensity", "heavy")
    return ExperimentSetup(
        name="brite-large",
        network_factory=partial(
            brite_network, n_routers=200, n_hosts=364, seed=seed
        ),
        n_engine_nodes=20, app_name=app, **kwargs,
    )


def table1_setups(app: str = "scalapack", **kwargs) -> list[ExperimentSetup]:
    """The three Table 1 rows for one application."""
    return [
        campus_setup(app, **kwargs),
        teragrid_setup(app, **kwargs),
        brite_setup(app, **kwargs),
    ]
