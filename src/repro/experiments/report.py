"""Per-figure/table report generation.

Each ``figN_*`` / ``tableN_*`` function regenerates the corresponding
artifact of the paper's evaluation section as text tables / series (see the
per-experiment index in DESIGN.md).  A :class:`Campaign` caches the
expensive ``evaluate_setup`` calls so figures sharing runs (e.g. Figures 4,
6 and 9 all come from the ScaLapack matrix) do not recompute them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.runner import (
    ApproachEvaluation,
    RunnerConfig,
    evaluate_setup,
    run_emulation,
)
from repro.experiments.setups import (
    ExperimentSetup,
    brite_setup,
    campus_setup,
    large_brite_setup,
    table1_setups,
)
from repro.metrics.imbalance import fine_grained_imbalance, lp_interval_loads
from repro.metrics.summary import ExperimentTable, format_series
from repro.routing.spf import build_routing

__all__ = ["Campaign", "table1", "APPROACHES"]

APPROACHES = ("top", "place", "profile")


def table1(setups: list[ExperimentSetup] | None = None) -> ExperimentTable:
    """Table 1: topology setup (routers / hosts / engine nodes)."""
    setups = setups or table1_setups()
    values = np.array(
        [
            [len(s.network.routers()), len(s.network.hosts()), s.n_engine_nodes]
            for s in setups
        ],
        dtype=np.float64,
    )
    return ExperimentTable(
        title="Table 1. Network Topology Setup",
        row_names=[s.name for s in setups],
        col_names=["routers", "hosts", "engine nodes"],
        values=values,
    )


@dataclass
class Campaign:
    """Caches evaluate_setup() results across figures.

    One campaign = one (seed, runner-config) choice; results are keyed by
    (setup name, app name).  ``artifact_cache`` additionally shares the
    underlying routing tables and emulation runs (content-addressed, see
    :mod:`repro.runtime.cache`) — across figures *and* across campaign
    re-runs when the cache is on disk.
    """

    seed: int = 1
    intensity: str | None = None  # None = each setup's own default
    config: RunnerConfig = field(default_factory=RunnerConfig)
    workload_kwargs: dict = field(default_factory=dict)
    artifact_cache: object | None = None
    _cache: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    def results_for(
        self, setup: ExperimentSetup
    ) -> dict[str, ApproachEvaluation]:
        key = (setup.name, setup.app_name, setup.intensity)
        if key not in self._cache:
            self._cache[key] = evaluate_setup(
                setup, approaches=APPROACHES, seed=self.seed,
                config=self.config, cache=self.artifact_cache,
            )
        return self._cache[key]

    def prefetch(self, apps=("scalapack", "gridnpb"), runtime=None) -> None:
        """Warm the artifact cache for the standard figure matrix in
        parallel.

        Runs the (setup × app) grid through the parallel runtime so the
        expensive emulations land in ``artifact_cache`` (which must be a
        disk cache for worker processes to share it); subsequent
        ``results_for`` calls then hit the cache.  Without an artifact
        cache this is a no-op.
        """
        if self.artifact_cache is None or getattr(
            self.artifact_cache, "root", None
        ) is None:
            return
        from repro.runtime.executor import RuntimeConfig, run_grid

        setups = [s for app in apps for s in self._setups(app)]
        run_grid(
            setups, (self.seed,), APPROACHES, config=self.config,
            runtime=runtime or RuntimeConfig(),
            cache=self.artifact_cache,
        )

    def _setup_kwargs(self) -> dict:
        kwargs: dict = {"workload_kwargs": dict(self.workload_kwargs)}
        if self.intensity is not None:
            kwargs["intensity"] = self.intensity
        return kwargs

    def _setups(self, app: str) -> list[ExperimentSetup]:
        return table1_setups(app, **self._setup_kwargs())

    def _matrix(self, app: str, attribute: str) -> ExperimentTable:
        setups = self._setups(app)
        values = np.zeros((len(setups), len(APPROACHES)))
        for i, setup in enumerate(setups):
            results = self.results_for(setup)
            for j, name in enumerate(APPROACHES):
                values[i, j] = getattr(results[name].outcome, attribute)
        return ExperimentTable(
            title="", row_names=[s.name for s in setups],
            col_names=[a.upper() for a in APPROACHES], values=values,
        )

    # ---------------------------- figures ------------------------------ #
    def fig4_imbalance_scalapack(self) -> ExperimentTable:
        """Figure 4: load imbalance for ScaLapack."""
        t = self._matrix("scalapack", "load_imbalance")
        t.title = "Figure 4. Load Imbalance for ScaLapack"
        return t

    def fig5_imbalance_gridnpb(self) -> ExperimentTable:
        """Figure 5: load imbalance for GridNPB."""
        t = self._matrix("gridnpb", "load_imbalance")
        t.title = "Figure 5. Load Imbalance for GridNPB"
        return t

    def fig6_emutime_scalapack(self) -> ExperimentTable:
        """Figure 6: application emulation time for ScaLapack (seconds)."""
        t = self._matrix("scalapack", "app_emulation_time")
        t.title = "Figure 6. Emulation Time for ScaLapack"
        t.unit = "s"
        return t

    def fig7_emutime_gridnpb(self) -> ExperimentTable:
        """Figure 7: application emulation time for GridNPB (seconds)."""
        t = self._matrix("gridnpb", "app_emulation_time")
        t.title = "Figure 7. Emulation Time for GridNPB"
        t.unit = "s"
        return t

    def fig9_replay_scalapack(self) -> ExperimentTable:
        """Figure 9: isolated network emulation time, ScaLapack replays."""
        t = self._matrix("scalapack", "network_emulation_time")
        t.title = "Figure 9. ScaLapack Isolated Network Emulation"
        t.unit = "s"
        return t

    def fig10_replay_gridnpb(self) -> ExperimentTable:
        """Figure 10: isolated network emulation time, GridNPB replays."""
        t = self._matrix("gridnpb", "network_emulation_time")
        t.title = "Figure 10. GridNPB Isolated Network Emulation"
        t.unit = "s"
        return t

    # ------------------------------------------------------------------ #
    def fig2_load_variation(self, interval: float = 10.0) -> str:
        """Figure 2: per-engine-node load over the emulation lifetime.

        The paper's figure illustrates dominating-node changes across
        emulation stages; the GridNPB-on-BRITE cell shows them most clearly
        (on the 3-engine Campus a single engine node dominates throughout),
        so the series is generated there, under the TOP mapping.
        """
        setup = brite_setup("gridnpb", **self._setup_kwargs())
        results = self.results_for(setup)
        run = run_emulation(
            setup.network,
            build_routing(setup.network, cache=self.artifact_cache),
            self._prepared_workload(setup), self.seed, config=self.config,
            cache=self.artifact_cache,
        )
        series = lp_interval_loads(
            run.trace, results["top"].mapping.parts, interval
        )
        xs = np.arange(series.shape[1]) * interval
        named = {f"engine{i}": series[i] for i in range(series.shape[0])}
        return format_series(
            "Figure 2. Load Variation Over the Lifetime of an Emulation",
            xs, named, x_label="t[s]",
        )

    def fig8_fine_grained(self, interval: float = 2.0) -> str:
        """Figure 8: fine-grained (2 s) load imbalance of GridNPB on Campus,
        TOP vs PROFILE."""
        setup = campus_setup("gridnpb", **self._setup_kwargs())
        results = self.results_for(setup)
        run = run_emulation(
            setup.network,
            build_routing(setup.network, cache=self.artifact_cache),
            self._prepared_workload(setup), self.seed, config=self.config,
            cache=self.artifact_cache,
        )
        series = {}
        for name in ("top", "profile"):
            series[name.upper()] = fine_grained_imbalance(
                run.trace, results[name].mapping.parts, interval=interval
            )
        n_bins = len(next(iter(series.values())))
        xs = np.arange(n_bins) * interval
        return format_series(
            "Figure 8. Fine-Grained Load Imbalance of GridNPB",
            xs, series, x_label="t[s]",
        )

    def _prepared_workload(self, setup: ExperimentSetup):
        workload = setup.build_workload(self.seed)
        workload.prepare(setup.network, np.random.default_rng(self.seed))
        return workload

    # ------------------------------------------------------------------ #
    def table2_scalability(self) -> ExperimentTable:
        """Table 2: ScaLapack on the large (200 router / 364 host) network,
        20 engine nodes — load imbalance and execution time."""
        setup = large_brite_setup(
            "scalapack", workload_kwargs=dict(self.workload_kwargs)
        )
        results = self.results_for(setup)
        values = np.zeros((2, len(APPROACHES)))
        for j, name in enumerate(APPROACHES):
            values[0, j] = results[name].outcome.load_imbalance
            values[1, j] = results[name].outcome.app_emulation_time
        return ExperimentTable(
            title="Table 2. Results of ScaLapack on Larger Network",
            row_names=["Load Imbalance (Std. Deviation)",
                       "Execution Time (second)"],
            col_names=[a.upper() for a in APPROACHES],
            values=values,
        )
