"""End-to-end experiment runner.

The full pipeline for one setup (mirroring the paper's methodology):

1. Build the network and routing; prepare the workload (fix populations).
2. **Profiling run** — emulate once under the TOP partition with NetFlow
   collection enabled, using different arrival randomness than the
   evaluation run (the paper profiles an *initial* experiment, then runs
   the real one; traffic structure repeats, exact arrivals do not).
3. Build the TOP / PLACE / PROFILE mappings.
4. **Evaluation run** — emulate once (the virtual traffic is mapping
   independent) and score every mapping against its trace: load imbalance,
   application emulation time, isolated network emulation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.mapper import Mapper, MapperConfig, MappingResult
from repro.engine.costmodel import CostModel
from repro.engine.kernel import EmulationKernel
from repro.engine.parallel import EmulationMetrics, evaluate_mapping
from repro.engine.trace import EventTrace
from repro.experiments.setups import ExperimentSetup
from repro.experiments.workloads import Workload
from repro.metrics.summary import ApproachOutcome
from repro.profiling.aggregate import ProfileData
from repro.profiling.netflow import NetFlowCollector
from repro.replay.trace import TransferTrace
from repro.routing.spf import build_routing
from repro.routing.tables import RoutingTables

__all__ = [
    "RunnerConfig",
    "EmulationRun",
    "ApproachEvaluation",
    "run_emulation",
    "evaluate_setup",
    "evaluate_workload",
]

#: Seed offset separating the profiling run's arrivals from the evaluation
#: run's (same workload structure, different randomness).
PROFILE_SEED_OFFSET = 10_000


@dataclass(frozen=True)
class RunnerConfig:
    """Harness-wide knobs.

    ``engine`` selects the execution engine for *evaluation* emulations:
    ``"sequential"`` (the batched single-process kernel) or ``"parallel"``
    (one logical process per partition, see
    :class:`repro.engine.lp.ParallelEmulationKernel`).  Profiling runs
    always stay sequential — NetFlow collection is coupled to global
    arrival order.  Both engines produce bit-identical traces, so the
    choice affects wall time only; it still participates in cache keys
    (the config is part of every run's key).

    ``profile_workers`` fans the NetFlow aggregation of the profiling run
    across a :func:`repro.runtime.pmap.parallel_map` pool (``>= 2``;
    ``0`` stays sequential).  The parallel fold is bit-identical to the
    sequential loop (see :mod:`repro.profiling.aggregate`), so — like
    ``parts`` — it is deliberately *excluded* from cache keys via
    :meth:`cache_token`.
    """

    train_packets: int = 16
    profile_interval: float = 5.0
    cost: CostModel = field(default_factory=CostModel)
    mapper: MapperConfig = field(default_factory=MapperConfig)
    netflow_granularity: str = "flow"
    engine: str = "sequential"
    profile_workers: int = 0

    def __post_init__(self) -> None:
        if self.engine not in ("sequential", "parallel"):
            raise ValueError(
                f"unknown engine {self.engine!r}; choose 'sequential' or "
                "'parallel'"
            )

    def cache_token(self) -> tuple:
        """Content key contribution: everything that can change results.

        ``profile_workers`` only changes *how* the profile is folded
        (bit-identically), so two configs differing only there share
        cache entries.
        """
        return (
            "RunnerConfig",
            self.train_packets,
            self.profile_interval,
            self.cost,
            self.mapper,
            self.netflow_granularity,
            self.engine,
        )


@dataclass
class EmulationRun:
    """One kernel execution's artifacts."""

    trace: EventTrace
    transfers: TransferTrace
    profile: ProfileData | None


def run_emulation(
    net,
    tables: RoutingTables,
    workload: Workload,
    seed: int,
    config: RunnerConfig | None = None,
    collect_netflow: bool = False,
    cache=None,
    telemetry=None,
    parts=None,
) -> EmulationRun:
    """Execute one emulation of ``workload`` (prepared already).

    With a ``cache`` (:class:`repro.runtime.cache.ArtifactCache`), the run
    is content-addressed by (network, routing metric, prepared workload,
    seed, config, netflow flag): a repeated identical call returns the
    stored artifacts instead of re-simulating, bit-for-bit.  ``telemetry``
    records an ``emulate/{profile-run,eval-run}`` span around the actual
    simulation (cache hits record nothing) plus the kernel's counters.

    ``parts`` shards the run across logical processes when
    ``config.engine == "parallel"`` (profiling runs ignore it — NetFlow
    collection forces the sequential engine).  Both engines produce
    bit-identical traces, so ``parts`` is deliberately *not* part of the
    cache key.
    """
    from repro.obs.telemetry import ensure_telemetry

    config = config or RunnerConfig()
    if cache is not None:
        kind = "profile-run" if collect_netflow else "eval-run"
        key_parts = (
            net.fingerprint(), tables.metric, workload, int(seed), config,
            bool(collect_netflow),
        )
        return cache.get_or_compute(
            kind,
            key_parts,
            lambda: run_emulation(
                net, tables, workload, seed, config=config,
                collect_netflow=collect_netflow, telemetry=telemetry,
                parts=parts,
            ),
        )
    tel = ensure_telemetry(telemetry)
    with tel.span(
        "emulate/profile-run" if collect_netflow else "emulate/eval-run"
    ):
        collector = (
            NetFlowCollector(config.netflow_granularity)
            if collect_netflow else None
        )
        if config.engine == "parallel" and not collect_netflow:
            from repro.engine.lp import ParallelEmulationKernel

            if parts is None:
                raise ValueError(
                    "engine='parallel' needs a parts array (one partition "
                    "id per node); pass parts=mapping.parts, or use "
                    "repro.api.emulate(engine='parallel', k=...) which "
                    "derives one"
                )
            kernel = ParallelEmulationKernel(
                net, tables, parts=parts,
                train_packets=config.train_packets, telemetry=tel,
            )
        else:
            kernel = EmulationKernel(
                net, tables, train_packets=config.train_packets,
                collector=collector, telemetry=tel,
            )
        try:
            rng = np.random.default_rng(seed)
            workload.install(kernel, rng)
            trace = kernel.run(until=workload.duration)
            profile = None
            if collector is not None:
                profile = ProfileData.from_run(
                    collector, trace, net, interval=config.profile_interval,
                    workers=config.profile_workers, telemetry=tel,
                )
            return EmulationRun(
                trace=trace,
                transfers=TransferTrace.from_kernel(
                    kernel, workload.duration
                ),
                profile=profile,
            )
        finally:
            close = getattr(kernel, "close", None)
            if close is not None:
                close()


@dataclass
class ApproachEvaluation:
    """Everything measured for one approach in one setup."""

    mapping: MappingResult
    metrics: EmulationMetrics
    replay_metrics: EmulationMetrics
    outcome: ApproachOutcome


def evaluate_setup(
    setup: ExperimentSetup,
    approaches: tuple[str, ...] = ("top", "place", "profile"),
    seed: int = 0,
    config: RunnerConfig | None = None,
    cache=None,
    telemetry=None,
) -> dict[str, ApproachEvaluation]:
    """Run the full pipeline for one setup; returns approach → evaluation."""
    workload = setup.build_workload(seed)
    return evaluate_workload(
        setup.network, workload, setup.n_engine_nodes,
        approaches=approaches, seed=seed, config=config, cache=cache,
        telemetry=telemetry, setup_name=setup.name,
    )


def evaluate_workload(
    net,
    workload: Workload,
    k: int,
    *,
    approaches: tuple[str, ...] = ("top", "place", "profile"),
    seed: int = 0,
    config: RunnerConfig | None = None,
    tables: RoutingTables | None = None,
    cache=None,
    telemetry=None,
    setup_name: str | None = None,
) -> dict[str, ApproachEvaluation]:
    """Run the profiling → mapping → evaluation pipeline for any network +
    workload pair (the spec-file / CLI entry point).

    All arguments after the leading ``(net, workload, k)`` are
    keyword-only.  ``cache`` shares routing tables and profiling /
    evaluation emulations across calls (see :mod:`repro.runtime.cache`).
    ``telemetry`` records the full phase breakdown (routing, mapping per
    approach, profiling/evaluation emulations, scoring) plus per-approach
    load timelines; ``setup_name`` labels those timelines.
    """
    from repro.obs.telemetry import ensure_telemetry

    tel = ensure_telemetry(telemetry)
    label_base = {"setup": setup_name or getattr(net, "name", "?"),
                  "seed": int(seed)}
    config = config or RunnerConfig()
    if tables is None:
        tables = build_routing(net, cache=cache, telemetry=tel)

    with tel.span("workload/prepare"):
        workload.prepare(net, np.random.default_rng(seed))

    mapper = Mapper(net, n_parts=k, tables=tables, config=config.mapper,
                    telemetry=tel)
    mappings: dict[str, MappingResult] = {}
    compute = workload.compute_profile()

    top_mapping = mapper.map_top()
    if "top" in approaches:
        mappings["top"] = top_mapping
    if "place" in approaches:
        mappings["place"] = mapper.map_place(workload.background, workload.apps)
    if "profile" in approaches:
        profile_run = run_emulation(
            net, tables, workload, seed + PROFILE_SEED_OFFSET,
            config=config, collect_netflow=True, cache=cache, telemetry=tel,
        )
        assert profile_run.profile is not None
        # Model selection on the profiling data: §3.3's segment clustering
        # helps when the run has genuine stages, and amplifies noise when
        # it does not.  Both candidate mappings are scored against the
        # profiling run's own trace (the only data PROFILE may look at)
        # and the better one ships.
        candidates: list[tuple[float, MappingResult]] = []
        for use_segments in (config.mapper.use_segments, False):
            cand_mapper = Mapper(
                net, n_parts=k, tables=tables,
                config=replace(config.mapper, use_segments=use_segments),
                telemetry=tel,
            )
            cand = cand_mapper.map_profile(
                profile_run.profile, initial_parts=top_mapping.parts
            )
            score = evaluate_mapping(
                profile_run.trace, net, cand.parts, cost=config.cost,
                compute=compute,
            ).wall_app
            cand.diagnostics["profiling_run_score"] = score
            candidates.append((score, cand))
            if not config.mapper.use_segments:
                break  # segments disabled: one candidate only
        candidates.sort(key=lambda item: item[0])
        mappings["profile"] = candidates[0][1]

    eval_run = run_emulation(
        net, tables, workload, seed, config=config, cache=cache,
        telemetry=tel,
        parts=(
            top_mapping.parts if config.engine == "parallel" else None
        ),
    )

    results: dict[str, ApproachEvaluation] = {}
    for name in approaches:
        mapping = mappings[name]
        with tel.span(f"score/{name}"):
            metrics = evaluate_mapping(
                eval_run.trace, net, mapping.parts, cost=config.cost,
                compute=compute, telemetry=tel,
                timeline_label={**label_base, "approach": name},
            )
            replay_metrics = evaluate_mapping(
                eval_run.trace, net, mapping.parts, cost=config.cost,
                compute=None,
            )
        results[name] = ApproachEvaluation(
            mapping=mapping,
            metrics=metrics,
            replay_metrics=replay_metrics,
            outcome=ApproachOutcome(
                approach=name,
                load_imbalance=metrics.load_imbalance,
                app_emulation_time=metrics.wall_app,
                network_emulation_time=replay_metrics.wall_network,
                edge_cut=mapping.partition.weighted_cut,
                remote_packets=metrics.remote_packets,
                lookahead=metrics.lookahead,
                diagnostics=dict(mapping.diagnostics),
            ),
        )
    return results
