"""Routing substrate: shortest-path tables, memory model, ICMP/traceroute.

- :func:`repro.routing.spf.build_routing` — all-pairs next-hop computation
  (Dijkstra via :mod:`scipy.sparse.csgraph`).
- :class:`repro.routing.tables.RoutingTables` — path queries + the paper's
  per-router routing-table memory model (``10 + x²`` for AS size ``x``).
- :func:`repro.routing.icmp.traceroute` — hop-by-hop TTL walk, the mechanism
  PLACE uses to discover routes between traffic endpoints.
"""

from repro.routing.icmp import discover_routes, traceroute
from repro.routing.spf import build_routing
from repro.routing.tables import RoutingTables, memory_weights

__all__ = [
    "build_routing",
    "RoutingTables",
    "memory_weights",
    "traceroute",
    "discover_routes",
]
