"""Routing substrate: shortest-path tables, memory model, ICMP/traceroute.

- :func:`repro.routing.spf.build_routing` — all-pairs next-hop computation
  (Dijkstra via :mod:`scipy.sparse.csgraph`, vectorized next-hop fill,
  optional per-source blocking for 10k-node networks).
- :class:`repro.routing.tables.RoutingTables` — path queries + the paper's
  per-router routing-table memory model (``10 + x²`` for AS size ``x``).
- :func:`repro.routing.icmp.traceroute` — hop-by-hop TTL walk, the mechanism
  PLACE uses to discover routes between traffic endpoints
  (:func:`repro.routing.icmp.batched_walks` steps many pairs at once).
- :class:`repro.routing.perf.RoutingStats` — operation counters backing the
  perf-guard tests; :mod:`repro.routing._reference` keeps the original
  scalar kernels as differential-parity oracles.
"""

from repro.routing.icmp import batched_walks, discover_routes, traceroute
from repro.routing.perf import RoutingStats
from repro.routing.spf import ROUTING_TABLE_VERSION, build_routing
from repro.routing.tables import (
    METRICS,
    RoutingTables,
    link_cost,
    link_cost_array,
    memory_weights,
)

__all__ = [
    "build_routing",
    "ROUTING_TABLE_VERSION",
    "RoutingTables",
    "RoutingStats",
    "memory_weights",
    "traceroute",
    "discover_routes",
    "batched_walks",
    "METRICS",
    "link_cost",
    "link_cost_array",
]
