"""ICMP and traceroute over the emulated network.

§3.2: "To get the routing information, we implement the ICMP protocol inside
the MaSSF, and use the real Linux traceroute tool to discover the routing
paths between each source-destination pair.  To reduce the number of
traceroute executions required, we could use one representative endpoint for
each sub-network and only discover the route paths between those sub-network
representatives."

:func:`traceroute` performs the same hop-by-hop TTL walk the real tool does:
probes with increasing TTL, and each router that decrements TTL to zero
answers with a TIME_EXCEEDED carrying its id.  :func:`discover_routes` adds
the representative-endpoint optimization keyed on the nodes' ``site`` label.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.tables import RoutingTables

__all__ = ["IcmpReply", "probe", "traceroute", "discover_routes"]


@dataclass(frozen=True)
class IcmpReply:
    """Reply to a TTL-limited probe."""

    kind: str  # "time-exceeded" | "echo-reply" | "unreachable"
    responder: int
    rtt_s: float


def probe(tables: RoutingTables, src: int, dst: int, ttl: int) -> IcmpReply:
    """Send one TTL-limited probe from ``src`` toward ``dst``.

    Walks the forwarding path decrementing TTL per hop, exactly as the
    emulated routers would.  RTT is twice the accumulated one-way latency to
    the responding node.
    """
    if ttl < 1:
        raise ValueError("ttl must be >= 1")
    cur = src
    lat = 0.0
    for _ in range(ttl):
        nxt = tables.hop(cur, dst)
        if nxt < 0:
            return IcmpReply("unreachable", cur, 2.0 * lat)
        lat += tables.link_between(cur, nxt).latency_s
        cur = nxt
        if cur == dst:
            return IcmpReply("echo-reply", cur, 2.0 * lat)
    return IcmpReply("time-exceeded", cur, 2.0 * lat)


def traceroute(
    tables: RoutingTables, src: int, dst: int, max_ttl: int = 64
) -> list[int]:
    """Hop list from ``src`` to ``dst`` inclusive, discovered by TTL walk."""
    hops = [src]
    for ttl in range(1, max_ttl + 1):
        reply = probe(tables, src, dst, ttl)
        if reply.kind == "unreachable":
            raise ValueError(f"no route {src} -> {dst}")
        hops.append(reply.responder)
        if reply.kind == "echo-reply":
            return hops
    raise RuntimeError(f"traceroute {src} -> {dst} exceeded {max_ttl} hops")


def discover_routes(
    tables: RoutingTables,
    pairs: list[tuple[int, int]],
    use_representatives: bool = False,
) -> tuple[dict[tuple[int, int], list[int]], int]:
    """Traceroute a set of endpoint pairs.

    With ``use_representatives`` the walk runs once per (site(src),
    site(dst)) pair — the paper's optimization — and the router-level core
    of that representative path is reused for every endpoint pair attached
    to the same access routers.  Pairs whose access routers differ from the
    representatives' (and pairs sharing a site) fall back to a direct walk,
    so the returned routes are always valid forwarding paths.

    Returns ``(routes, n_traceroutes)`` — the second element is the number
    of actual traceroute executions, the cost the optimization reduces.
    """
    routes: dict[tuple[int, int], list[int]] = {}
    n_walks = 0
    if not use_representatives:
        for src, dst in pairs:
            routes[(src, dst)] = traceroute(tables, src, dst)
            n_walks += 1
        return routes, n_walks

    site_of = {
        n.node_id: (n.site or f"node{n.node_id}") for n in tables.net.nodes
    }
    rep_paths: dict[tuple[str, str], list[int]] = {}
    for src, dst in pairs:
        s_site, d_site = site_of[src], site_of[dst]
        key = (s_site, d_site)
        if s_site != d_site and key not in rep_paths:
            rep_paths[key] = traceroute(tables, src, dst)
            n_walks += 1
            routes[(src, dst)] = rep_paths[key]
            continue
        if s_site == d_site:
            routes[(src, dst)] = traceroute(tables, src, dst)
            n_walks += 1
            continue
        rep = rep_paths[key]
        # Reuse the representative's path when this pair enters and leaves
        # the core at the same points (same access hops).
        src_hop = tables.hop(src, dst)
        if (
            len(rep) >= 3
            and src_hop == rep[1]
            and tables.hop(rep[-2], dst) == dst
        ):
            routes[(src, dst)] = [src] + rep[1:-1] + [dst]
        else:
            routes[(src, dst)] = traceroute(tables, src, dst)
            n_walks += 1
    return routes, n_walks
