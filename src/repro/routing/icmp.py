"""ICMP and traceroute over the emulated network.

§3.2: "To get the routing information, we implement the ICMP protocol inside
the MaSSF, and use the real Linux traceroute tool to discover the routing
paths between each source-destination pair.  To reduce the number of
traceroute executions required, we could use one representative endpoint for
each sub-network and only discover the route paths between those sub-network
representatives."

:func:`traceroute` performs the same hop-by-hop TTL walk the real tool does:
probes with increasing TTL, and each router that decrements TTL to zero
answers with a TIME_EXCEEDED carrying its id.  :func:`discover_routes` adds
the representative-endpoint optimization keyed on the nodes' ``site`` label.

Route discovery is *batched*: all requested pairs step through the next-hop
matrix simultaneously (one fancy-indexed gather per hop round, bounded by
the longest route) instead of one Python walk per pair.  Routes are
bit-identical to the preserved per-pair reference
(:func:`repro.routing._reference.discover_routes_reference`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.routing.tables import RoutingTables

__all__ = [
    "IcmpReply",
    "probe",
    "traceroute",
    "discover_routes",
    "batched_walks",
    "plan_routes",
    "RoutePlan",
]


@dataclass(frozen=True)
class IcmpReply:
    """Reply to a TTL-limited probe."""

    kind: str  # "time-exceeded" | "echo-reply" | "unreachable"
    responder: int
    rtt_s: float


def probe(tables: RoutingTables, src: int, dst: int, ttl: int) -> IcmpReply:
    """Send one TTL-limited probe from ``src`` toward ``dst``.

    Walks the forwarding path decrementing TTL per hop, exactly as the
    emulated routers would.  RTT is twice the accumulated one-way latency to
    the responding node.
    """
    if ttl < 1:
        raise ValueError("ttl must be >= 1")
    cur = src
    lat = 0.0
    for _ in range(ttl):
        nxt = tables.hop(cur, dst)
        if nxt < 0:
            return IcmpReply("unreachable", cur, 2.0 * lat)
        lat += tables.link_between(cur, nxt).latency_s
        cur = nxt
        if cur == dst:
            return IcmpReply("echo-reply", cur, 2.0 * lat)
    return IcmpReply("time-exceeded", cur, 2.0 * lat)


def traceroute(
    tables: RoutingTables, src: int, dst: int, max_ttl: int = 64
) -> list[int]:
    """Hop list from ``src`` to ``dst`` inclusive, discovered by TTL walk."""
    hops = [src]
    for ttl in range(1, max_ttl + 1):
        reply = probe(tables, src, dst, ttl)
        if reply.kind == "unreachable":
            raise ValueError(f"no route {src} -> {dst}")
        hops.append(reply.responder)
        if reply.kind == "echo-reply":
            return hops
    raise RuntimeError(f"traceroute {src} -> {dst} exceeded {max_ttl} hops")


def batched_walks(
    tables: RoutingTables,
    pairs: list[tuple[int, int]],
    max_ttl: int = 64,
    stats=None,
) -> list[list[int]]:
    """Traceroute many pairs at once by stepping them together.

    Every pair advances one hop per round through a single fancy-indexed
    ``next_hop`` gather, so the Python-level work is one round per hop of
    the *longest* route instead of one loop iteration per hop per pair.
    Paths (and the error behaviour of dead ends / hop-count overruns) match
    :func:`traceroute` exactly.
    """
    n_pairs = len(pairs)
    if n_pairs == 0:
        return []
    nh = tables.next_hop
    src = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=n_pairs)
    dst = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=n_pairs)
    paths = [[int(s)] for s in src.tolist()]
    cur = src.copy()
    alive = np.arange(n_pairs)
    if stats is not None:
        stats.walks += n_pairs
    for _ in range(max_ttl):
        if alive.size == 0:
            return paths
        nxt = nh[cur[alive], dst[alive]]
        dead = nxt < 0
        if dead.any():
            i = int(alive[int(np.argmax(dead))])
            raise ValueError(f"no route {pairs[i][0]} -> {pairs[i][1]}")
        cur[alive] = nxt
        for i, v in zip(alive.tolist(), nxt.tolist()):
            paths[i].append(v)
        alive = alive[nxt != dst[alive]]
        if stats is not None:
            stats.walk_rounds += 1
    if alive.size:
        i = int(alive[0])
        raise RuntimeError(
            f"traceroute {pairs[i][0]} -> {pairs[i][1]} exceeded "
            f"{max_ttl} hops"
        )
    return paths


@dataclass
class RoutePlan:
    """Resolution plan for a batch of endpoint pairs.

    ``known`` maps pair indices to routes already resolved during planning
    (representative walks and spliced representative paths); ``walk_idx``
    lists the pair indices that still need a traceroute.  ``n_walks`` is
    the full traceroute budget of the plan: walks performed while planning
    plus ``len(walk_idx)``.
    """

    pairs: list[tuple[int, int]]
    walk_idx: list[int] = field(default_factory=list)
    known: dict[int, list[int]] = field(default_factory=dict)
    n_walks: int = 0


def plan_routes(
    tables: RoutingTables,
    pairs: list[tuple[int, int]],
    use_representatives: bool = False,
    stats=None,
) -> RoutePlan:
    """Classify pairs into walks vs. representative-path reuse.

    With ``use_representatives`` the first cross-site pair of each
    (site(src), site(dst)) key is walked immediately (it anchors the
    splice checks); every later pair of that key reuses the
    representative's router-level core when it enters and leaves the core
    at the same points.  Pairs sharing a site, or whose access hops differ
    from the representative's, are scheduled for a direct walk, so the
    resolved routes are always valid forwarding paths.
    """
    pairs = [(int(s), int(d)) for s, d in pairs]
    plan = RoutePlan(pairs=pairs)
    if not use_representatives:
        plan.walk_idx = list(range(len(pairs)))
        plan.n_walks = len(pairs)
        return plan

    site_of = {
        n.node_id: (n.site or f"node{n.node_id}") for n in tables.net.nodes
    }
    rep_of: dict[tuple[str, str], int] = {}
    candidates: list[int] = []
    cand_key: list[tuple[str, str]] = []
    for i, (src, dst) in enumerate(pairs):
        key = (site_of[src], site_of[dst])
        if key[0] == key[1]:
            plan.walk_idx.append(i)
        elif key not in rep_of:
            rep_of[key] = i
        else:
            candidates.append(i)
            cand_key.append(key)

    # Walk the representatives now — their paths anchor the splice checks.
    rep_idx = list(rep_of.values())
    rep_walked = batched_walks(
        tables, [pairs[i] for i in rep_idx], stats=stats
    )
    plan.known.update(zip(rep_idx, rep_walked))
    plan.n_walks = len(rep_idx)

    if candidates:
        nh = tables.next_hop
        srcs = np.array([pairs[i][0] for i in candidates], dtype=np.int64)
        dsts = np.array([pairs[i][1] for i in candidates], dtype=np.int64)
        reps = [plan.known[rep_of[k]] for k in cand_key]
        long_enough = np.array([len(r) >= 3 for r in reps])
        rep_first = np.array(
            [r[1] if len(r) >= 3 else -2 for r in reps], dtype=np.int64
        )
        rep_penult = np.array(
            [r[-2] if len(r) >= 3 else 0 for r in reps], dtype=np.int64
        )
        # Reuse the representative's path when this pair enters and leaves
        # the core at the same points (same access hops).
        splice = (
            long_enough
            & (nh[srcs, dsts] == rep_first)
            & (nh[rep_penult, dsts] == dsts)
        )
        for j in np.flatnonzero(splice).tolist():
            i = candidates[j]
            rep = reps[j]
            plan.known[i] = [pairs[i][0]] + rep[1:-1] + [pairs[i][1]]
            if stats is not None:
                stats.spliced_pairs += 1
        direct = [candidates[j] for j in np.flatnonzero(~splice).tolist()]
        plan.walk_idx.extend(direct)

    plan.walk_idx.sort()
    plan.n_walks += len(plan.walk_idx)
    return plan


def discover_routes(
    tables: RoutingTables,
    pairs: list[tuple[int, int]],
    use_representatives: bool = False,
    stats=None,
) -> tuple[dict[tuple[int, int], list[int]], int]:
    """Traceroute a set of endpoint pairs.

    With ``use_representatives`` the walk runs once per (site(src),
    site(dst)) pair — the paper's optimization — and the router-level core
    of that representative path is reused for every endpoint pair attached
    to the same access routers (see :func:`plan_routes`).

    Returns ``(routes, n_traceroutes)`` — the second element is the number
    of actual traceroute executions, the cost the optimization reduces.
    """
    plan = plan_routes(
        tables, pairs, use_representatives=use_representatives, stats=stats
    )
    walked = batched_walks(
        tables, [plan.pairs[i] for i in plan.walk_idx], stats=stats
    )
    path_of = dict(plan.known)
    path_of.update(zip(plan.walk_idx, walked))
    routes: dict[tuple[int, int], list[int]] = {}
    for i, pair in enumerate(plan.pairs):
        routes[pair] = path_of[i]
    return routes, plan.n_walks
