"""Reference (pre-optimization) routing / PLACE kernels — test oracles.

These are the original pure-Python implementations of the §3.2 pipeline
hot paths, kept verbatim (modulo the parallel-link min-cost fix, which is
a semantic bugfix applied to both generations) so the differential parity
suite can prove the vectorized kernels in :mod:`repro.routing.spf`,
:mod:`repro.routing.icmp` and :mod:`repro.core.place` produce
*bit-identical* outputs:

- :func:`compute_routing_reference` — per-(source, destination) Python
  next-hop fill, O(n²) scalar work;
- :func:`discover_routes_reference` — one Python TTL walk per pair;
- :func:`estimate_traffic_reference` — per-pair Python accumulation of
  link/node rates.

They scale exactly the way the optimized kernels exist to avoid; never
call them from production code.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import shortest_path

from repro.routing.icmp import traceroute
from repro.routing.tables import RoutingTables, link_cost

__all__ = [
    "compute_routing_reference",
    "discover_routes_reference",
    "estimate_traffic_reference",
    "update_routing_reference",
]

#: Machine-checked pairing (``massf check``, rule ``parity-coverage``):
#: public oracles whose vectorized twin does not follow the plain
#: "strip the ``_reference`` suffix" naming convention declare their
#: counterpart here explicitly.
_PARITY_COUNTERPARTS = {
    "compute_routing_reference": "repro.routing.spf.build_routing",
    "update_routing_reference": "repro.routing.delta.update_routing",
}

#: Modules that carry the reference modules' bit-identity obligations
#: without defining a counterpart function themselves (the determinism
#: rules ban order-sensitive float reductions there too): shared-memory
#: splices feed the routing matrices the parity suite compares.
_PARITY_EXTRA_COUNTERPART_MODULES = ("repro.runtime.shm",)


# --------------------------------------------------------------------- #
# All-pairs routing (original)
# --------------------------------------------------------------------- #
def compute_routing_reference(
    net, metric: str = "latency", stats=None
) -> RoutingTables:
    """Original all-pairs route computation: scalar per-(i, j) fill.

    Parallel links between the same node pair route over the min-cost one
    (the optimized kernel's semantics; the original let scipy's CSR
    duplicate coalescing *sum* their costs, which is a bug — no real
    routing protocol adds parallel links' costs together).
    Administratively-down links are invisible to routing, matching
    :func:`repro.routing.spf._cost_graph` — another semantic fix applied
    to both generations.
    """
    n = net.n_nodes
    best: dict[tuple[int, int], float] = {}
    for link in net.links:
        if not link.up:
            continue
        cost = link_cost(link, metric)
        for pair in ((link.u, link.v), (link.v, link.u)):
            if pair not in best or cost < best[pair]:
                best[pair] = cost
    rows = [pair[0] for pair in best]
    cols = [pair[1] for pair in best]
    costs = [best[pair] for pair in best]
    graph = sp.csr_matrix(
        (np.array(costs), (np.array(rows), np.array(cols))), shape=(n, n)
    )
    dist, pred = shortest_path(
        graph, method="D", directed=False, return_predecessors=True
    )

    # next_hop[i, j]: first hop on the path i -> j.  Fill per source in
    # order of increasing distance so each entry is O(1):
    #   next_hop[i, j] = j                      if pred[i, j] == i
    #                  = next_hop[i, pred[i,j]] otherwise.
    next_hop = np.full((n, n), -1, dtype=np.int32)
    order = np.argsort(dist, axis=1, kind="stable")
    for i in range(n):
        nh = next_hop[i]
        pi = pred[i]
        for j in order[i]:
            j = int(j)
            if j == i or pi[j] < 0:
                continue
            p = int(pi[j])
            nh[j] = j if p == i else nh[p]
            if stats is not None:
                stats.python_dest_fills += 1
    return RoutingTables(net=net, metric=metric, dist=dist, next_hop=next_hop)


# --------------------------------------------------------------------- #
# Incremental routing maintenance (scalar oracle)
# --------------------------------------------------------------------- #
def _scalar_costs(net, metric: str) -> dict[tuple[int, int], float]:
    """Undirected min-coalesced link costs as a plain ``(a, b) -> cost``
    dict (``a < b``), up links only — the scalar twin of the CSR that
    :func:`repro.routing.spf._cost_graph` builds."""
    best: dict[tuple[int, int], float] = {}
    for link in net.links:
        if not link.up:
            continue
        cost = link_cost(link, metric)
        pair = (link.u, link.v) if link.u < link.v else (link.v, link.u)
        if pair not in best or cost < best[pair]:
            best[pair] = cost
    return best


def update_routing_reference(state, changes, stats=None) -> np.ndarray:
    """Scalar oracle for :func:`repro.routing.delta.update_routing`.

    Applies the change batch, derives the affected-source set with one
    plain Python tightness test per (source, changed edge) pair on the
    *pre-change* distances::

        dist[s, a] + min(c_old, c_new) <= dist[s, b]   (finite side only,
        or the symmetric test)

    then rebuilds the whole table from scratch via
    :func:`compute_routing_reference` and splices only the affected rows
    — so a row the predicate misses stays verbatim, and any divergence
    from the full rebuild indicts the predicate itself.  Mutates
    ``state`` exactly like the production engine (in-place tables, graph,
    generation) and returns the sorted touched source ids.
    """
    from repro.routing.delta import apply_changes

    tables = state.tables
    net = tables.net
    changes = list(changes)
    if not changes:
        return np.zeros(0, dtype=np.int64)
    old_dist = np.array(tables.dist)
    old_best = _scalar_costs(net, tables.metric)
    apply_changes(net, changes)
    new_best = _scalar_costs(net, tables.metric)

    edges: list[tuple[int, int, float]] = []
    for pair in sorted(set(old_best) | set(new_best)):
        old_c = old_best.get(pair, np.inf)
        new_c = new_best.get(pair, np.inf)
        if old_c != new_c:
            edges.append((pair[0], pair[1], min(old_c, new_c)))

    touched: list[int] = []
    for s in range(net.n_nodes):
        for a, b, cmin in edges:
            da = old_dist[s, a]
            db = old_dist[s, b]
            if (np.isfinite(da) and da + cmin <= db) or (
                    np.isfinite(db) and db + cmin <= da):
                touched.append(s)
                break
    if stats is not None:
        stats.delta_updates += 1
        stats.affected_sources += len(touched)
        stats.touched_sources += len(touched)

    fresh = compute_routing_reference(net, tables.metric)
    for s in touched:
        tables.dist[s] = fresh.dist[s]
        tables.next_hop[s] = fresh.next_hop[s]
    tables.__post_init__()

    rows = [pair[0] for pair in new_best] + [pair[1] for pair in new_best]
    cols = [pair[1] for pair in new_best] + [pair[0] for pair in new_best]
    costs = [new_best[pair] for pair in new_best] * 2
    state.graph = sp.csr_matrix(
        (np.array(costs), (np.array(rows), np.array(cols))),
        shape=(net.n_nodes, net.n_nodes),
    )
    state.generation += 1
    if state.arena is not None:
        state.arena.generation = state.generation
    return np.array(touched, dtype=np.int64)


# --------------------------------------------------------------------- #
# Route discovery (original)
# --------------------------------------------------------------------- #
def discover_routes_reference(
    tables: RoutingTables,
    pairs: list[tuple[int, int]],
    use_representatives: bool = False,
    stats=None,
) -> tuple[dict[tuple[int, int], list[int]], int]:
    """Original per-pair traceroute loop (see
    :func:`repro.routing.icmp.discover_routes` for semantics)."""

    def walk(src: int, dst: int) -> list[int]:
        path = traceroute(tables, src, dst)
        if stats is not None:
            stats.python_walk_steps += len(path) - 1
        return path

    routes: dict[tuple[int, int], list[int]] = {}
    n_walks = 0
    if not use_representatives:
        for src, dst in pairs:
            routes[(src, dst)] = walk(src, dst)
            n_walks += 1
        return routes, n_walks

    site_of = {
        n.node_id: (n.site or f"node{n.node_id}") for n in tables.net.nodes
    }
    rep_paths: dict[tuple[str, str], list[int]] = {}
    for src, dst in pairs:
        s_site, d_site = site_of[src], site_of[dst]
        key = (s_site, d_site)
        if s_site != d_site and key not in rep_paths:
            rep_paths[key] = walk(src, dst)
            n_walks += 1
            routes[(src, dst)] = rep_paths[key]
            continue
        if s_site == d_site:
            routes[(src, dst)] = walk(src, dst)
            n_walks += 1
            continue
        rep = rep_paths[key]
        # Reuse the representative's path when this pair enters and leaves
        # the core at the same points (same access hops).
        src_hop = tables.hop(src, dst)
        if (
            len(rep) >= 3
            and src_hop == rep[1]
            and tables.hop(rep[-2], dst) == dst
        ):
            routes[(src, dst)] = [src] + rep[1:-1] + [dst]
        else:
            routes[(src, dst)] = walk(src, dst)
            n_walks += 1
    return routes, n_walks


# --------------------------------------------------------------------- #
# Traffic aggregation (original)
# --------------------------------------------------------------------- #
def estimate_traffic_reference(
    net,
    tables: RoutingTables,
    flows,
    use_representatives: bool = True,
    stats=None,
):
    """Original per-pair accumulation of predicted rates."""
    from repro.core.place import TrafficEstimate

    link_rate = np.zeros(net.n_links, dtype=np.float64)
    node_rate = np.zeros(net.n_nodes, dtype=np.float64)
    # Merge duplicate pairs first — one traceroute per distinct pair.
    pair_rate: dict[tuple[int, int], float] = {}
    for flow in flows:
        key = (flow.src, flow.dst)
        pair_rate[key] = pair_rate.get(key, 0.0) + flow.bytes_per_s
    pairs = sorted(pair_rate)
    routes, n_walks = discover_routes_reference(
        tables, pairs, use_representatives=use_representatives, stats=stats
    )
    for pair in pairs:
        rate = pair_rate[pair]
        path = routes[pair]
        for node in path:
            node_rate[node] += rate
        for u, v in zip(path, path[1:]):
            link_rate[tables.link_between(u, v).link_id] += rate
    return TrafficEstimate(
        link_rate=link_rate, node_rate=node_rate, n_routes=n_walks
    )
