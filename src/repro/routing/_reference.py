"""Reference (pre-optimization) routing / PLACE kernels — test oracles.

These are the original pure-Python implementations of the §3.2 pipeline
hot paths, kept verbatim (modulo the parallel-link min-cost fix, which is
a semantic bugfix applied to both generations) so the differential parity
suite can prove the vectorized kernels in :mod:`repro.routing.spf`,
:mod:`repro.routing.icmp` and :mod:`repro.core.place` produce
*bit-identical* outputs:

- :func:`compute_routing_reference` — per-(source, destination) Python
  next-hop fill, O(n²) scalar work;
- :func:`discover_routes_reference` — one Python TTL walk per pair;
- :func:`estimate_traffic_reference` — per-pair Python accumulation of
  link/node rates.

They scale exactly the way the optimized kernels exist to avoid; never
call them from production code.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import shortest_path

from repro.routing.icmp import traceroute
from repro.routing.tables import RoutingTables, link_cost

__all__ = [
    "compute_routing_reference",
    "discover_routes_reference",
    "estimate_traffic_reference",
]

#: Machine-checked pairing (``massf check``, rule ``parity-coverage``):
#: public oracles whose vectorized twin does not follow the plain
#: "strip the ``_reference`` suffix" naming convention declare their
#: counterpart here explicitly.
_PARITY_COUNTERPARTS = {
    "compute_routing_reference": "repro.routing.spf.build_routing",
}


# --------------------------------------------------------------------- #
# All-pairs routing (original)
# --------------------------------------------------------------------- #
def compute_routing_reference(
    net, metric: str = "latency", stats=None
) -> RoutingTables:
    """Original all-pairs route computation: scalar per-(i, j) fill.

    Parallel links between the same node pair route over the min-cost one
    (the optimized kernel's semantics; the original let scipy's CSR
    duplicate coalescing *sum* their costs, which is a bug — no real
    routing protocol adds parallel links' costs together).
    """
    n = net.n_nodes
    best: dict[tuple[int, int], float] = {}
    for link in net.links:
        cost = link_cost(link, metric)
        for pair in ((link.u, link.v), (link.v, link.u)):
            if pair not in best or cost < best[pair]:
                best[pair] = cost
    rows = [pair[0] for pair in best]
    cols = [pair[1] for pair in best]
    costs = [best[pair] for pair in best]
    graph = sp.csr_matrix(
        (np.array(costs), (np.array(rows), np.array(cols))), shape=(n, n)
    )
    dist, pred = shortest_path(
        graph, method="D", directed=False, return_predecessors=True
    )

    # next_hop[i, j]: first hop on the path i -> j.  Fill per source in
    # order of increasing distance so each entry is O(1):
    #   next_hop[i, j] = j                      if pred[i, j] == i
    #                  = next_hop[i, pred[i,j]] otherwise.
    next_hop = np.full((n, n), -1, dtype=np.int32)
    order = np.argsort(dist, axis=1, kind="stable")
    for i in range(n):
        nh = next_hop[i]
        pi = pred[i]
        for j in order[i]:
            j = int(j)
            if j == i or pi[j] < 0:
                continue
            p = int(pi[j])
            nh[j] = j if p == i else nh[p]
            if stats is not None:
                stats.python_dest_fills += 1
    return RoutingTables(net=net, metric=metric, dist=dist, next_hop=next_hop)


# --------------------------------------------------------------------- #
# Route discovery (original)
# --------------------------------------------------------------------- #
def discover_routes_reference(
    tables: RoutingTables,
    pairs: list[tuple[int, int]],
    use_representatives: bool = False,
    stats=None,
) -> tuple[dict[tuple[int, int], list[int]], int]:
    """Original per-pair traceroute loop (see
    :func:`repro.routing.icmp.discover_routes` for semantics)."""

    def walk(src: int, dst: int) -> list[int]:
        path = traceroute(tables, src, dst)
        if stats is not None:
            stats.python_walk_steps += len(path) - 1
        return path

    routes: dict[tuple[int, int], list[int]] = {}
    n_walks = 0
    if not use_representatives:
        for src, dst in pairs:
            routes[(src, dst)] = walk(src, dst)
            n_walks += 1
        return routes, n_walks

    site_of = {
        n.node_id: (n.site or f"node{n.node_id}") for n in tables.net.nodes
    }
    rep_paths: dict[tuple[str, str], list[int]] = {}
    for src, dst in pairs:
        s_site, d_site = site_of[src], site_of[dst]
        key = (s_site, d_site)
        if s_site != d_site and key not in rep_paths:
            rep_paths[key] = walk(src, dst)
            n_walks += 1
            routes[(src, dst)] = rep_paths[key]
            continue
        if s_site == d_site:
            routes[(src, dst)] = walk(src, dst)
            n_walks += 1
            continue
        rep = rep_paths[key]
        # Reuse the representative's path when this pair enters and leaves
        # the core at the same points (same access hops).
        src_hop = tables.hop(src, dst)
        if (
            len(rep) >= 3
            and src_hop == rep[1]
            and tables.hop(rep[-2], dst) == dst
        ):
            routes[(src, dst)] = [src] + rep[1:-1] + [dst]
        else:
            routes[(src, dst)] = walk(src, dst)
            n_walks += 1
    return routes, n_walks


# --------------------------------------------------------------------- #
# Traffic aggregation (original)
# --------------------------------------------------------------------- #
def estimate_traffic_reference(
    net,
    tables: RoutingTables,
    flows,
    use_representatives: bool = True,
    stats=None,
):
    """Original per-pair accumulation of predicted rates."""
    from repro.core.place import TrafficEstimate

    link_rate = np.zeros(net.n_links, dtype=np.float64)
    node_rate = np.zeros(net.n_nodes, dtype=np.float64)
    # Merge duplicate pairs first — one traceroute per distinct pair.
    pair_rate: dict[tuple[int, int], float] = {}
    for flow in flows:
        key = (flow.src, flow.dst)
        pair_rate[key] = pair_rate.get(key, 0.0) + flow.bytes_per_s
    pairs = sorted(pair_rate)
    routes, n_walks = discover_routes_reference(
        tables, pairs, use_representatives=use_representatives, stats=stats
    )
    for pair in pairs:
        rate = pair_rate[pair]
        path = routes[pair]
        for node in path:
            node_rate[node] += rate
        for u, v in zip(path, path[1:]):
            link_rate[tables.link_between(u, v).link_id] += rate
    return TrafficEstimate(
        link_rate=link_rate, node_rate=node_rate, n_routes=n_walks
    )
