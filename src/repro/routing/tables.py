"""Routing tables: path queries and the memory model.

§2.2.2 of the paper: "The memory requirement is mainly based on the routing
table size.  The routing table size is in the order of O(n²), where n is the
number of routers in an AS" and §5: "we use m = 10 + x·x as the memory
requirement for a router, where x is the size of an AS."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.elements import Link
from repro.topology.network import Network

__all__ = ["RoutingTables", "memory_weights", "HOST_MEMORY_WEIGHT"]

HOST_MEMORY_WEIGHT = 1.0  # hosts keep a default route only


@dataclass
class RoutingTables:
    """All-pairs routing state for one network.

    Attributes
    ----------
    net:
        The routed network.
    metric:
        Link-cost metric the routes were computed with.
    dist:
        ``float64[n, n]`` metric distance matrix.
    next_hop:
        ``int32[n, n]``; ``next_hop[i, j]`` is the neighbour ``i`` forwards
        to when heading for ``j`` (``-1`` on the diagonal / unreachable).
    """

    net: Network
    metric: str
    dist: np.ndarray
    next_hop: np.ndarray

    def __post_init__(self) -> None:
        # (u, v) -> Link lookup used in the emulator's forwarding fast path.
        self._link_of: dict[tuple[int, int], Link] = {}
        for link in self.net.links:
            self._link_of[(link.u, link.v)] = link
            self._link_of[(link.v, link.u)] = link

    def hop(self, src: int, dst: int) -> int:
        """Next hop from ``src`` toward ``dst`` (-1 when src == dst)."""
        return int(self.next_hop[src, dst])

    def link_between(self, u: int, v: int) -> Link:
        """The link connecting two adjacent nodes."""
        try:
            return self._link_of[(u, v)]
        except KeyError:
            raise ValueError(f"nodes {u} and {v} are not adjacent") from None

    def path(self, src: int, dst: int, max_hops: int = 10_000) -> list[int]:
        """Node id sequence from ``src`` to ``dst`` inclusive."""
        if src == dst:
            return [src]
        path = [src]
        cur = src
        for _ in range(max_hops):
            nxt = self.hop(cur, dst)
            if nxt < 0:
                raise ValueError(f"no route {src} -> {dst}")
            path.append(nxt)
            if nxt == dst:
                return path
            cur = nxt
        raise RuntimeError("routing loop detected")

    def path_links(self, src: int, dst: int) -> list[Link]:
        """The links along the path from ``src`` to ``dst``."""
        nodes = self.path(src, dst)
        return [self.link_between(u, v) for u, v in zip(nodes, nodes[1:])]

    def path_latency(self, src: int, dst: int) -> float:
        """One-way propagation latency along the route (seconds)."""
        return float(sum(l.latency_s for l in self.path_links(src, dst)))

    def table_size(self, node_id: int) -> int:
        """Number of distinct destinations with a concrete next hop."""
        return int((self.next_hop[node_id] >= 0).sum())


def memory_weights(net: Network) -> np.ndarray:
    """Per-node memory requirement (the paper's magic formula).

    Routers: ``10 + x²`` where ``x`` is the number of routers in the node's
    AS.  Hosts: a small constant (:data:`HOST_MEMORY_WEIGHT`).
    """
    as_sizes = net.as_sizes()
    out = np.empty(net.n_nodes, dtype=np.float64)
    for node in net.nodes:
        if node.is_router:
            x = as_sizes.get(node.as_id, 0)
            out[node.node_id] = 10.0 + float(x) * float(x)
        else:
            out[node.node_id] = HOST_MEMORY_WEIGHT
    return out
