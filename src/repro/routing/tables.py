"""Routing tables: path queries and the memory model.

§2.2.2 of the paper: "The memory requirement is mainly based on the routing
table size.  The routing table size is in the order of O(n²), where n is the
number of routers in an AS" and §5: "we use m = 10 + x·x as the memory
requirement for a router, where x is the size of an AS."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.topology.elements import Link
from repro.topology.network import Network

__all__ = [
    "RoutingTables",
    "memory_weights",
    "HOST_MEMORY_WEIGHT",
    "METRICS",
    "link_cost",
    "link_cost_array",
]

HOST_MEMORY_WEIGHT = 1.0  # hosts keep a default route only

METRICS = ("latency", "hops", "inv-bandwidth")


def link_cost(link: Link, metric: str) -> float:
    """Cost of one link under a routing metric."""
    if metric == "latency":
        return link.latency_s
    if metric == "hops":
        return 1.0
    if metric == "inv-bandwidth":
        # OSPF-style reference-bandwidth cost (reference 100 Gbps).
        return 1e11 / link.bandwidth_bps
    raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")


def link_cost_array(
    latency_s: np.ndarray, bandwidth_bps: np.ndarray, metric: str
) -> np.ndarray:
    """Vectorized :func:`link_cost` over parallel link-attribute arrays."""
    if metric == "latency":
        return np.asarray(latency_s, dtype=np.float64)
    if metric == "hops":
        return np.ones(len(latency_s), dtype=np.float64)
    if metric == "inv-bandwidth":
        return 1e11 / np.asarray(bandwidth_bps, dtype=np.float64)
    raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")


@dataclass
class RoutingTables:
    """All-pairs routing state for one network.

    Attributes
    ----------
    net:
        The routed network.
    metric:
        Link-cost metric the routes were computed with.
    dist:
        ``float64[n, n]`` metric distance matrix.
    next_hop:
        ``int32[n, n]``; ``next_hop[i, j]`` is the neighbour ``i`` forwards
        to when heading for ``j`` (``-1`` on the diagonal / unreachable).
    """

    net: Network
    metric: str
    dist: np.ndarray
    next_hop: np.ndarray

    def __post_init__(self) -> None:
        # (u, v) -> Link lookup used in the emulator's forwarding fast path.
        # Parallel links between the same pair are routed over the min-cost
        # one (ties: first inserted), matching the shortest-path graph.
        use_cost = self.metric in METRICS
        best: dict[tuple[int, int], tuple[float, Link]] = {}
        for link in self.net.links:
            if not link.up:
                continue
            cost = link_cost(link, self.metric) if use_cost else 0.0
            for pair in ((link.u, link.v), (link.v, link.u)):
                cur = best.get(pair)
                if cur is None or cost < cur[0]:
                    best[pair] = (cost, link)
        self._link_of: dict[tuple[int, int], Link] = {
            pair: link for pair, (_, link) in best.items()
        }
        self._pair_lookup: tuple[np.ndarray, np.ndarray] | None = None

    def hop(self, src: int, dst: int) -> int:
        """Next hop from ``src`` toward ``dst`` (-1 when src == dst)."""
        return int(self.next_hop[src, dst])

    def link_between(self, u: int, v: int) -> Link:
        """The link connecting two adjacent nodes (min-cost on parallels)."""
        try:
            return self._link_of[(u, v)]
        except KeyError:
            raise ValueError(f"nodes {u} and {v} are not adjacent") from None

    def _lookup_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted ``u * n + v`` keys and the link id behind each adjacent
        pair (both directions), consistent with :meth:`link_between`."""
        if self._pair_lookup is None:
            n = self.net.n_nodes
            u, v, lat, bw = self.net.link_endpoint_arrays()
            ids = np.arange(len(u))
            upm = self.net.link_up_array()
            if not upm.all():
                u, v, lat, bw = u[upm], v[upm], lat[upm], bw[upm]
                ids = ids[upm]
            m = len(u)
            if self.metric in METRICS:
                cost = link_cost_array(lat, bw, self.metric)
            else:
                cost = np.zeros(m, dtype=np.float64)
            keys = np.concatenate([u * n + v, v * n + u])
            costs = np.concatenate([cost, cost])
            lids = np.concatenate([ids] * 2) if m else np.zeros(
                0, dtype=np.int64
            )
            order = np.lexsort((lids, costs, keys))
            keys, lids = keys[order], lids[order]
            first = np.ones(keys.size, dtype=bool)
            first[1:] = keys[1:] != keys[:-1]
            self._pair_lookup = (keys[first], lids[first])
        return self._pair_lookup

    def link_ids_of(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized ``link_between(u, v).link_id`` over adjacent pairs."""
        keys_s, lids_s = self._lookup_arrays()
        us = np.asarray(us, dtype=np.int64)
        keys = us * self.net.n_nodes + np.asarray(vs, dtype=np.int64)
        if keys_s.size == 0:
            if keys.size:
                raise ValueError(
                    f"nodes {int(us[0])} and {int(vs[0])} are not adjacent"
                )
            return np.zeros(0, dtype=np.int64)
        pos = np.minimum(np.searchsorted(keys_s, keys), keys_s.size - 1)
        bad = keys_s[pos] != keys
        if bad.any():
            i = int(np.argmax(bad))
            raise ValueError(
                f"nodes {int(us[i])} and {int(vs[i])} are not adjacent"
            )
        return lids_s[pos]

    def path(self, src: int, dst: int, max_hops: int = 10_000) -> list[int]:
        """Node id sequence from ``src`` to ``dst`` inclusive."""
        if src == dst:
            return [src]
        path = [src]
        cur = src
        for _ in range(max_hops):
            nxt = self.hop(cur, dst)
            if nxt < 0:
                raise ValueError(f"no route {src} -> {dst}")
            path.append(nxt)
            if nxt == dst:
                return path
            cur = nxt
        raise RuntimeError("routing loop detected")

    def path_links(self, src: int, dst: int) -> list[Link]:
        """The links along the path from ``src`` to ``dst``."""
        nodes = self.path(src, dst)
        return [self.link_between(u, v) for u, v in zip(nodes, nodes[1:])]

    def path_latency(self, src: int, dst: int) -> float:
        """One-way propagation latency along the route (seconds).

        ``math.fsum`` keeps the result exact (and therefore independent
        of summation order), so it stays bit-identical however the hop
        list is produced.
        """
        return math.fsum(
            link.latency_s for link in self.path_links(src, dst)
        )

    def table_size(self, node_id: int) -> int:
        """Number of distinct destinations with a concrete next hop."""
        return int((self.next_hop[node_id] >= 0).sum())


def memory_weights(net: Network) -> np.ndarray:
    """Per-node memory requirement (the paper's magic formula).

    Routers: ``10 + x²`` where ``x`` is the number of routers in the node's
    AS.  Hosts: a small constant (:data:`HOST_MEMORY_WEIGHT`).
    """
    as_sizes = net.as_sizes()
    out = np.empty(net.n_nodes, dtype=np.float64)
    for node in net.nodes:
        if node.is_router:
            x = as_sizes.get(node.as_id, 0)
            out[node.node_id] = 10.0 + float(x) * float(x)
        else:
            out[node.node_id] = HOST_MEMORY_WEIGHT
    return out
