"""Incremental shortest-path maintenance under topology change streams.

MaSSF emulates long-running networks whose link weights drift (diurnal
traffic engineering, failures, capacity upgrades); rebuilding the full
all-pairs table on every change costs O(n · Dijkstra) even when one edge
moved.  This module maintains a :class:`RoutingState` under a batch of
link changes by recomputing only the *affected* source rows:

1. apply the changes to the :class:`~repro.topology.network.Network`;
2. diff the old and new cost CSRs — the canonical change set (this also
   coalesces parallel links and no-op changes for free);
3. flag source ``s`` as affected by edge ``(a, b)`` going from ``c_old``
   to ``c_new`` iff, with ``c = min(c_old, c_new)``::

       dist[s, a] + c <= dist[s, b]   or   dist[s, b] + c <= dist[s, a]

   (finite side only).  An edge strictly outside every old *and* new
   equal-cost shortest-path cone of ``s`` cannot alter any of ``s``'s
   routes, so unaffected rows are reusable verbatim — the ``<=`` keeps
   tie-crossing edges inside the recompute set, which is what makes the
   splice bit-identical to a from-scratch build;
4. recompute exactly those source rows (blocked, through
   :func:`repro.runtime.pmap.parallel_map`) and splice them in place.

In-place splicing is what makes the zero-copy story work: when the state
is backed by an :class:`repro.runtime.shm.ShmArena`, LP worker processes
and persistent pmap pools observe the update without any re-pickling.

A ``cache`` keys the recomputed rows on (fingerprint-before, metric,
table version, canonical change set), so replaying a change stream — in
particular a change-then-revert pair — skips the Dijkstra work entirely;
and because the network fingerprint is content-based, a reverted network
hits the original full-table ``routing`` artifact again.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.routing.spf import (
    ROUTING_TABLE_VERSION,
    _cost_graph,
    _next_hop_block,
)
from repro.routing.tables import RoutingTables
from repro.topology.elements import Link
from repro.topology.network import Network

__all__ = [
    "SetLinkCost",
    "LinkUp",
    "LinkDown",
    "AddLink",
    "RoutingState",
    "routing_state",
    "apply_changes",
    "update_routing",
    "derive_routing",
]

#: Default source-row block handed to each pool task.
_DELTA_BLOCK_SIZE = 1024


@dataclass(frozen=True)
class SetLinkCost:
    """Change a link's cost-bearing attributes (either may be ``None``)."""

    link_id: int
    bandwidth_bps: float | None = None
    latency_s: float | None = None


@dataclass(frozen=True)
class LinkUp:
    """Bring a link administratively up."""

    link_id: int


@dataclass(frozen=True)
class LinkDown:
    """Take a link administratively down (routing-level removal)."""

    link_id: int


@dataclass(frozen=True)
class AddLink:
    """Add a new link between two existing nodes."""

    u: int
    v: int
    bandwidth_bps: float
    latency_s: float


def apply_changes(net: Network, changes) -> list[Link]:
    """Apply a change batch to the network; returns the new link records.

    Mutation-only — routing tables are *not* updated; that is
    :func:`update_routing`'s job (which calls this itself).
    """
    applied: list[Link] = []
    for change in changes:
        if isinstance(change, SetLinkCost):
            applied.append(net.set_link(
                change.link_id, bandwidth_bps=change.bandwidth_bps,
                latency_s=change.latency_s,
            ))
        elif isinstance(change, LinkUp):
            applied.append(net.set_link_up(change.link_id, True))
        elif isinstance(change, LinkDown):
            applied.append(net.set_link_up(change.link_id, False))
        elif isinstance(change, AddLink):
            applied.append(net.add_link(
                change.u, change.v, change.bandwidth_bps, change.latency_s,
            ))
        else:
            raise TypeError(f"unknown change {change!r}")
    return applied


@dataclass
class RoutingState:
    """A live routing table plus the cost graph it was computed from.

    ``tables`` owns private ``dist`` / ``next_hop`` arrays (never the
    cache's copies — the artifact cache's memory tier hands out shared
    objects, and the delta engine splices in place).  ``generation``
    advances on every applied update and doubles as the staleness token
    for :class:`repro.runtime.pmap.PmapPool` and the LP worker pool.
    """

    tables: RoutingTables
    graph: sp.csr_matrix
    generation: int = 0
    arena: object | None = None

    def share(self, arena) -> "RoutingState":
        """Move ``dist`` / ``next_hop`` into shared memory (zero-copy
        visibility for forked workers across later in-place updates)."""
        self.tables.dist = arena.share("dist", self.tables.dist)
        self.tables.next_hop = arena.share("next_hop", self.tables.next_hop)
        self.arena = arena
        arena.generation = self.generation
        return self


def routing_state(tables: RoutingTables, *, arena=None) -> RoutingState:
    """Wrap computed tables for incremental maintenance.

    Copies the matrices (the input may be a cache-shared object that must
    stay pristine) and rebuilds the cost CSR the tables correspond to.
    With an ``arena``, the copies land in shared memory.
    """
    state = RoutingState(
        tables=RoutingTables(
            net=tables.net, metric=tables.metric,
            dist=np.array(tables.dist, dtype=np.float64),
            next_hop=np.array(tables.next_hop, dtype=np.int32),
        ),
        graph=_cost_graph(tables.net, tables.metric),
    )
    if arena is not None:
        state.share(arena)
    return state


def _canonical_changes(old_graph, new_graph):
    """Diff two cost CSRs into ``(a, b, old_cost, new_cost)`` arrays.

    One upper-triangle entry per undirected edge whose effective cost
    changed; a stored zero means the edge is absent on that side
    (all link costs are strictly positive), reported as ``inf``.  Two
    change batches with the same net effect canonicalize identically,
    which is what makes the delta cache hit on replayed streams.
    """
    diff = sp.triu(old_graph != new_graph).tocoo()
    a = diff.row.astype(np.int64)
    b = diff.col.astype(np.int64)
    if len(a) == 0:
        empty = np.zeros(0, dtype=np.float64)
        return a, b, empty, empty
    old_c = np.asarray(old_graph[a, b]).ravel()
    new_c = np.asarray(new_graph[a, b]).ravel()
    old_c = np.where(old_c == 0.0, np.inf, old_c)
    new_c = np.where(new_c == 0.0, np.inf, new_c)
    return a, b, old_c, new_c


def _affected_sources(dist: np.ndarray, a, b, old_c, new_c) -> np.ndarray:
    """Sources whose routes may cross any changed edge (sorted ids).

    Uses the pre-change distance matrix; ``min(old, new)`` covers both
    directions of change (a cheaper edge attracts paths, a pricier one
    released them).  Disconnected endpoints (``inf`` distance) never
    flag a source — except through the other, finite endpoint, which is
    exactly the component-joining ``AddLink`` case.
    """
    cmin = np.minimum(old_c, new_c)
    da = dist[:, a]
    db = dist[:, b]
    hit = (((da + cmin) <= db) & np.isfinite(da)) \
        | (((db + cmin) <= da) & np.isfinite(db))
    return np.flatnonzero(hit.any(axis=1)).astype(np.int64)


def _spf_block(srcs: np.ndarray, graph) -> tuple[np.ndarray, np.ndarray]:
    """Recompute one block of source rows (runs inside pool workers).

    scipy's per-source Dijkstra is independent across sources, so rows
    computed with ``indices=srcs`` are bit-identical to the same rows of
    a whole-matrix call — the property the splice relies on.
    """
    from scipy.sparse.csgraph import shortest_path

    d, p = shortest_path(
        graph, method="D", directed=False, return_predecessors=True,
        indices=srcs,
    )
    return d, _next_hop_block(p, srcs)


def _recompute_rows(
    touched, graph, *, workers, block_size, generation, pool, telemetry,
    stats,
):
    from repro.runtime.pmap import parallel_map

    blocks = [
        touched[start:start + block_size]
        for start in range(0, len(touched), block_size)
    ]
    if stats is not None:
        stats.dijkstra_calls += len(blocks)
    outs = parallel_map(
        _spf_block, blocks, workers=workers, shared=graph,
        telemetry=telemetry, generation=generation, pool=pool,
    )
    d_rows = np.concatenate([d for d, _ in outs])
    nh_rows = np.concatenate([nh for _, nh in outs])
    return d_rows, nh_rows


def update_routing(
    state: RoutingState,
    changes,
    *,
    workers: int = 0,
    pool=None,
    block_size: int | None = None,
    cache=None,
    telemetry=None,
    stats=None,
) -> np.ndarray:
    """Apply a change batch and incrementally repair the routing tables.

    Returns the sorted array of touched source ids.  After the call,
    ``state.tables`` is bit-identical to
    :func:`repro.routing.spf.build_routing` run from scratch on the
    changed network — distance matrix, next hops, and the link lookup
    behind :meth:`~repro.routing.tables.RoutingTables.link_between`.

    Parameters
    ----------
    workers, pool:
        Pool sizing for the row recompute, as in
        :func:`repro.runtime.pmap.parallel_map`; ``pool`` (a
        :class:`~repro.runtime.pmap.PmapPool`) persists workers across a
        change stream and re-forks on generation moves.
    cache:
        Optional :class:`~repro.runtime.cache.ArtifactCache`; recomputed
        rows are stored under the ``routing-delta`` kind keyed on
        (fingerprint-before, metric, table version, canonical change
        set), so a replayed stream never reaches scipy.
    stats:
        Optional :class:`~repro.routing.perf.RoutingStats`; fills
        ``delta_updates``, ``affected_sources`` and ``touched_sources``
        (the perf guard pins the last two equal).
    """
    from repro.obs.telemetry import ensure_telemetry

    tel = ensure_telemetry(telemetry)
    tables = state.tables
    net = tables.net
    fp_before = net.fingerprint()
    if not list(changes):
        return np.zeros(0, dtype=np.int64)
    apply_changes(net, changes)
    if block_size is None:
        block_size = _DELTA_BLOCK_SIZE
    block_size = max(1, int(block_size))

    with tel.span("routing/delta"):
        new_graph = _cost_graph(net, tables.metric)
        a, b, old_c, new_c = _canonical_changes(state.graph, new_graph)
        if len(a) == 0:
            # Cost graph unchanged (e.g. bandwidth move under the latency
            # metric, or adding a dominated parallel link) — distances
            # and next hops stand, but link records moved.
            touched = np.zeros(0, dtype=np.int64)
        else:
            touched = _affected_sources(tables.dist, a, b, old_c, new_c)
        if stats is not None:
            stats.delta_updates += 1
            stats.affected_sources += len(touched)
        if len(touched):
            canon = tuple(
                (int(ai), int(bi), float(oc), float(nc))
                for ai, bi, oc, nc in zip(a, b, old_c, new_c)
            )
            generation = state.generation + 1

            def compute():
                return _recompute_rows(
                    touched, new_graph, workers=workers,
                    block_size=block_size, generation=generation,
                    pool=pool, telemetry=telemetry, stats=stats,
                )

            if cache is not None:
                d_rows, nh_rows = cache.get_or_compute(
                    "routing-delta",
                    (fp_before, tables.metric, ROUTING_TABLE_VERSION,
                     canon),
                    compute,
                )
            else:
                d_rows, nh_rows = compute()
            tables.dist[touched] = d_rows
            tables.next_hop[touched] = nh_rows
            if stats is not None:
                stats.touched_sources += len(touched)
        # Link records changed even when no row did — refresh the
        # (u, v) -> Link lookup and the pair-id tables.
        tables.__post_init__()
        state.graph = new_graph
        state.generation += 1
        if state.arena is not None:
            state.arena.generation = state.generation
    tel.count("routing.delta_updates")
    tel.count("routing.touched_sources", len(touched))
    return touched


def derive_routing(
    base: RoutingState,
    net: Network,
    *,
    max_changes: int | None = None,
    workers: int = 0,
    pool=None,
    block_size: int | None = None,
    cache=None,
    telemetry=None,
    stats=None,
) -> tuple[RoutingState, np.ndarray] | None:
    """Derive a fresh :class:`RoutingState` for ``net`` from ``base``.

    The cross-request sibling of :func:`update_routing`: neither ``base``
    nor its network is mutated.  ``net`` must share ``base``'s node-id
    universe (same node count); its cost graph is diffed against
    ``base.graph``, only the affected source rows are recomputed, and the
    unchanged rows are copied verbatim — the returned tables are
    bit-identical to :func:`repro.routing.spf.build_routing` run from
    scratch on ``net`` (each recomputed row is per-source independent,
    and an unaffected row cannot differ: the predicate keeps every edge
    on or tied with a shortest-path cone inside the recompute set).

    Returns ``(state, touched)``, or ``None`` when the derivation is not
    applicable: different node universe, different metric-graph shape, or
    more than ``max_changes`` canonically-changed edges (the caller
    should fall back to a full build).  ``len(touched) == 0`` means the
    cost graphs were identical and the base tables were copied whole.

    This is the warm-cache primitive behind the mapping service: a
    request whose topology differs from a cached entry by a small change
    set is served through the incremental engine instead of a full
    all-pairs rebuild.
    """
    from repro.obs.telemetry import ensure_telemetry

    tel = ensure_telemetry(telemetry)
    tables = base.tables
    if net.n_nodes != tables.net.n_nodes:
        return None
    with tel.span("routing/derive"):
        new_graph = _cost_graph(net, tables.metric)
        if new_graph.shape != base.graph.shape:
            return None
        a, b, old_c, new_c = _canonical_changes(base.graph, new_graph)
        if max_changes is not None and len(a) > int(max_changes):
            return None
        if len(a) == 0:
            touched = np.zeros(0, dtype=np.int64)
        else:
            touched = _affected_sources(tables.dist, a, b, old_c, new_c)
        if stats is not None:
            stats.delta_updates += 1
            stats.affected_sources += len(touched)
        dist = np.array(tables.dist, dtype=np.float64)
        next_hop = np.array(tables.next_hop, dtype=np.int32)
        if len(touched):
            canon = tuple(
                (int(ai), int(bi), float(oc), float(nc))
                for ai, bi, oc, nc in zip(a, b, old_c, new_c)
            )

            def compute():
                return _recompute_rows(
                    touched, new_graph, workers=workers,
                    block_size=max(1, int(block_size or _DELTA_BLOCK_SIZE)),
                    generation=base.generation + 1, pool=pool,
                    telemetry=telemetry, stats=stats,
                )

            if cache is not None:
                d_rows, nh_rows = cache.get_or_compute(
                    "routing-delta",
                    (tables.net.fingerprint(), tables.metric,
                     ROUTING_TABLE_VERSION, canon),
                    compute,
                )
            else:
                d_rows, nh_rows = compute()
            dist[touched] = d_rows
            next_hop[touched] = nh_rows
            if stats is not None:
                stats.touched_sources += len(touched)
        derived = RoutingState(
            tables=RoutingTables(
                net=net, metric=tables.metric, dist=dist, next_hop=next_hop,
            ),
            graph=new_graph,
        )
    tel.count("routing.derive_updates")
    tel.count("routing.touched_sources", len(touched))
    return derived, touched
