"""Operation counters for the routing / traffic-estimation hot paths.

The PR-3 pattern (:mod:`repro.partition.perf`) applied to the §3.2 PLACE
pipeline: the vectorized kernels promise *batched* work — a next-hop table
built from O(log n) whole-matrix gather rounds instead of one Python
iteration per (source, destination), traceroutes stepped for all pairs at
once, and one route walk per *distinct* endpoint pair regardless of how
many predicted flows share it.  :class:`RoutingStats` counts the operations
that would betray a regression to per-pair Python work, and the perf-guard
test (``tests/routing/test_perf_guard.py``) asserts the bounds so the build
fails if someone reintroduces a scalar loop.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RoutingStats"]


@dataclass
class RoutingStats:
    """Counters filled in by :func:`~repro.routing.spf.build_routing`,
    :func:`~repro.routing.icmp.discover_routes` and
    :func:`~repro.core.place.estimate_traffic`.

    Attributes
    ----------
    dijkstra_calls:
        Per-source-block ``scipy`` Dijkstra invocations (one in full mode,
        ``ceil(n / block_size)`` in blocked mode).
    nexthop_rounds:
        Pointer-doubling gather rounds of the vectorized next-hop fill —
        O(log diameter) per block, never O(n).
    python_dest_fills:
        Per-(source, destination) Python next-hop assignments.  Only the
        reference kernel performs these; the vectorized kernel must report
        exactly zero.
    walks:
        Traceroute executions (each batched walk counts once per pair, the
        paper's traceroute budget).
    walk_rounds:
        Batched stepping rounds — bounded by the longest route walked, not
        by the sum of path lengths.
    python_walk_steps:
        Per-hop Python ``next_hop`` lookups.  Only the reference walker
        performs these.
    routed_pairs:
        Distinct endpoint pairs routed by ``estimate_traffic`` — the guard
        asserts ``walks`` scales with this, not with the flow count.
    spliced_pairs:
        Pairs resolved by splicing a representative path (no walk).
    delta_updates:
        :func:`~repro.routing.delta.update_routing` invocations.
    affected_sources:
        Sources the delta predicate flagged as possibly changed — the
        set an incremental update *must* recompute.
    touched_sources:
        Source rows actually recomputed and spliced by the delta engine.
        The perf guard asserts ``touched_sources == affected_sources``
        exactly: recomputing fewer breaks correctness, recomputing more
        (e.g. a silent full-table rebuild) breaks the perf contract.
    rewalked_pairs:
        Endpoint pairs re-walked by the incremental traffic estimator
        (their old route visited a touched source).
    kept_pairs:
        Pairs whose stored route provably survived the change (no walk).
    """

    dijkstra_calls: int = 0
    nexthop_rounds: int = 0
    python_dest_fills: int = 0
    walks: int = 0
    walk_rounds: int = 0
    python_walk_steps: int = 0
    routed_pairs: int = 0
    spliced_pairs: int = 0
    delta_updates: int = 0
    affected_sources: int = 0
    touched_sources: int = 0
    rewalked_pairs: int = 0
    kept_pairs: int = 0

    def merge(self, other: "RoutingStats") -> None:
        """Accumulate another stats object into this one."""
        self.dijkstra_calls += other.dijkstra_calls
        self.nexthop_rounds += other.nexthop_rounds
        self.python_dest_fills += other.python_dest_fills
        self.walks += other.walks
        self.walk_rounds += other.walk_rounds
        self.python_walk_steps += other.python_walk_steps
        self.routed_pairs += other.routed_pairs
        self.spliced_pairs += other.spliced_pairs
        self.delta_updates += other.delta_updates
        self.affected_sources += other.affected_sources
        self.touched_sources += other.touched_sources
        self.rewalked_pairs += other.rewalked_pairs
        self.kept_pairs += other.kept_pairs
