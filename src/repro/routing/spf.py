"""Shortest-path-first route computation.

MaSSF instantiates the emulated network and generates routing tables from
routing protocols; our stand-in computes all-pairs shortest paths over the
link graph with a configurable metric and materializes a dense next-hop
matrix (the union of every node's routing table).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import shortest_path

from repro.routing.tables import RoutingTables
from repro.topology.network import Network

__all__ = ["build_routing", "METRICS"]

METRICS = ("latency", "hops", "inv-bandwidth")


def _link_cost(link, metric: str) -> float:
    if metric == "latency":
        return link.latency_s
    if metric == "hops":
        return 1.0
    if metric == "inv-bandwidth":
        # OSPF-style reference-bandwidth cost (reference 100 Gbps).
        return 1e11 / link.bandwidth_bps
    raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")


def build_routing(
    net: Network, metric: str = "latency", *, cache=None, telemetry=None
) -> RoutingTables:
    """Compute all-pairs routes for ``net``.

    Returns a :class:`RoutingTables` with the distance matrix (in metric
    units) and the dense next-hop matrix.  Ties are broken deterministically
    by scipy's Dijkstra implementation given the fixed adjacency ordering.

    ``cache`` (an :class:`repro.runtime.cache.ArtifactCache`) keys the
    tables on the network fingerprint + metric; a hit skips the all-pairs
    computation entirely.  ``telemetry`` records a ``routing/build`` span
    (actual builds only — cache hits cost no span) and build counters.
    """
    if cache is not None:
        key_parts = (net.fingerprint(), metric)
        tables = cache.get_or_compute(
            "routing", key_parts,
            lambda: _build_routing(net, metric, telemetry=telemetry),
        )
        # A disk hit unpickles its own copy of the network; rebind to the
        # caller's instance so the object graph stays consistent.
        if tables.net is not net:
            tables.net = net
            tables.__post_init__()
        return tables
    return _build_routing(net, metric, telemetry=telemetry)


def _build_routing(
    net: Network, metric: str, telemetry=None
) -> RoutingTables:
    from repro.obs.telemetry import ensure_telemetry

    tel = ensure_telemetry(telemetry)
    with tel.span("routing/build"):
        tables = _compute_routing(net, metric)
    tel.count("routing.builds")
    tel.count("routing.nodes", net.n_nodes)
    return tables


def _compute_routing(net: Network, metric: str) -> RoutingTables:
    n = net.n_nodes
    rows, cols, costs = [], [], []
    for link in net.links:
        cost = _link_cost(link, metric)
        rows.extend((link.u, link.v))
        cols.extend((link.v, link.u))
        costs.extend((cost, cost))
    graph = sp.csr_matrix(
        (np.array(costs), (np.array(rows), np.array(cols))), shape=(n, n)
    )
    dist, pred = shortest_path(
        graph, method="D", directed=False, return_predecessors=True
    )

    # next_hop[i, j]: first hop on the path i -> j.  Fill per source in
    # order of increasing distance so each entry is O(1):
    #   next_hop[i, j] = j                      if pred[i, j] == i
    #                  = next_hop[i, pred[i,j]] otherwise.
    next_hop = np.full((n, n), -1, dtype=np.int32)
    order = np.argsort(dist, axis=1, kind="stable")
    for i in range(n):
        nh = next_hop[i]
        pi = pred[i]
        for j in order[i]:
            j = int(j)
            if j == i or pi[j] < 0:
                continue
            p = int(pi[j])
            nh[j] = j if p == i else nh[p]
    return RoutingTables(net=net, metric=metric, dist=dist, next_hop=next_hop)
