"""Shortest-path-first route computation.

MaSSF instantiates the emulated network and generates routing tables from
routing protocols; our stand-in computes all-pairs shortest paths over the
link graph with a configurable metric and materializes a dense next-hop
matrix (the union of every node's routing table).

The next-hop fill is vectorized: instead of one Python assignment per
(source, destination) pair, the predecessor matrix is resolved by
pointer-doubling (path compression) — O(log diameter) whole-matrix gather
rounds.  A blocked per-source mode bounds peak memory at 10k-node scale:
Dijkstra runs per source block, so the full predecessor matrix is never
materialized alongside the distance and next-hop tables.  Outputs are
bit-identical to the preserved reference kernel
(:func:`repro.routing._reference.compute_routing_reference`) in every mode.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import shortest_path

from repro.routing.tables import (
    METRICS,
    RoutingTables,
    link_cost,
    link_cost_array,
)
from repro.topology.network import Network

__all__ = ["build_routing", "METRICS", "ROUTING_TABLE_VERSION"]

#: Cache-key salt for routing artifacts.  v2: parallel links between the
#: same node pair route over the min-cost link (previously scipy's CSR
#: duplicate coalescing silently *summed* their costs), so v1 entries for
#: affected networks would be stale.
ROUTING_TABLE_VERSION = 2

#: Networks above this size default to blocked per-source computation.
_AUTO_BLOCK_NODES = 4096
_AUTO_BLOCK_SIZE = 1024


def _link_cost(link, metric: str) -> float:
    # Kept for backward compatibility; canonical home is routing.tables.
    return link_cost(link, metric)


def build_routing(
    net: Network,
    metric: str = "latency",
    *,
    cache=None,
    telemetry=None,
    block_size: int | None = None,
    stats=None,
) -> RoutingTables:
    """Compute all-pairs routes for ``net``.

    Returns a :class:`RoutingTables` with the distance matrix (in metric
    units) and the dense next-hop matrix.  Ties are broken deterministically
    by scipy's Dijkstra implementation given the fixed adjacency ordering.

    ``cache`` (an :class:`repro.runtime.cache.ArtifactCache`) keys the
    tables on the network fingerprint + metric + table version; a hit skips
    the all-pairs computation entirely.  ``telemetry`` records a
    ``routing/build`` span (actual builds only — cache hits cost no span)
    and build counters.  ``block_size`` forces per-source-block computation
    (``None`` auto-enables blocking above ``4096`` nodes — results are
    bit-identical, only peak memory changes).  ``stats`` (a
    :class:`repro.routing.perf.RoutingStats`) collects operation counters
    for the perf-guard tests.
    """
    if cache is not None:
        key_parts = (net.fingerprint(), metric, ROUTING_TABLE_VERSION)
        tables = cache.get_or_compute(
            "routing", key_parts,
            lambda: _build_routing(
                net, metric, telemetry=telemetry, block_size=block_size,
                stats=stats,
            ),
        )
        # A disk hit unpickles its own copy of the network; rebind to the
        # caller's instance so the object graph stays consistent.
        if tables.net is not net:
            tables.net = net
            tables.__post_init__()
        return tables
    return _build_routing(
        net, metric, telemetry=telemetry, block_size=block_size, stats=stats
    )


def _build_routing(
    net: Network, metric: str, telemetry=None, block_size=None, stats=None
) -> RoutingTables:
    from repro.obs.telemetry import ensure_telemetry
    from repro.routing.perf import RoutingStats

    tel = ensure_telemetry(telemetry)
    st = stats if stats is not None else RoutingStats()
    with tel.span("routing/build"):
        tables = _compute_routing(
            net, metric, block_size=block_size, stats=st
        )
    tel.count("routing.builds")
    tel.count("routing.nodes", net.n_nodes)
    tel.count("routing.dijkstra_calls", st.dijkstra_calls)
    tel.count("routing.nexthop_rounds", st.nexthop_rounds)
    return tables


def _cost_graph(net: Network, metric: str) -> sp.csr_matrix:
    """Symmetric link-cost CSR; parallel links coalesce to the min cost.

    Administratively-down links are absent from the graph entirely (their
    dense ids survive in the per-link arrays, but routing never sees
    them).
    """
    n = net.n_nodes
    u, v, lat, bw = net.link_endpoint_arrays()
    up = net.link_up_array()
    if not up.all():
        u, v, lat, bw = u[up], v[up], lat[up], bw[up]
    costs = link_cost_array(lat, bw, metric)
    rows = np.concatenate([u, v])
    cols = np.concatenate([v, u])
    both = np.concatenate([costs, costs])
    # Sort by (row, col, cost): the first slot of every duplicate group is
    # the cheapest parallel link — scipy's default coo→csr conversion would
    # silently *sum* duplicates instead.
    order = np.lexsort((both, cols, rows))
    rows, cols, both = rows[order], cols[order], both[order]
    first = np.ones(rows.size, dtype=bool)
    first[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
    return sp.csr_matrix(
        (both[first], (rows[first], cols[first])), shape=(n, n)
    )


def _next_hop_block(
    pred: np.ndarray, srcs: np.ndarray, stats=None
) -> np.ndarray:
    """Next-hop rows for one source block, by pointer doubling.

    ``pred[b, j]`` is the predecessor of ``j`` on the shortest path from
    ``srcs[b]``.  Nodes adjacent to the source resolve immediately
    (``next_hop = j``); every other node copies the next hop of any strict
    ancestor on its shortest-path tree branch — ancestor pointers double
    each round and park at the (already resolved) first-hop node, so the
    whole block resolves in O(log diameter) gather rounds.
    """
    b, n = pred.shape
    cols = np.broadcast_to(np.arange(n, dtype=np.int32), (b, n))
    src_col = np.asarray(srcs, dtype=np.int32)[:, None]
    has_pred = pred >= 0
    direct = pred == src_col
    nh = np.where(direct, cols, np.int32(-1))
    # Ancestor pointers: parents, except resolved/terminal nodes point at
    # themselves so doubled pointers never jump past the first hop.
    anc = np.where(direct | ~has_pred, cols, pred).astype(np.int32)
    max_rounds = 2 * max(int(n).bit_length(), 1) + 4
    for _ in range(max_rounds):
        unresolved = (nh < 0) & has_pred
        if not unresolved.any():
            return nh
        np.copyto(nh, np.take_along_axis(nh, anc, axis=1), where=unresolved)
        anc = np.take_along_axis(anc, anc, axis=1)
        if stats is not None:
            stats.nexthop_rounds += 1
    if ((nh < 0) & has_pred).any():  # pragma: no cover - defensive
        raise RuntimeError("next-hop fixpoint did not converge")
    return nh


def _compute_routing(
    net: Network, metric: str, *, block_size=None, stats=None
) -> RoutingTables:
    n = net.n_nodes
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")
    graph = _cost_graph(net, metric)
    if block_size is None:
        block_size = _AUTO_BLOCK_SIZE if n > _AUTO_BLOCK_NODES else n
    block_size = max(1, int(block_size))

    if block_size >= n:
        dist, pred = shortest_path(
            graph, method="D", directed=False, return_predecessors=True
        )
        if stats is not None:
            stats.dijkstra_calls += 1
        next_hop = _next_hop_block(pred, np.arange(n), stats)
        return RoutingTables(
            net=net, metric=metric, dist=dist, next_hop=next_hop
        )

    dist = np.empty((n, n), dtype=np.float64)
    next_hop = np.empty((n, n), dtype=np.int32)
    for start in range(0, n, block_size):
        srcs = np.arange(start, min(start + block_size, n))
        d, p = shortest_path(
            graph, method="D", directed=False, return_predecessors=True,
            indices=srcs,
        )
        if stats is not None:
            stats.dijkstra_calls += 1
        dist[srcs] = d
        next_hop[srcs] = _next_hop_block(p, srcs, stats)
    return RoutingTables(net=net, metric=metric, dist=dist, next_hop=next_hop)
