"""Command-line tools.

One console entry point, ``massf``, with four subcommands:

- ``massf map`` — partition a network description (DML) file onto engine
  nodes with TOP, or with PROFILE when given a NetFlow dump directory.
- ``massf emulate`` — run a built-in experiment (topology × application ×
  approach) end to end and print the §4.1.1 metrics as JSON.
- ``massf netflow`` — summarize a NetFlow dump directory (top routers,
  links, flows).
- ``massf sweep`` — repeat an experiment across seeds on the parallel
  runtime (worker processes + content-addressed artifact cache) and print
  mean ± spread statistics; ``--stats out.json`` additionally records a
  structured telemetry snapshot (phase spans, executor/cache counters,
  per-engine-node load timelines).
- ``massf stats`` — render such a telemetry snapshot as a human-readable
  report (optionally exporting CSV tables).
- ``massf check`` — run the :mod:`repro.analysis` static analysis
  (determinism / parity coverage / parallel-safety / telemetry hygiene)
  over the source tree; exit 0 when clean, 2 on findings, 1 on internal
  error.
- ``massf serve`` — run the persistent mapping service (JSON over HTTP
  with warm shared caches; see :mod:`repro.service`).
- ``massf submit`` — submit a request document to a running service and
  (by default) wait for the result.
- ``massf jobs`` — list / inspect / cancel service jobs, dump status and
  metrics, or stream SSE telemetry events.
- ``massf bench service`` — drive a mixed map/sweep batch against a
  private service instance cold then warm and report throughput,
  latency percentiles and the warm/cold speedup (CI-gated via
  ``--min-speedup``).

The historical per-tool entry points (``massf-map``, ``massf-emulate``,
``massf-netflow``) remain as thin deprecation shims.

All commands are plain functions taking ``argv`` so tests can drive them
without subprocesses.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["massf", "massf_map", "massf_emulate", "massf_netflow"]


# --------------------------------------------------------------------- #
# massf map
# --------------------------------------------------------------------- #
def _configure_map(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("network", help="network description (DML) file")
    parser.add_argument("-k", "--parts", type=int, required=True,
                        help="number of engine nodes")
    parser.add_argument("--approach", choices=("top", "profile"),
                        default="top")
    parser.add_argument("--netflow-dir",
                        help="NetFlow dump directory (PROFILE only)")
    parser.add_argument("--duration", type=float, default=None,
                        help="profiled run duration in seconds "
                        "(PROFILE only; default: last record time)")
    parser.add_argument("--algorithm", default="multilevel")
    parser.add_argument("--tolerance", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--latency-priority", type=float, default=0.6)
    parser.add_argument("-o", "--output", help="write assignment here "
                        "instead of stdout")


def _cmd_map(parser: argparse.ArgumentParser, args) -> int:
    from repro.core.mapper import Mapper, MapperConfig
    from repro.profiling.aggregate import ProfileData
    from repro.profiling.dump import load_dump_dir
    from repro.topology import dml

    net = dml.load(args.network)
    config = MapperConfig(
        algorithm=args.algorithm, tolerance=args.tolerance, seed=args.seed,
        latency_priority=args.latency_priority,
    )
    mapper = Mapper(net, n_parts=args.parts, config=config)
    if args.approach == "top":
        mapping = mapper.map_top()
    else:
        if not args.netflow_dir:
            parser.error("--netflow-dir is required for --approach profile")
        records = load_dump_dir(args.netflow_dir)
        if not records:
            parser.error(f"no NetFlow records under {args.netflow_dir}")
        duration = args.duration
        if duration is None:
            duration = max(r.last for r in records) * 1.01
        profile = ProfileData.from_records(records, net, duration=duration)
        initial = mapper.map_top()
        mapping = mapper.map_profile(profile, initial_parts=initial.parts)

    lines = [f"# {mapping.summary()}"]
    lines += [
        f"{node.node_id} {int(mapping.parts[node.node_id])}"
        for node in net.nodes
    ]
    text = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0


# --------------------------------------------------------------------- #
# massf emulate
# --------------------------------------------------------------------- #
def _configure_emulate(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", choices=("campus", "teragrid", "brite"),
                        default="campus")
    parser.add_argument("--network",
                        help="custom network description (DML) file "
                        "(overrides --topology; requires -k)")
    parser.add_argument("--spec",
                        help="traffic specification file (overrides --app "
                        "and --intensity; see repro.traffic.spec)")
    parser.add_argument("-k", "--parts", type=int, default=None,
                        help="engine nodes (required with --network)")
    parser.add_argument("--app", choices=("scalapack", "gridnpb", "none"),
                        default="scalapack")
    parser.add_argument("--intensity",
                        choices=("light", "moderate", "heavy"), default=None)
    parser.add_argument("--approaches", default="top,place,profile",
                        help="comma-separated subset of top,place,profile")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=None,
                        help="override the workload duration (seconds)")
    parser.add_argument("--engine", choices=("seq", "par"), default="seq",
                        help="evaluation-emulation engine: seq = batched "
                        "sequential kernel, par = one logical process per "
                        "engine node (bit-identical traces)")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (reuses routing "
                        "tables and emulation runs across invocations)")
    parser.add_argument("-o", "--output", help="write JSON here")


#: CLI engine spellings → RunnerConfig / run_kernel engine names.
_ENGINES = {"seq": "sequential", "par": "parallel"}


def _cmd_emulate(parser: argparse.ArgumentParser, args) -> int:
    from repro.experiments.runner import (
        RunnerConfig,
        evaluate_setup,
        evaluate_workload,
    )
    from repro.experiments.setups import (
        brite_setup,
        campus_setup,
        teragrid_setup,
    )
    from repro.runtime.cache import resolve_cache

    cache = resolve_cache(args.cache_dir)
    config = RunnerConfig(engine=_ENGINES[args.engine])
    approaches = tuple(
        a.strip() for a in args.approaches.split(",") if a.strip()
    )
    if args.network or args.spec:
        from repro.experiments.workloads import build_workload
        from repro.topology import dml
        from repro.traffic.spec import parse_spec

        if args.network:
            if args.parts is None:
                parser.error("-k/--parts is required with --network")
            net = dml.load(args.network)
            k = args.parts
        else:
            factory = {"campus": campus_setup, "teragrid": teragrid_setup,
                       "brite": brite_setup}[args.topology]
            setup = factory(args.app)
            net = setup.network
            k = args.parts or setup.n_engine_nodes
        if args.spec:
            with open(args.spec, "r", encoding="utf-8") as handle:
                workload = parse_spec(handle.read(), net, seed=args.seed)
        else:
            wl_kwargs = {}
            if args.intensity:
                wl_kwargs["intensity"] = args.intensity
            if args.duration:
                wl_kwargs["duration"] = args.duration
            workload = build_workload(net, args.app, seed=args.seed,
                                      **wl_kwargs)
        results = evaluate_workload(net, workload, k,
                                    approaches=approaches, seed=args.seed,
                                    config=config, cache=cache)
        described = f"{net.summary()} on {k} engine nodes"
    else:
        factory = {"campus": campus_setup, "teragrid": teragrid_setup,
                   "brite": brite_setup}[args.topology]
        kwargs: dict = {}
        if args.intensity:
            kwargs["intensity"] = args.intensity
        if args.duration:
            kwargs["workload_kwargs"] = {"duration": args.duration}
        setup = factory(args.app, **kwargs)
        results = evaluate_setup(setup, approaches=approaches,
                                 seed=args.seed, config=config, cache=cache)
        described = setup.describe()

    payload = {
        "setup": described,
        "seed": args.seed,
        "engine": _ENGINES[args.engine],
        "approaches": {
            name: {
                "load_imbalance": ev.outcome.load_imbalance,
                "app_emulation_time_s": ev.outcome.app_emulation_time,
                "network_emulation_time_s":
                    ev.outcome.network_emulation_time,
                "lookahead_ms": ev.outcome.lookahead * 1e3,
                "remote_packets": ev.outcome.remote_packets,
                "weighted_edge_cut": ev.outcome.edge_cut,
            }
            for name, ev in results.items()
        },
    }
    text = json.dumps(payload, indent=2) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0


# --------------------------------------------------------------------- #
# massf netflow
# --------------------------------------------------------------------- #
def _configure_netflow(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dump_dir", help="directory of router_*.flow files")
    parser.add_argument("--top", type=int, default=10,
                        help="rows per ranking")


def _cmd_netflow(parser: argparse.ArgumentParser, args) -> int:
    from repro.profiling.dump import load_dump_dir

    records = load_dump_dir(args.dump_dir)
    if not records:
        print(f"no NetFlow records under {args.dump_dir}", file=sys.stderr)
        return 1

    by_router: dict[int, int] = {}
    by_link: dict[int, int] = {}
    by_pair: dict[tuple[int, int], int] = {}
    for r in records:
        by_router[r.router] = by_router.get(r.router, 0) + r.packets
        by_link[r.out_link] = by_link.get(r.out_link, 0) + r.packets
        key = (r.src, r.dst)
        by_pair[key] = by_pair.get(key, 0) + r.packets

    total = sum(by_router.values())
    span = max(r.last for r in records) - min(r.first for r in records)
    print(f"{len(records)} records, {total} router-packets, "
          f"{span:.1f}s span")
    print("\ntop routers (packets forwarded):")
    for router, pkts in sorted(by_router.items(), key=lambda kv: -kv[1])[
        : args.top
    ]:
        print(f"  router {router:5d}  {pkts:12d}  {pkts / total:6.1%}")
    print("\ntop links (packets carried):")
    for link, pkts in sorted(by_link.items(), key=lambda kv: -kv[1])[
        : args.top
    ]:
        print(f"  link {link:7d}  {pkts:12d}")
    print("\ntop flows (src -> dst):")
    for (src, dst), pkts in sorted(by_pair.items(), key=lambda kv: -kv[1])[
        : args.top
    ]:
        print(f"  {src:5d} -> {dst:5d}  {pkts:12d}")
    return 0


# --------------------------------------------------------------------- #
# massf sweep
# --------------------------------------------------------------------- #
def _configure_sweep(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology",
                        choices=("campus", "teragrid", "brite",
                                 "brite-large"),
                        default="campus")
    parser.add_argument("--app", choices=("scalapack", "gridnpb", "none"),
                        default="scalapack")
    parser.add_argument("--intensity",
                        choices=("light", "moderate", "heavy"), default=None)
    parser.add_argument("--duration", type=float, default=None,
                        help="override the workload duration (seconds)")
    parser.add_argument("--seeds", default="1,2,3,4",
                        help="comma-separated seed list")
    parser.add_argument("--approaches", default="top,place,profile",
                        help="comma-separated subset of top,place,profile")
    parser.add_argument("-k", "--parts", type=int, default=None,
                        help="engine-node count override")
    parser.add_argument("-j", "--workers", type=int, default=None,
                        help="worker processes (default: auto; 0 = serial "
                        "in-process)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-cell soft timeout in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="retries for crashed / timed-out cells")
    parser.add_argument("--group", choices=("run", "cell"), default="run",
                        help="task granularity: one task per (setup, seed) "
                        "sharing the evaluation emulation, or one per cell")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (default: "
                        "$MASSF_CACHE_DIR or .massf-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the artifact cache")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    parser.add_argument("--stats", metavar="PATH",
                        help="collect runtime telemetry and write the JSON "
                        "snapshot here (render it with `massf stats`)")
    parser.add_argument("-o", "--output", help="write JSON here")


def _cmd_sweep(parser: argparse.ArgumentParser, args) -> int:
    from repro.api import sweep
    from repro.runtime.cache import resolve_cache
    from repro.runtime.executor import RuntimeConfig

    try:
        seeds = tuple(
            int(s) for s in args.seeds.split(",") if s.strip()
        )
    except ValueError:
        parser.error(f"bad --seeds value {args.seeds!r}")
    if not seeds:
        parser.error("--seeds must name at least one seed")
    approaches = tuple(
        a.strip() for a in args.approaches.split(",") if a.strip()
    )
    cache = None if args.no_cache else resolve_cache(
        args.cache_dir if args.cache_dir else "default"
    )
    runtime = RuntimeConfig(
        workers=args.workers, timeout_s=args.timeout,
        retries=args.retries, group=args.group,
    )
    telemetry = None
    if args.stats:
        from repro.obs import Telemetry

        telemetry = Telemetry()

    def progress(cell, done, total):
        status = "ok" if cell.ok else "FAILED"
        print(
            f"[{done:3d}/{total}] {cell.setup_name}/{cell.app_name} "
            f"seed={cell.seed} {cell.approach:8s} {status} "
            f"({cell.duration_s:.1f}s)",
            file=sys.stderr,
        )

    try:
        result = sweep(
            args.topology, seeds=seeds, app=args.app, k=args.parts,
            approaches=approaches, intensity=args.intensity,
            duration=args.duration, runtime=runtime, cache=cache,
            progress=None if args.quiet else progress,
            telemetry=telemetry,
        )
    except RuntimeError as exc:
        if telemetry is not None:
            # A partial snapshot is still useful for diagnosing the failure.
            from repro.obs import write_json

            write_json(telemetry, args.stats)
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1

    print(result.render())
    if cache is not None:
        print(cache.stats.summary(), file=sys.stderr)
    if telemetry is not None:
        from repro.obs import write_json

        write_json(telemetry, args.stats)
        print(f"telemetry written to {args.stats} "
              f"(render with `massf stats {args.stats}`)", file=sys.stderr)

    if args.output:
        payload = {
            "setup": result.setup_name,
            "seeds": list(result.seeds),
            "metrics": {
                metric: {
                    name: {"mean": st.mean, "std": st.std,
                           "min": st.min, "max": st.max,
                           "values": list(st.values)}
                    for name, st in getattr(result, metric).items()
                }
                for metric in ("imbalance", "app_time", "network_time")
            },
            "cache": None if cache is None else {
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "hit_rate": cache.stats.hit_rate,
            },
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2) + "\n")
    return 0


# --------------------------------------------------------------------- #
# massf bench
# --------------------------------------------------------------------- #
def _configure_bench(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("what",
                        choices=("partition", "routing", "place", "emulate",
                                 "rebalance", "delta", "service"),
                        help="benchmark suite to run")
    parser.add_argument("--sizes", default="1000,2000,5000",
                        help="comma-separated router counts for the "
                        "synthetic hierarchical topology")
    parser.add_argument("--algorithms", default="multilevel,recursive",
                        help="comma-separated partitioning algorithms "
                        "(partition suite)")
    parser.add_argument("-k", "--parts", type=int, default=16,
                        help="number of parts (engine nodes)")
    parser.add_argument("--tolerance", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for both the generator and the "
                        "partitioners")
    parser.add_argument("--hosts-per-router", type=float, default=1.0)
    parser.add_argument("--metric", default="latency",
                        help="routing metric (routing / place suites)")
    parser.add_argument("--hosts", type=int, default=200,
                        help="foreground endpoints for the place suite "
                        "(all-to-all over the first N hosts)")
    parser.add_argument("--workers", type=int, default=0,
                        help="route-block worker processes for the place "
                        "suite (0 = inline)")
    parser.add_argument("--no-representatives", action="store_true",
                        help="disable the representative-endpoint "
                        "traceroute optimization (place suite)")
    parser.add_argument("--flows", type=int, default=None,
                        help="synthetic transfers per run (default: 4000 "
                        "for the emulate suite, 600 for rebalance)")
    parser.add_argument("--duration", type=float, default=None,
                        help="virtual horizon in seconds (default: 2.0 "
                        "for the emulate suite, 6.0 for rebalance)")
    parser.add_argument("--train-packets", type=int, default=32,
                        help="packets per train (emulate suite)")
    parser.add_argument("--engines", default="reference,sequential,parallel",
                        help="comma-separated subset of reference, "
                        "sequential, parallel (emulate suite)")
    parser.add_argument("--policies",
                        default="static,hysteresis,kurve,rsz",
                        help="comma-separated rebalancing policies "
                        "(rebalance suite)")
    parser.add_argument("--regions", type=int, default=3,
                        help="regions (= LPs) in the diurnal scenario "
                        "(rebalance suite)")
    parser.add_argument("--batch-sizes", default="1,4,16",
                        help="comma-separated change-batch sizes "
                        "(delta suite)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the incremental/warm path beats "
                        "the cold baseline by this factor (delta and "
                        "service suites)")
    parser.add_argument("--routers", type=int, default=1000,
                        help="router count for the service suite topology")
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per phase in the service suite "
                        "mixed map/sweep batch")
    parser.add_argument("--service-workers", type=int, default=2,
                        help="service worker threads (service suite)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="client-side wait timeout per phase in "
                        "seconds (service suite)")
    parser.add_argument("--budget", type=float, default=None,
                        help="per-run wall-time budget in seconds; exceeding "
                        "it fails the command (CI smoke guard)")
    parser.add_argument("--stats", metavar="PATH",
                        help="write a telemetry JSON snapshot here "
                        "(render with `massf stats`)")
    parser.add_argument("--json", action="store_true",
                        help="write the result rows to BENCH_<suite>.json "
                        "in the working directory (CI artifact)")
    parser.add_argument("-o", "--output", help="write the result rows as "
                        "JSON here")


def _bench_sizes(parser: argparse.ArgumentParser, args) -> list[int]:
    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        parser.error(f"bad --sizes value {args.sizes!r}")
    if not sizes:
        parser.error("--sizes must name at least one router count")
    return sizes


def _bench_net(parser: argparse.ArgumentParser, args, n: int):
    from repro.topology.synth import SynthError, synth_network

    try:
        return synth_network(
            n_routers=n, hosts_per_router=args.hosts_per_router,
            seed=args.seed,
        )
    except SynthError as exc:
        parser.error(f"cannot generate n_routers={n}: {exc}")


def _bench_partition(parser, args, telemetry) -> tuple[list[dict], list[str]]:
    import time

    from repro.core.graphbuild import network_csr
    from repro.partition.api import part_graph, resolve_algorithm

    try:
        algorithms = [
            resolve_algorithm(a)
            for a in args.algorithms.split(",")
            if a.strip()
        ]
    except ValueError as exc:
        parser.error(str(exc))
    if not algorithms:
        parser.error("--algorithms must name at least one algorithm")

    rows: list[dict] = []
    over_budget: list[str] = []
    print(f"{'routers':>8s} {'algorithm':<12s} {'wall_s':>8s} "
          f"{'cut':>12s} {'imbalance':>9s}")
    for n in _bench_sizes(parser, args):
        with telemetry.span(f"bench/generate/n{n}"):
            net = _bench_net(parser, args, n)
            graph, _ = network_csr(net)
        telemetry.count("bench.vertices", graph.n)
        for algo in algorithms:
            start = time.perf_counter()
            with telemetry.span(f"bench/partition/n{n}/{algo}"):
                result = part_graph(
                    graph, args.parts, algorithm=algo,
                    tolerance=args.tolerance, seed=args.seed,
                    telemetry=telemetry,
                )
            wall = time.perf_counter() - start
            telemetry.count("bench.runs")
            telemetry.gauge(f"bench.wall_s.n{n}.{algo}", wall)
            row = {
                "n_routers": n,
                "n_vertices": graph.n,
                "algorithm": algo,
                "k": args.parts,
                "wall_s": wall,
                "weighted_cut": result.weighted_cut,
                "edge_cut": result.edge_cut,
                "max_imbalance": result.max_imbalance,
            }
            rows.append(row)
            print(f"{n:8d} {algo:<12s} {wall:8.2f} "
                  f"{result.weighted_cut:12.4g} {result.max_imbalance:9.3f}")
            if args.budget is not None and wall > args.budget:
                over_budget.append(
                    f"n={n} {algo}: {wall:.2f}s > budget {args.budget:.2f}s"
                )
    return rows, over_budget


def _bench_routing(parser, args, telemetry) -> tuple[list[dict], list[str]]:
    import time

    from repro.routing.perf import RoutingStats
    from repro.routing.spf import build_routing
    from repro.routing.tables import METRICS

    if args.metric not in METRICS:
        parser.error(f"unknown metric {args.metric!r}; "
                     f"choose from {METRICS}")
    rows: list[dict] = []
    over_budget: list[str] = []
    print(f"{'routers':>8s} {'nodes':>8s} {'metric':<14s} {'wall_s':>8s} "
          f"{'dijkstra':>9s} {'nh_rounds':>9s}")
    for n in _bench_sizes(parser, args):
        with telemetry.span(f"bench/generate/n{n}"):
            net = _bench_net(parser, args, n)
        stats = RoutingStats()
        start = time.perf_counter()
        build_routing(
            net, args.metric, telemetry=telemetry, stats=stats
        )
        wall = time.perf_counter() - start
        telemetry.count("bench.runs")
        telemetry.gauge(f"bench.routing_wall_s.n{n}", wall)
        row = {
            "n_routers": n,
            "n_nodes": net.n_nodes,
            "metric": args.metric,
            "wall_s": wall,
            "dijkstra_calls": stats.dijkstra_calls,
            "nexthop_rounds": stats.nexthop_rounds,
        }
        rows.append(row)
        print(f"{n:8d} {net.n_nodes:8d} {args.metric:<14s} {wall:8.2f} "
              f"{stats.dijkstra_calls:9d} {stats.nexthop_rounds:9d}")
        if args.budget is not None and wall > args.budget:
            over_budget.append(
                f"n={n}: {wall:.2f}s > budget {args.budget:.2f}s"
            )
    return rows, over_budget


class _BenchApp:
    """Minimal all-to-all foreground app for the place benchmark."""

    name = "bench-all-to-all"

    def __init__(self, endpoints: list[int]) -> None:
        self.endpoints = list(endpoints)

    duration = 0.0

    def offered_bytes(self):
        return None


def _bench_place(parser, args, telemetry) -> tuple[list[dict], list[str]]:
    import time

    from repro.core.place import build_place_inputs
    from repro.routing.spf import build_routing
    from repro.routing.tables import METRICS

    if args.metric not in METRICS:
        parser.error(f"unknown metric {args.metric!r}; "
                     f"choose from {METRICS}")
    if args.hosts < 2:
        parser.error("--hosts must be >= 2")
    rows: list[dict] = []
    over_budget: list[str] = []
    print(f"{'routers':>8s} {'nodes':>8s} {'hosts':>6s} {'pairs':>9s} "
          f"{'wall_s':>8s} {'routes':>8s}")
    for n in _bench_sizes(parser, args):
        with telemetry.span(f"bench/generate/n{n}"):
            net = _bench_net(parser, args, n)
        hosts = [h.node_id for h in net.hosts()][: args.hosts]
        if len(hosts) < 2:
            parser.error(
                f"n_routers={n} with --hosts-per-router "
                f"{args.hosts_per_router} yields {len(hosts)} hosts; "
                "the place suite needs at least 2"
            )
        with telemetry.span(f"bench/routing/n{n}"):
            tables = build_routing(net, args.metric, telemetry=telemetry)
        app = _BenchApp(hosts)
        start = time.perf_counter()
        inputs = build_place_inputs(
            net, tables, background=[], apps=[app],
            use_representatives=not args.no_representatives,
            workers=args.workers, telemetry=telemetry,
        )
        wall = time.perf_counter() - start
        telemetry.count("bench.runs")
        telemetry.gauge(f"bench.place_wall_s.n{n}", wall)
        n_pairs = len(hosts) * (len(hosts) - 1)
        row = {
            "n_routers": n,
            "n_nodes": net.n_nodes,
            "n_hosts": len(hosts),
            "n_pairs": n_pairs,
            "metric": args.metric,
            "workers": args.workers,
            "use_representatives": not args.no_representatives,
            "wall_s": wall,
            "n_routes": inputs.estimate.n_routes,
        }
        rows.append(row)
        print(f"{n:8d} {net.n_nodes:8d} {len(hosts):6d} {n_pairs:9d} "
              f"{wall:8.2f} {inputs.estimate.n_routes:8d}")
        if args.budget is not None and wall > args.budget:
            over_budget.append(
                f"n={n}: {wall:.2f}s > budget {args.budget:.2f}s"
            )
    return rows, over_budget


def _bench_emulate(parser, args, telemetry) -> tuple[list[dict], list[str]]:
    """Engine throughput: reference vs batched vs multi-process LPs.

    One synthetic transfer soup per topology size, replayed through each
    requested engine.  All engines must produce byte-identical traces —
    a mismatch fails the command (the parity contract, enforced here too
    so CI smoke catches drift on big inputs the unit suite never sees).
    """
    import time

    import numpy as np

    from repro.api import emulate
    from repro.engine._reference import run_kernel_reference
    from repro.experiments.workloads import SyntheticTransfers
    from repro.routing.spf import build_routing

    engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    known = ("reference", "sequential", "parallel")
    bad = [e for e in engines if e not in known]
    if bad or not engines:
        parser.error(
            f"--engines must be a non-empty subset of {', '.join(known)}"
        )
    n_flows = args.flows if args.flows is not None else 4000
    duration = args.duration if args.duration is not None else 2.0

    rows: list[dict] = []
    over_budget: list[str] = []
    print(f"{'routers':>8s} {'engine':<12s} {'wall_s':>8s} {'events':>10s} "
          f"{'events/s':>10s} {'speedup':>8s} {'lp_imbal':>8s}")
    for n in _bench_sizes(parser, args):
        with telemetry.span(f"bench/generate/n{n}"):
            net = _bench_net(parser, args, n)
            tables = build_routing(net)
        workload = SyntheticTransfers(
            n_flows=n_flows, duration=duration,
        )
        workload.prepare(net, np.random.default_rng(args.seed))
        ref_wall = None
        baseline: tuple | None = None
        for engine in engines:
            with telemetry.span(f"bench/emulate/n{n}/{engine}"):
                if engine == "reference":
                    start = time.perf_counter()
                    trace, kernel = run_kernel_reference(
                        net, tables, workload, seed=args.seed,
                        train_packets=args.train_packets,
                    )
                    wall = time.perf_counter() - start
                    ref_wall = wall
                    lp_imbalance = None
                else:
                    result = emulate(
                        net, tables, workload, seed=args.seed,
                        train_packets=args.train_packets, engine=engine,
                        k=args.parts if engine == "parallel" else None,
                    )
                    trace, wall = result.trace, result.wall_s
                    lp_imbalance = (
                        result.lp_imbalance
                        if engine == "parallel" else None
                    )
            if baseline is None:
                baseline = tuple(
                    getattr(trace, f)
                    for f in ("time", "node", "next_node", "packets",
                              "flow", "span")
                )
            elif not all(
                np.array_equal(a, getattr(trace, f))
                for a, f in zip(baseline, ("time", "node", "next_node",
                                           "packets", "flow", "span"))
            ):
                parser.error(
                    f"engine {engine!r} produced a different trace than "
                    f"{engines[0]!r} on n_routers={n} — the engines' "
                    "bit-identity contract is broken"
                )
            speedup = ref_wall / wall if ref_wall and wall > 0 else None
            telemetry.count("bench.runs")
            telemetry.gauge(f"bench.wall_s.n{n}.{engine}", wall)
            rows.append({
                "n_routers": n,
                "n_hosts": len(net.hosts()),
                "engine": engine,
                "k": args.parts if engine == "parallel" else 1,
                "flows": n_flows,
                "train_packets": args.train_packets,
                "duration_s": duration,
                "events": trace.n_events,
                "wall_s": wall,
                "events_per_s": trace.n_events / wall if wall > 0 else None,
                "speedup_vs_reference": speedup,
                "lp_imbalance": lp_imbalance,
            })
            print(f"{n:8d} {engine:<12s} {wall:8.2f} {trace.n_events:10d} "
                  f"{trace.n_events / wall if wall > 0 else 0:10.0f} "
                  f"{speedup if speedup else float('nan'):8.2f} "
                  f"{lp_imbalance if lp_imbalance else float('nan'):8.2f}")
            if args.budget is not None and wall > args.budget:
                over_budget.append(
                    f"n={n} {engine}: {wall:.2f}s > budget "
                    f"{args.budget:.2f}s"
                )
    return rows, over_budget


def _bench_rebalance(parser, args, telemetry) -> tuple[list[dict], list[str]]:
    """Online rebalancing on the diurnal-shift scenario, per policy.

    A rotating hot region defeats the static region-per-LP partition; the
    online policies migrate routers at window barriers to chase it.  The
    score is the imbalance-over-time AUC (lower = better), plus migration
    counts, payload bytes and the post-shift recovery time.  All policies
    must produce byte-identical traces — migration is state relocation,
    not behaviour — and every online policy must beat the static AUC; a
    violation fails the command.
    """
    import time

    import numpy as np

    from repro.engine.kernel import run_kernel
    from repro.experiments.setups import diurnal_scenario
    from repro.rebalance import POLICIES, RebalanceConfig
    from repro.routing.spf import build_routing

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    bad = [p for p in policies if p not in POLICIES]
    if bad or not policies:
        parser.error(
            f"--policies must be a non-empty subset of "
            f"{', '.join(sorted(POLICIES))}"
        )
    n_flows = args.flows if args.flows is not None else 600
    duration = args.duration if args.duration is not None else 6.0

    scenario = diurnal_scenario(
        n_regions=args.regions, n_flows=n_flows,
        duration=duration, seed=args.seed,
    )
    with telemetry.span("bench/rebalance/routing"):
        tables = build_routing(scenario.net)
    shift = scenario.shift_times[0] if scenario.shift_times else 0.0

    rows: list[dict] = []
    over_budget: list[str] = []
    baseline: tuple | None = None
    static_auc: float | None = None
    print(f"{'policy':<12s} {'auc':>8s} {'migr':>5s} {'routers':>8s} "
          f"{'bytes':>8s} {'ttr_s':>7s} {'wall_s':>7s}")
    for policy in policies:
        start = time.perf_counter()
        with telemetry.span(f"bench/rebalance/{policy}"):
            trace, kernel = run_kernel(
                scenario.net, tables, scenario.workload, seed=args.seed,
                train_packets=args.train_packets, engine="parallel",
                parts=scenario.parts, processes=False,
                rebalance=RebalanceConfig(policy=policy),
                telemetry=telemetry,
            )
        wall = time.perf_counter() - start
        fields = ("time", "node", "next_node", "packets", "flow", "span")
        if baseline is None:
            baseline = tuple(getattr(trace, f) for f in fields)
        elif not all(
            np.array_equal(a, getattr(trace, f))
            for a, f in zip(baseline, fields)
        ):
            parser.error(
                f"policy {policy!r} changed the event trace — migration "
                "must be pure state relocation"
            )
        log = kernel.rebalancer.log
        ttr = log.time_to_rebalance(shift, 0.5)
        if policy == "static":
            static_auc = log.auc()
        telemetry.count("bench.runs")
        telemetry.gauge(f"bench.rebalance_auc.{policy}", log.auc())
        rows.append({
            "policy": policy,
            "k": scenario.k,
            "flows": n_flows,
            "duration_s": duration,
            "auc": log.auc(),
            "migration_count": log.migration_count,
            "routers_moved": log.routers_moved,
            "bytes_moved": log.bytes_moved,
            "time_to_rebalance_s": None if np.isinf(ttr) else ttr,
            "events": trace.n_events,
            "wall_s": wall,
        })
        print(f"{policy:<12s} {log.auc():8.3f} {log.migration_count:5d} "
              f"{log.routers_moved:8d} {log.bytes_moved:8d} "
              f"{ttr:7.2f} {wall:7.2f}")
        if args.budget is not None and wall > args.budget:
            over_budget.append(
                f"{policy}: {wall:.2f}s > budget {args.budget:.2f}s"
            )
    if static_auc is not None:
        losers = [
            r["policy"] for r in rows
            if r["policy"] != "static" and r["auc"] >= static_auc
        ]
        if losers:
            parser.error(
                f"online policies {', '.join(losers)} did not beat the "
                f"static AUC ({static_auc:.3f}) on the diurnal scenario"
            )
    return rows, over_budget


def _bench_delta(parser, args, telemetry) -> tuple[list[dict], list[str]]:
    """Full SPF rebuild vs incremental update, per change-batch size.

    For each topology size the suite builds routing once, then — per
    batch size — applies a latency-shift batch both ways: a from-scratch
    ``build_routing`` on the mutated network (the paper's only option)
    and :func:`repro.routing.delta.update_routing` on a live
    :class:`~repro.routing.delta.RoutingState`.  Bit-identity between
    the two and ``touched == affected`` are *enforced*, not sampled;
    ``--min-speedup`` turns the single-link speedup into a hard gate and
    ``--budget`` bounds the incremental wall time (CI smoke guard).
    Every batch is reverted afterwards, so each size's state sees the
    same starting tables.
    """
    import time

    import numpy as np

    from repro.routing.delta import (
        SetLinkCost,
        routing_state,
        update_routing,
    )
    from repro.routing.perf import RoutingStats
    from repro.routing.spf import build_routing
    from repro.routing.tables import METRICS

    if args.metric not in METRICS:
        parser.error(f"unknown metric {args.metric!r}; "
                     f"choose from {METRICS}")
    try:
        batch_sizes = [
            int(s) for s in args.batch_sizes.split(",") if s.strip()
        ]
    except ValueError:
        parser.error(f"bad --batch-sizes value {args.batch_sizes!r}")
    if not batch_sizes or min(batch_sizes) < 1:
        parser.error("--batch-sizes must name positive batch sizes")

    rows: list[dict] = []
    over_budget: list[str] = []
    print(f"{'routers':>8s} {'batch':>6s} {'full_s':>8s} {'incr_s':>8s} "
          f"{'speedup':>8s} {'touched':>8s} {'frac':>6s}")
    for n in _bench_sizes(parser, args):
        with telemetry.span(f"bench/generate/n{n}"):
            net = _bench_net(parser, args, n)
        with telemetry.span(f"bench/delta/build/n{n}"):
            tables = build_routing(net, args.metric, telemetry=telemetry)
        state = routing_state(tables)
        fp0 = net.fingerprint()
        # Rank candidate links by blast radius (the affected-source
        # predicate over the current dist matrix): backbone trunks and
        # host access links sit on most sources' shortest paths and
        # degenerate to a near-full recompute, links with path diversity
        # touch a handful of rows.  The suite changes low-radius links —
        # the regime incremental maintenance exists for — and reports
        # the touched fraction per row so the dependence stays visible.
        u_arr, v_arr, _, _ = net.link_endpoint_arrays()
        n_probe = min(net.n_links, 128)
        probe = np.unique(
            (np.arange(n_probe, dtype=np.int64) * net.n_links) // n_probe
        )
        pa, pb = u_arr[probe], v_arr[probe]
        costs = np.asarray(state.graph[pa, pb]).ravel()
        da, db = state.tables.dist[:, pa], state.tables.dist[:, pb]
        blast = (
            (((da + costs) <= db) & np.isfinite(da))
            | (((db + costs) <= da) & np.isfinite(db))
        )
        ranked = probe[np.argsort(blast.sum(axis=0), kind="stable")]
        for batch in batch_sizes:
            lids = sorted(int(lid) for lid in ranked[:batch])
            before = {
                lid: net.links[lid].latency_s for lid in lids
            }
            changes = [
                SetLinkCost(lid, latency_s=lat * 3.0)
                for lid, lat in before.items()
            ]
            stats = RoutingStats()
            start = time.perf_counter()
            with telemetry.span(f"bench/delta/incr/n{n}/b{batch}"):
                touched = update_routing(
                    state, changes, stats=stats, telemetry=telemetry,
                )
            inc_wall = time.perf_counter() - start
            start = time.perf_counter()
            with telemetry.span(f"bench/delta/full/n{n}/b{batch}"):
                fresh = build_routing(net, args.metric)
            full_wall = time.perf_counter() - start
            if not (np.array_equal(state.tables.dist, fresh.dist)
                    and np.array_equal(state.tables.next_hop,
                                       fresh.next_hop)):
                parser.error(
                    f"incremental tables diverged from the full rebuild "
                    f"(n={n}, batch={batch})"
                )
            if stats.touched_sources != stats.affected_sources:
                parser.error(
                    f"touched_sources {stats.touched_sources} != "
                    f"affected_sources {stats.affected_sources} "
                    f"(n={n}, batch={batch})"
                )
            speedup = full_wall / inc_wall if inc_wall > 0 else float("inf")
            telemetry.count("bench.runs")
            telemetry.gauge(f"bench.delta_speedup.n{n}.b{batch}", speedup)
            row = {
                "n_routers": n,
                "n_nodes": net.n_nodes,
                "metric": args.metric,
                "batch_size": len(changes),
                "full_wall_s": full_wall,
                "incremental_wall_s": inc_wall,
                "speedup": speedup,
                "touched_sources": int(len(touched)),
                "touched_frac": float(len(touched)) / net.n_nodes,
            }
            rows.append(row)
            print(f"{n:8d} {len(changes):6d} {full_wall:8.3f} "
                  f"{inc_wall:8.3f} {speedup:8.1f} {len(touched):8d} "
                  f"{row['touched_frac']:6.3f}")
            if args.budget is not None and inc_wall > args.budget:
                over_budget.append(
                    f"n={n} batch={batch}: incremental {inc_wall:.2f}s > "
                    f"budget {args.budget:.2f}s"
                )
            if (args.min_speedup is not None and len(changes) == 1
                    and speedup < args.min_speedup):
                over_budget.append(
                    f"n={n} single-link speedup {speedup:.1f}x < required "
                    f"{args.min_speedup:.1f}x"
                )
            # Revert so the next batch size starts from the same tables.
            update_routing(state, [
                SetLinkCost(lid, latency_s=lat)
                for lid, lat in before.items()
            ])
            if net.fingerprint() != fp0:
                parser.error(
                    f"revert failed to restore the topology fingerprint "
                    f"(n={n}, batch={batch})"
                )
    return rows, over_budget


def _bench_service(parser, args, telemetry) -> tuple[list[dict], list[str]]:
    from repro.service.bench import bench_service

    try:
        rows, over_budget = bench_service(
            n_routers=args.routers,
            batch=args.requests,
            service_workers=args.service_workers,
            seed=args.seed,
            duration=args.duration if args.duration is not None else 1.0,
            hosts_per_router=args.hosts_per_router,
            timeout=args.timeout,
            min_speedup=args.min_speedup,
            budget=args.budget,
            telemetry=telemetry,
        )
    except (RuntimeError, TimeoutError) as exc:
        parser.error(f"service bench failed: {exc}")

    print(f"{'phase':<8s} {'req':>4s} {'wall_s':>8s} {'req/s':>8s} "
          f"{'p50_s':>8s} {'p95_s':>8s} {'warm':>5s}")
    for row in rows:
        if row["phase"] == "summary":
            continue
        print(f"{row['phase']:<8s} {row['n_requests']:>4d} "
              f"{row['wall_s']:>8.2f} {row['throughput_rps']:>8.2f} "
              f"{row['p50_s']:>8.3f} {row['p95_s']:>8.3f} "
              f"{row['warm_hits']:>5d}")
    summary = rows[-1]
    print(f"speedup {summary['speedup']:.2f}x  "
          f"warm_hit_rate {summary['warm_hit_rate']:.2f}  "
          f"delta_derives {summary['delta_derives']}  "
          f"cold_builds {summary['cold_builds']}")
    return rows, over_budget


_BENCH_SUITES = {
    "partition": _bench_partition,
    "routing": _bench_routing,
    "place": _bench_place,
    "emulate": _bench_emulate,
    "rebalance": _bench_rebalance,
    "delta": _bench_delta,
    "service": _bench_service,
}


def _cmd_bench(parser: argparse.ArgumentParser, args) -> int:
    from repro.obs import Telemetry, write_json

    telemetry = Telemetry()
    rows, over_budget = _BENCH_SUITES[args.what](parser, args, telemetry)

    if args.stats:
        write_json(telemetry, args.stats)
        print(f"telemetry written to {args.stats} "
              f"(render with `massf stats {args.stats}`)", file=sys.stderr)
    payload = json.dumps(rows, indent=2) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload)
    if args.json:
        path = f"BENCH_{args.what}.json"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"rows written to {path}", file=sys.stderr)
    if over_budget:
        for line in over_budget:
            print(f"BUDGET EXCEEDED: {line}", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------- #
# massf stats
# --------------------------------------------------------------------- #
def _configure_stats(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("snapshot",
                        help="telemetry JSON written by "
                        "`massf sweep --stats`")
    parser.add_argument("--section",
                        choices=("all", "phases", "counters", "timeline"),
                        default="all", help="render one section only")
    parser.add_argument("--csv", metavar="DIR",
                        help="additionally export spans/counters/series "
                        "as CSV files under this directory")


def _cmd_stats(parser: argparse.ArgumentParser, args) -> int:
    from repro.obs import load_json, render_report, write_csv_dir
    from repro.obs.report import phase_breakdown, timeline_report
    from repro.obs.telemetry import SCHEMA_VERSION

    try:
        data = load_json(args.snapshot)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read {args.snapshot}: {exc}", file=sys.stderr)
        return 1
    schema = data.get("schema")
    if schema is not None and schema > SCHEMA_VERSION:
        print(
            f"warning: snapshot schema v{schema} is newer than this "
            f"massf (v{SCHEMA_VERSION}); rendering best-effort",
            file=sys.stderr,
        )

    if args.section == "phases":
        print(phase_breakdown(data))
    elif args.section == "timeline":
        print(timeline_report(data))
    elif args.section == "counters":
        from repro.obs.report import _counter_section

        print(_counter_section(data))
    else:
        print(render_report(data))

    if args.csv:
        written = write_csv_dir(data, args.csv)
        print(f"wrote {len(written)} CSV files under {args.csv}",
              file=sys.stderr)
    return 0


# --------------------------------------------------------------------- #
# massf check
# --------------------------------------------------------------------- #
def _configure_check(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("root", nargs="?", default=None,
                        help="project root containing src/repro "
                        "(default: auto-detect from the working "
                        "directory or the installed package)")
    parser.add_argument("--rule", action="append", dest="rules",
                        metavar="ID",
                        help="run only this rule (repeatable)")
    parser.add_argument("--json", action="store_true",
                        help="print the findings report as JSON")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    parser.add_argument("--no-tests", action="store_true",
                        help="skip parsing the tests tree (disables "
                        "the parity test-evidence check)")
    parser.add_argument("-o", "--output", metavar="PATH",
                        help="additionally write the JSON findings "
                        "report here (written even when findings "
                        "exist, for CI artifacts)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="fan the per-file pass out over N forked "
                        "workers (0 = inline; findings are "
                        "bit-identical either way)")
    parser.add_argument("--sarif", metavar="PATH",
                        help="additionally write a SARIF 2.1.0 report "
                        "here (code-scanning upload format)")
    parser.add_argument("--strict-ignores", action="store_true",
                        help="also report stale `# massf: ignore[...]` "
                        "comments (the unused-ignore meta-rule)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-file result cache")
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="result cache directory (default: "
                        "$MASSF_CACHE_DIR or <root>/.massf-cache)")


def _cmd_check(parser: argparse.ArgumentParser, args) -> int:
    """Exit 0 on a clean tree, 2 on findings, 1 on internal error."""
    from repro.analysis import (
        AnalysisError,
        all_rules,
        render_json,
        render_sarif,
        render_text,
        run_check,
        to_payload,
    )

    if args.list_rules:
        for rule in all_rules():
            marker = "" if rule.enabled_by_default else "(opt-in) "
            print(f"{rule.id:18s} {marker}{rule.description}")
        return 0
    cache = False if args.no_cache else (args.cache_dir or True)
    try:
        result = run_check(
            args.root, rules=args.rules,
            include_tests=not args.no_tests,
            jobs=args.jobs, cache=cache,
            strict_ignores=args.strict_ignores,
        )
    except AnalysisError as exc:
        print(f"massf check: error: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # never a traceback to the user
        print(
            f"massf check: internal error: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(to_payload(result), indent=2) + "\n")
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(render_sarif(result) + "\n")
    print(render_json(result) if args.json else render_text(result))
    return 0 if result.ok else 2


# --------------------------------------------------------------------- #
# massf serve / submit / jobs (the mapping service)
# --------------------------------------------------------------------- #
def _configure_serve(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8351,
                        help="listen port (0 picks an ephemeral port)")
    parser.add_argument("--workers", type=int, default=2,
                        help="job worker threads")
    parser.add_argument("--queue-size", type=int, default=64,
                        help="bounded job queue depth; submissions past "
                        "it are rejected with HTTP 429")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (default: "
                        "$MASSF_CACHE_DIR or .massf-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk artifact cache")
    parser.add_argument("--budget-mb", type=int, default=512,
                        help="warm in-memory cache budget in MiB")
    parser.add_argument("--max-delta-changes", type=int, default=64,
                        help="max canonical link changes served by "
                        "routing delta-derivation instead of a rebuild")
    parser.add_argument("--default-timeout", type=float, default=None,
                        help="default per-job soft deadline in seconds")
    parser.add_argument("--pool-workers", type=int, default=0,
                        help="pmap pool size leased to jobs (0 = inline)")


def _cmd_serve(parser: argparse.ArgumentParser, args) -> int:
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        cache=None if args.no_cache else (args.cache_dir or "default"),
        budget_bytes=args.budget_mb * 1024 * 1024,
        max_delta_changes=args.max_delta_changes,
        default_timeout_s=args.default_timeout,
        pool_workers=args.pool_workers,
    )
    serve(config, log=lambda line: print(line, file=sys.stderr))
    return 0


def _configure_submit(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("request", nargs="?",
                        help="path to a JSON request document "
                        "(default: read it from stdin)")
    parser.add_argument("--url", default="http://127.0.0.1:8351",
                        help="service base URL")
    parser.add_argument("--timeout-s", type=float, default=None,
                        help="per-job soft deadline in seconds")
    parser.add_argument("--no-wait", action="store_true",
                        help="print the accepted job and return instead "
                        "of polling for the result")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="client-side wait timeout in seconds")


def _cmd_submit(parser: argparse.ArgumentParser, args) -> int:
    """Exit 0 on done, 1 on failed/cancelled, 3 on backpressure."""
    from repro.service import QueueFullError, ServiceError, connect

    try:
        if args.request:
            with open(args.request, encoding="utf-8") as handle:
                data = json.load(handle)
        else:
            data = json.load(sys.stdin)
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot read the request document: {exc}")
    if not isinstance(data, dict):
        parser.error("the request document must be a JSON object")

    client = connect(args.url, timeout=args.timeout)
    try:
        info = client.submit(data, timeout_s=args.timeout_s)
        if not args.no_wait:
            info = client.wait(info.job_id, timeout=args.timeout)
    except QueueFullError as exc:
        print(f"massf submit: rejected (backpressure): {exc}",
              file=sys.stderr)
        return 3
    except ServiceError as exc:
        print(f"massf submit: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError, TimeoutError) as exc:
        print(f"massf submit: cannot talk to {args.url}: {exc}",
              file=sys.stderr)
        return 1
    print(json.dumps(info.to_dict(), indent=2))
    return 0 if info.state in ("pending", "running", "done") else 1


def _configure_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("job_id", nargs="?",
                        help="show one job in full (default: list all)")
    parser.add_argument("--url", default="http://127.0.0.1:8351",
                        help="service base URL")
    parser.add_argument("--cancel", action="store_true",
                        help="cancel the given job")
    parser.add_argument("--status", action="store_true",
                        help="print the service status document")
    parser.add_argument("--metrics", action="store_true",
                        help="print the full telemetry snapshot")
    parser.add_argument("--watch", type=int, default=None, metavar="N",
                        help="stream N SSE telemetry events and exit")
    parser.add_argument("--timeout", type=float, default=30.0)


def _cmd_jobs(parser: argparse.ArgumentParser, args) -> int:
    from repro.service import ServiceError, connect

    if args.cancel and not args.job_id:
        parser.error("--cancel needs a job id")
    client = connect(args.url, timeout=args.timeout)
    try:
        if args.status:
            print(json.dumps(client.status(), indent=2))
        elif args.metrics:
            print(json.dumps(client.metrics(), indent=2))
        elif args.watch is not None:
            for event in client.events(args.watch, timeout=args.timeout):
                print(json.dumps(event))
        elif args.job_id and args.cancel:
            cancelled = client.cancel(args.job_id)
            print(json.dumps(
                {"job_id": args.job_id, "cancelled": cancelled}
            ))
        elif args.job_id:
            print(json.dumps(client.job(args.job_id).to_dict(), indent=2))
        else:
            infos = client.jobs()
            print(f"{'job':<10s} {'kind':<14s} {'state':<10s} "
                  f"{'warm':<5s} error")
            for info in infos:
                warm = "yes" if info.warm_hit else ""
                print(f"{info.job_id:<10s} {info.kind:<14s} "
                      f"{info.state:<10s} {warm:<5s} {info.error or ''}")
    except ServiceError as exc:
        print(f"massf jobs: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError, TimeoutError) as exc:
        print(f"massf jobs: cannot talk to {args.url}: {exc}",
              file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------- #
# Unified entry point + deprecation shims
# --------------------------------------------------------------------- #
_SUBCOMMANDS = {
    "map": (_configure_map, _cmd_map,
            "map a virtual network (DML file) onto engine nodes"),
    "emulate": (_configure_emulate, _cmd_emulate,
                "run one experiment setup end to end"),
    "netflow": (_configure_netflow, _cmd_netflow,
                "summarize a NetFlow dump directory"),
    "sweep": (_configure_sweep, _cmd_sweep,
              "sweep an experiment across seeds on the parallel runtime"),
    "stats": (_configure_stats, _cmd_stats,
              "render a telemetry snapshot (from `sweep --stats`)"),
    "bench": (_configure_bench, _cmd_bench,
              "benchmark partitioning on synthetic scale topologies"),
    "check": (_configure_check, _cmd_check,
              "run the repo's determinism / parity / parallel-safety "
              "static analysis (exit 0 clean, 2 findings, 1 error)"),
    "serve": (_configure_serve, _cmd_serve,
              "run the persistent mapping service (JSON over HTTP "
              "with warm shared caches)"),
    "submit": (_configure_submit, _cmd_submit,
               "submit a request document to a running service and "
               "wait for the result"),
    "jobs": (_configure_jobs, _cmd_jobs,
             "list / inspect / cancel service jobs; --status, "
             "--metrics, --watch for SSE events"),
}


def massf(argv: list[str] | None = None) -> int:
    """The unified ``massf`` console entry point."""
    parser = argparse.ArgumentParser(
        prog="massf",
        description="MaSSF traffic-based load balance toolkit "
        "(map / emulate / netflow / sweep).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (configure, run, help_text) in _SUBCOMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text,
                                    description=help_text)
        configure(sub)
        sub.set_defaults(_run=run, _parser=sub)
    args = parser.parse_args(argv)
    return args._run(args._parser, args)


def _deprecated_shim(old: str, command: str, argv: list[str] | None) -> int:
    print(
        f"{old} is deprecated; use `massf {command}` instead",
        file=sys.stderr,
    )
    if argv is None:
        argv = sys.argv[1:]
    return massf([command, *argv])


def massf_map(argv: list[str] | None = None) -> int:
    """Deprecated shim for ``massf map``."""
    return _deprecated_shim("massf-map", "map", argv)


def massf_emulate(argv: list[str] | None = None) -> int:
    """Deprecated shim for ``massf emulate``."""
    return _deprecated_shim("massf-emulate", "emulate", argv)


def massf_netflow(argv: list[str] | None = None) -> int:
    """Deprecated shim for ``massf netflow``."""
    return _deprecated_shim("massf-netflow", "netflow", argv)


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    sys.exit(massf())
