"""Command-line tools.

Three console entry points mirror how MaSSF's partitioner was used
operationally:

- ``massf-map`` — partition a network description (DML) file onto engine
  nodes with TOP, or with PROFILE when given a NetFlow dump directory.
- ``massf-emulate`` — run a built-in experiment (topology × application ×
  approach) end to end and print the §4.1.1 metrics as JSON.
- ``massf-netflow`` — summarize a NetFlow dump directory (top routers,
  links, flows).

All three are plain functions taking ``argv`` so tests can drive them
without subprocesses.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

__all__ = ["massf_map", "massf_emulate", "massf_netflow"]


# --------------------------------------------------------------------- #
# massf-map
# --------------------------------------------------------------------- #
def massf_map(argv: list[str] | None = None) -> int:
    """Partition a DML network file; print ``node_id part`` lines."""
    parser = argparse.ArgumentParser(
        prog="massf-map",
        description="Map a virtual network (DML file) onto emulation "
        "engine nodes.",
    )
    parser.add_argument("network", help="network description (DML) file")
    parser.add_argument("-k", "--parts", type=int, required=True,
                        help="number of engine nodes")
    parser.add_argument("--approach", choices=("top", "profile"),
                        default="top")
    parser.add_argument("--netflow-dir",
                        help="NetFlow dump directory (PROFILE only)")
    parser.add_argument("--duration", type=float, default=None,
                        help="profiled run duration in seconds "
                        "(PROFILE only; default: last record time)")
    parser.add_argument("--algorithm", default="multilevel")
    parser.add_argument("--tolerance", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--latency-priority", type=float, default=0.6)
    parser.add_argument("-o", "--output", help="write assignment here "
                        "instead of stdout")
    args = parser.parse_args(argv)

    from repro.core.mapper import Mapper, MapperConfig
    from repro.profiling.aggregate import ProfileData
    from repro.profiling.dump import load_dump_dir
    from repro.topology import dml

    net = dml.load(args.network)
    config = MapperConfig(
        algorithm=args.algorithm, tolerance=args.tolerance, seed=args.seed,
        latency_priority=args.latency_priority,
    )
    mapper = Mapper(net, n_parts=args.parts, config=config)
    if args.approach == "top":
        mapping = mapper.map_top()
    else:
        if not args.netflow_dir:
            parser.error("--netflow-dir is required for --approach profile")
        records = load_dump_dir(args.netflow_dir)
        if not records:
            parser.error(f"no NetFlow records under {args.netflow_dir}")
        duration = args.duration
        if duration is None:
            duration = max(r.last for r in records) * 1.01
        profile = ProfileData.from_records(records, net, duration=duration)
        initial = mapper.map_top()
        mapping = mapper.map_profile(profile, initial_parts=initial.parts)

    lines = [f"# {mapping.summary()}"]
    lines += [
        f"{node.node_id} {int(mapping.parts[node.node_id])}"
        for node in net.nodes
    ]
    text = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0


# --------------------------------------------------------------------- #
# massf-emulate
# --------------------------------------------------------------------- #
def massf_emulate(argv: list[str] | None = None) -> int:
    """Run a built-in experiment; print metrics as JSON."""
    parser = argparse.ArgumentParser(
        prog="massf-emulate",
        description="Run one of the paper's experiment setups end to end.",
    )
    parser.add_argument("--topology", choices=("campus", "teragrid", "brite"),
                        default="campus")
    parser.add_argument("--network",
                        help="custom network description (DML) file "
                        "(overrides --topology; requires -k)")
    parser.add_argument("--spec",
                        help="traffic specification file (overrides --app "
                        "and --intensity; see repro.traffic.spec)")
    parser.add_argument("-k", "--parts", type=int, default=None,
                        help="engine nodes (required with --network)")
    parser.add_argument("--app", choices=("scalapack", "gridnpb", "none"),
                        default="scalapack")
    parser.add_argument("--intensity",
                        choices=("light", "moderate", "heavy"), default=None)
    parser.add_argument("--approaches", default="top,place,profile",
                        help="comma-separated subset of top,place,profile")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=None,
                        help="override the workload duration (seconds)")
    parser.add_argument("-o", "--output", help="write JSON here")
    args = parser.parse_args(argv)

    from repro.experiments.runner import evaluate_setup, evaluate_workload
    from repro.experiments.setups import (
        brite_setup,
        campus_setup,
        teragrid_setup,
    )

    approaches = tuple(
        a.strip() for a in args.approaches.split(",") if a.strip()
    )
    if args.network or args.spec:
        from repro.experiments.workloads import build_workload
        from repro.topology import dml
        from repro.traffic.spec import parse_spec

        if args.network:
            if args.parts is None:
                parser.error("-k/--parts is required with --network")
            net = dml.load(args.network)
            k = args.parts
        else:
            factory = {"campus": campus_setup, "teragrid": teragrid_setup,
                       "brite": brite_setup}[args.topology]
            setup = factory(args.app)
            net = setup.network
            k = args.parts or setup.n_engine_nodes
        if args.spec:
            with open(args.spec, "r", encoding="utf-8") as handle:
                workload = parse_spec(handle.read(), net, seed=args.seed)
        else:
            wl_kwargs = {}
            if args.intensity:
                wl_kwargs["intensity"] = args.intensity
            if args.duration:
                wl_kwargs["duration"] = args.duration
            workload = build_workload(net, args.app, seed=args.seed,
                                      **wl_kwargs)
        results = evaluate_workload(net, workload, k,
                                    approaches=approaches, seed=args.seed)
        described = f"{net.summary()} on {k} engine nodes"
    else:
        factory = {"campus": campus_setup, "teragrid": teragrid_setup,
                   "brite": brite_setup}[args.topology]
        kwargs: dict = {}
        if args.intensity:
            kwargs["intensity"] = args.intensity
        if args.duration:
            kwargs["workload_kwargs"] = {"duration": args.duration}
        setup = factory(args.app, **kwargs)
        results = evaluate_setup(setup, approaches=approaches,
                                 seed=args.seed)
        described = setup.describe()

    payload = {
        "setup": described,
        "seed": args.seed,
        "approaches": {
            name: {
                "load_imbalance": ev.outcome.load_imbalance,
                "app_emulation_time_s": ev.outcome.app_emulation_time,
                "network_emulation_time_s":
                    ev.outcome.network_emulation_time,
                "lookahead_ms": ev.outcome.lookahead * 1e3,
                "remote_packets": ev.outcome.remote_packets,
                "weighted_edge_cut": ev.outcome.edge_cut,
            }
            for name, ev in results.items()
        },
    }
    text = json.dumps(payload, indent=2) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0


# --------------------------------------------------------------------- #
# massf-netflow
# --------------------------------------------------------------------- #
def massf_netflow(argv: list[str] | None = None) -> int:
    """Summarize a NetFlow dump directory."""
    parser = argparse.ArgumentParser(
        prog="massf-netflow",
        description="Aggregate and summarize MaSSF NetFlow dump files.",
    )
    parser.add_argument("dump_dir", help="directory of router_*.flow files")
    parser.add_argument("--top", type=int, default=10,
                        help="rows per ranking")
    args = parser.parse_args(argv)

    from repro.profiling.dump import load_dump_dir

    records = load_dump_dir(args.dump_dir)
    if not records:
        print(f"no NetFlow records under {args.dump_dir}", file=sys.stderr)
        return 1

    by_router: dict[int, int] = {}
    by_link: dict[int, int] = {}
    by_pair: dict[tuple[int, int], int] = {}
    for r in records:
        by_router[r.router] = by_router.get(r.router, 0) + r.packets
        by_link[r.out_link] = by_link.get(r.out_link, 0) + r.packets
        key = (r.src, r.dst)
        by_pair[key] = by_pair.get(key, 0) + r.packets

    total = sum(by_router.values())
    span = max(r.last for r in records) - min(r.first for r in records)
    print(f"{len(records)} records, {total} router-packets, "
          f"{span:.1f}s span")
    print("\ntop routers (packets forwarded):")
    for router, pkts in sorted(by_router.items(), key=lambda kv: -kv[1])[
        : args.top
    ]:
        print(f"  router {router:5d}  {pkts:12d}  {pkts / total:6.1%}")
    print("\ntop links (packets carried):")
    for link, pkts in sorted(by_link.items(), key=lambda kv: -kv[1])[
        : args.top
    ]:
        print(f"  link {link:7d}  {pkts:12d}")
    print("\ntop flows (src -> dst):")
    for (src, dst), pkts in sorted(by_pair.items(), key=lambda kv: -kv[1])[
        : args.top
    ]:
        print(f"  {src:5d} -> {dst:5d}  {pkts:12d}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    sys.exit(massf_emulate())
