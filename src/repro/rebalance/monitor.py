"""The online rebalancer: load monitoring + triggered migration.

This is the tentpole loop.  A :class:`LoadMonitor` rides the kernel's
segment-observer hook and folds every dispatched event into per-node load
bins of ``bin_s`` virtual seconds.  At each conservative-window barrier the
:class:`OnlineRebalancer` closes the bins the window completed, computes
the normalized-std imbalance signal per bin, and — when the signal clears
the trigger threshold outside the cooldown — asks its policy for an
incremental migration set.  A candidate survives two gates:

1. the policy's own economics (hysteresis bill, kurve equilibrium, rsz
   stopping rule — see :mod:`repro.rebalance.policy`), and
2. the **universal adoption gate** enforced here: the candidate's predicted
   imbalance must be *strictly* below the observed signal.

Adopted sets execute immediately via
:meth:`~repro.engine.lp.ParallelEmulationKernel.migrate_routers` — channel
state crosses the fork boundary bit-exactly, so the trace stays
byte-identical — and everything lands in the :class:`MigrationLog`.

The rebalancer also runs *detached* (no kernel): feed
:meth:`OnlineRebalancer.observe` and :meth:`~OnlineRebalancer.on_barrier`
synthetic loads and it makes the same decisions against its private
partition copy — how the hypothesis property suite drives it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.graphbuild import (
    latency_objective_weights,
    link_weights_to_adjwgt,
    network_csr,
)
from repro.engine.sync import BarrierClock
from repro.metrics.imbalance import load_imbalance
from repro.obs.telemetry import ensure_telemetry
from repro.partition.perf import RefineStats
from repro.rebalance.log import MigrationEvent, MigrationLog
from repro.rebalance.migrate import MigrationStats, node_state_bytes_array
from repro.rebalance.policy import (
    ProposalState,
    boundary_vertices,
    make_policy,
)
from repro.topology.network import Network

__all__ = [
    "RebalanceConfig",
    "LoadMonitor",
    "OnlineRebalancer",
    "attach_rebalancer",
]


@dataclass(frozen=True)
class RebalanceConfig:
    """Tuning knobs of the online rebalancer (all virtual-time seconds).

    Attributes
    ----------
    policy:
        ``static`` / ``hysteresis`` / ``kurve`` / ``rsz`` (or a
        :class:`~repro.rebalance.policy.RebalancePolicy` instance).
    bin_s:
        Observation bin width — the granularity of the imbalance signal.
    threshold:
        Trigger when a closed bin's imbalance exceeds this.
    cooldown_s:
        Minimum virtual time between *triggers* (adopted or not); the
        damper that keeps a persistent hot spot from re-triggering every
        bin while its migration takes effect.
    min_bin_load:
        Bins with less total load than this score NaN and never trigger
        (imbalance of a near-idle bin is noise).
    tolerance / refine_passes / max_moves:
        Passed to the incremental refinement machinery; ``max_moves``
        bounds every proposal's size (neighborhood-local increments).
    migration_s_per_byte / hysteresis:
        The hysteresis policy's migration bill: a candidate must win back
        ``hysteresis ×`` its payload cost within one bin.
    kurve_rounds / kurve_comm / kurve_mig:
        Kurve best-response rounds and its communication / migration cost
        blend weights.
    rsz_cost_weight:
        RSZ's per-byte migration cost in normalized-load units.
    seed:
        Seed of the rebalancer's private generator (policy tie-breaks);
        same seed + same loads ⇒ identical :class:`MigrationLog`.
    """

    policy: object = "hysteresis"
    bin_s: float = 0.25
    threshold: float = 0.35
    cooldown_s: float = 0.5
    min_bin_load: float = 1.0
    tolerance: float = 1.10
    refine_passes: int = 4
    max_moves: int | None = 24
    migration_s_per_byte: float = 1e-7
    hysteresis: float = 1.0
    kurve_rounds: int = 8
    kurve_comm: float = 0.05
    kurve_mig: float = 0.05
    rsz_cost_weight: float = 1e-4
    seed: int = 0


class LoadMonitor:
    """Per-node load accumulator over virtual-time bins.

    ``observe`` takes a dispatched segment (parallel ``time`` / ``node`` /
    ``count`` arrays); events land in the bin their execution time falls
    in.  Bins are held open until :meth:`close_up_to` — the conservative
    window can straddle a bin edge, so a bin is only safe to read once a
    barrier at or past its right edge has been reached.
    """

    def __init__(self, n_nodes: int, bin_s: float) -> None:
        self.n_nodes = int(n_nodes)
        self.clock = BarrierClock(bin_s)
        self._pending: dict[int, np.ndarray] = {}

    def observe(self, seg, next_col=None) -> None:
        """Fold one segment's events into the open bins."""
        if len(seg.time) == 0:
            return
        bins = self.clock.bin_of(seg.time)
        lo = int(bins.min())
        hi = int(bins.max())
        if lo == hi:  # common case: the whole segment in one bin
            arr = self._bin(lo)
            np.add.at(arr, seg.node, seg.count)
            return
        for b in range(lo, hi + 1):
            mask = bins == b
            if mask.any():
                arr = self._bin(b)
                np.add.at(arr, seg.node[mask], seg.count[mask])

    def _bin(self, index: int) -> np.ndarray:
        arr = self._pending.get(index)
        if arr is None:
            arr = np.zeros(self.n_nodes, dtype=np.float64)
            self._pending[index] = arr
        return arr

    def close_up_to(self, now: float) -> list[tuple[int, np.ndarray]]:
        """Pop every bin completed by the barrier at ``now``, in order."""
        empty = None
        out = []
        for index in self.clock.completed(now):
            arr = self._pending.pop(index, None)
            if arr is None:
                if empty is None:
                    empty = np.zeros(self.n_nodes, dtype=np.float64)
                arr = empty
            out.append((index, arr))
        return out

    def drain(self) -> list[tuple[int, np.ndarray]]:
        """Pop all still-open bins (end of run), in order."""
        out = [(i, self._pending[i]) for i in sorted(self._pending)]
        self._pending.clear()
        return out


class OnlineRebalancer:
    """Monitor + policy + migration executor for one emulation run."""

    def __init__(
        self,
        net: Network,
        parts,
        *,
        config: RebalanceConfig | None = None,
        telemetry=None,
    ) -> None:
        self.net = net
        self.config = config if config is not None else RebalanceConfig()
        self.policy = make_policy(self.config.policy)
        # Record the resolved policy name, not the spec object.
        if self.config.policy is not self.policy.name:
            self.config = replace(self.config, policy=self.policy.name)
        self.parts = np.asarray(parts, dtype=np.int64).copy()
        self.k = int(self.parts.max()) + 1 if len(self.parts) else 1
        graph, link_index = network_csr(net)
        adjwgt = link_weights_to_adjwgt(
            latency_objective_weights(net), link_index
        )
        # Edge weights: the latency objective (cut quality); vertex
        # weights are swapped in per proposal from the observed loads.
        self._graph = graph.with_adjwgt(adjwgt)
        self.state_bytes = node_state_bytes_array(net)
        self.monitor = LoadMonitor(net.n_nodes, self.config.bin_s)
        self.rng = np.random.default_rng(self.config.seed)
        self.stats = MigrationStats()
        self.refine_stats = RefineStats()
        self.log = MigrationLog(
            policy=self.policy.name, bin_s=self.config.bin_s
        )
        self.telemetry = ensure_telemetry(telemetry)
        self._kernel = None
        self._last_trigger = -np.inf
        self._finalized = False

    # ------------------------------------------------------------------ #
    def attach(self, kernel) -> "OnlineRebalancer":
        """Install on a live :class:`ParallelEmulationKernel`."""
        if not hasattr(kernel, "migrate_routers"):
            raise TypeError(
                "an OnlineRebalancer needs the parallel LP engine "
                "(the sequential kernel has no LPs to migrate between)"
            )
        if not np.array_equal(kernel._parts, self.parts):
            raise ValueError(
                "rebalancer and kernel disagree on the initial partition"
            )
        self._kernel = kernel
        kernel.segment_observers.append(self.observe)
        kernel.barrier_hooks.append(self.on_barrier)
        kernel.rebalancer = self
        if self.telemetry is ensure_telemetry(None):
            self.telemetry = kernel.telemetry
        return self

    # ------------------------------------------------------------------ #
    # Kernel hooks (also the detached-mode driving surface)
    # ------------------------------------------------------------------ #
    def observe(self, seg, next_col=None) -> None:
        self.monitor.observe(seg, next_col)

    def on_barrier(self, now: float) -> None:
        for index, node_loads in self.monitor.close_up_to(now):
            self._close_bin(index, node_loads, live=True)

    def finalize(self) -> None:
        """Close remaining bins (no triggers — the run is over) and emit
        telemetry.  Idempotent; the kernel calls this from its own
        finalization."""
        if self._finalized:
            return
        self._finalized = True
        for index, node_loads in self.monitor.drain():
            self._close_bin(index, node_loads, live=False)
        self._emit_telemetry()

    # ------------------------------------------------------------------ #
    def _close_bin(
        self, index: int, node_loads: np.ndarray, live: bool
    ) -> None:
        cfg = self.config
        edge = self.monitor.clock.edge_of(index)
        lp_loads = np.bincount(
            self.parts, weights=node_loads, minlength=self.k
        )
        total = float(node_loads.sum())
        signal = (
            float("nan") if total < cfg.min_bin_load
            else load_imbalance(lp_loads)
        )
        self.log.bin_times.append(edge)
        self.log.imbalance.append(signal)
        self.log.lp_loads.append(tuple(float(x) for x in lp_loads))
        if (
            live
            and not self.policy.is_static
            and np.isfinite(signal)
            and signal > cfg.threshold
            and edge - self._last_trigger >= cfg.cooldown_s
        ):
            self._last_trigger = edge  # cooldown runs from every trigger
            self._trigger(edge, node_loads, lp_loads, signal)

    def _trigger(
        self,
        time: float,
        node_loads: np.ndarray,
        lp_loads: np.ndarray,
        signal: float,
    ) -> None:
        cfg = self.config
        self.stats.triggers += 1
        self.stats.proposals += 1
        parts_before = self.parts.copy()
        graph = self._graph.with_vwgt(node_loads)
        n_boundary = len(boundary_vertices(graph, parts_before))
        state = ProposalState(
            graph=graph,
            parts=parts_before,
            k=self.k,
            node_loads=node_loads,
            lp_loads=lp_loads,
            state_bytes=self.state_bytes,
            config=cfg,
            rng=self.rng,
            stats=self.refine_stats,
        )
        cand = self.policy.propose(state)
        adopted = False
        routers: tuple[int, ...] = ()
        sources: tuple[int, ...] = ()
        dests: tuple[int, ...] = ()
        cost = 0
        predicted = signal
        if cand is not None:
            cand = np.asarray(cand, dtype=np.int64)
            movers = np.nonzero(cand != parts_before)[0]
            if len(movers):
                predicted = load_imbalance(
                    np.bincount(
                        cand, weights=node_loads, minlength=self.k
                    )
                )
                # Universal adoption gate: strict predicted improvement.
                if predicted < signal - 1e-12:
                    adopted = True
                    routers = tuple(int(r) for r in movers)
                    sources = tuple(
                        int(s) for s in parts_before[movers]
                    )
                    dests = tuple(int(d) for d in cand[movers])
                    cost = int(self.state_bytes[movers].sum())
                    self._execute(movers, cand[movers])
        if adopted:
            self.stats.adopted += 1
            self.stats.routers_migrated += len(routers)
            self.stats.bytes_moved += cost
        else:
            self.stats.rejected += 1
        self.log.events.append(MigrationEvent(
            time=time,
            policy=self.policy.name,
            adopted=adopted,
            imbalance_before=signal,
            imbalance_after=predicted if adopted else signal,
            routers=routers,
            sources=sources,
            dests=dests,
            cost_bytes=cost,
            n_boundary=n_boundary,
            parts_before=parts_before,
        ))

    def _execute(self, movers: np.ndarray, dests: np.ndarray) -> None:
        if self._kernel is not None:
            self._kernel.migrate_routers(movers, dests)
        self.parts[movers] = dests

    # ------------------------------------------------------------------ #
    def _emit_telemetry(self) -> None:
        tel = self.telemetry
        tel.count("rebalance.bins", len(self.log.bin_times))
        tel.count("rebalance.triggers", self.stats.triggers)
        tel.count("rebalance.adopted", self.stats.adopted)
        tel.count("rebalance.rejected", self.stats.rejected)
        tel.count("rebalance.routers_migrated", self.stats.routers_migrated)
        tel.count("rebalance.bytes_moved", self.stats.bytes_moved)
        tel.gauge("rebalance.auc", self.log.auc())
        if self.log.lp_loads:
            tel.timeline(
                "rebalance/lp_loads",
                np.asarray(self.log.lp_loads, dtype=np.float64).T,
                self.config.bin_s,
                policy=self.policy.name,
            )
        for event in self.log.events:
            tel.event("rebalance/migrations", **event.to_dict())


def attach_rebalancer(kernel, spec) -> OnlineRebalancer:
    """Normalize a ``rebalance=`` spec and install it on ``kernel``.

    Accepts an :class:`OnlineRebalancer` (attached as-is), a
    :class:`RebalanceConfig`, a policy name string, or ``True`` (default
    config).
    """
    if isinstance(spec, OnlineRebalancer):
        return spec.attach(kernel)
    if isinstance(spec, RebalanceConfig):
        config = spec
    elif spec is True:
        config = RebalanceConfig()
    elif isinstance(spec, str):
        config = RebalanceConfig(policy=spec)
    else:
        raise TypeError(
            f"rebalance= accepts True, a policy name, a RebalanceConfig "
            f"or an OnlineRebalancer; got {spec!r}"
        )
    rebalancer = OnlineRebalancer(
        kernel.net, kernel._parts, config=config,
        telemetry=kernel.telemetry,
    )
    return rebalancer.attach(kernel)
