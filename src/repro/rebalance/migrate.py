"""Migration execution helpers: cost accounting and forced schedules.

The actual state transfer lives in the engine
(:meth:`repro.engine.lp.ParallelEmulationKernel.migrate_routers` — it owns
the shards and the fork boundary); this module provides what sits around
it: the run-level :class:`MigrationStats` counters the perf-guard tests
read, the network-level state-size accounting that migration *cost* is
measured in, and :class:`ForcedMigrationSchedule` — the deterministic
"migrate router r to LP d at virtual time t" harness the migration-parity
suite and the bench drive the engine with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.lp import CHANNEL_STATE_BYTES
from repro.topology.network import Network

__all__ = [
    "CHANNEL_STATE_BYTES",
    "MigrationStats",
    "migration_state_bytes",
    "ForcedMigrationSchedule",
]


@dataclass
class MigrationStats:
    """Counters of one rebalanced run's decision pipeline.

    Every trigger produces exactly one proposal, and every proposal is
    either adopted or rejected — so ``triggers == proposals == adopted +
    rejected`` always holds.  The byte / router counters cover adopted
    events only (rejected proposals serialize nothing).
    """

    triggers: int = 0
    proposals: int = 0
    adopted: int = 0
    rejected: int = 0
    routers_migrated: int = 0
    bytes_moved: int = 0


def migration_state_bytes(net: Network, nodes) -> int:
    """Serialized migration payload for ``nodes``, from the topology alone.

    A node's migration state is its outgoing (link, direction) channel
    set — one entry per incident link — at
    :data:`CHANNEL_STATE_BYTES` each.  Mirrors
    :meth:`repro.engine.lp.ParallelEmulationKernel.node_state_bytes`
    without needing a kernel (policies price candidate moves with this).
    """
    nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
    return CHANNEL_STATE_BYTES * int(
        sum(net.degree(int(v)) for v in nodes)
    )


def node_state_bytes_array(net: Network) -> np.ndarray:
    """Per-node migration payload sizes, ``int64[n_nodes]``."""
    degrees = np.array(
        [net.degree(v) for v in range(net.n_nodes)], dtype=np.int64
    )
    return degrees * CHANNEL_STATE_BYTES


class ForcedMigrationSchedule:
    """Execute a fixed ``(time, router, dest_lp)`` schedule at barriers.

    The migration-parity battery's instrument: attach one to a
    :class:`~repro.engine.lp.ParallelEmulationKernel` and every entry
    fires at the first window barrier at or past its virtual time —
    deterministically, independent of how traffic shaped the windows.
    Entries sharing a firing barrier are applied in schedule order as one
    migration set.
    """

    def __init__(self, moves) -> None:
        moves = [(float(t), int(r), int(d)) for t, r, d in moves]
        self._moves = sorted(moves, key=lambda m: m[0])
        self._next = 0
        self._kernel = None
        #: ``(barrier_time, router, dest)`` per applied entry.
        self.executed: list[tuple[float, int, int]] = []

    def attach(self, kernel) -> "ForcedMigrationSchedule":
        if not hasattr(kernel, "migrate_routers"):
            raise TypeError(
                "a ForcedMigrationSchedule needs the parallel LP engine "
                "(the sequential kernel has no LPs to migrate between)"
            )
        self._kernel = kernel
        kernel.barrier_hooks.append(self)
        return self

    @property
    def pending(self) -> int:
        return len(self._moves) - self._next

    def __call__(self, now: float) -> None:
        if self._next >= len(self._moves):
            return
        due = self._next
        while due < len(self._moves) and self._moves[due][0] <= now:
            due += 1
        if due == self._next:
            return
        batch = self._moves[self._next:due]
        self._next = due
        # Later entries for the same router win, matching apply order.
        routers: list[int] = []
        dests: dict[int, int] = {}
        for t, r, d in batch:
            if r not in dests:
                routers.append(r)
            dests[r] = d
            self.executed.append((now, r, d))
        self._kernel.migrate_routers(
            np.asarray(routers, dtype=np.int64),
            np.asarray([dests[r] for r in routers], dtype=np.int64),
        )
