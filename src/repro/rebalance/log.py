"""The migration log: what the online rebalancer did, and when.

One :class:`MigrationLog` per run, carrying two parallel records:

- the **imbalance timeline** — one entry per closed observation bin
  (right-edge virtual time, the normalized-std imbalance signal, and the
  per-LP loads it was computed from); near-idle bins score NaN, matching
  :func:`repro.metrics.imbalance.fine_grained_imbalance_series`.
- the **events** — one :class:`MigrationEvent` per trigger, whether the
  proposal was adopted (and executed on the live kernel) or rejected.

The log is the golden-snapshot artifact (``to_dict`` is JSON-safe and
excludes the audit-only ``parts_before`` arrays) and the input to the
paper-style recovery metrics (:meth:`MigrationLog.auc`,
:meth:`MigrationLog.time_to_rebalance`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.imbalance import imbalance_auc, time_to_rebalance

__all__ = ["MigrationEvent", "MigrationLog"]


@dataclass
class MigrationEvent:
    """One rebalancing trigger (adopted or rejected).

    ``imbalance_after`` is the *predicted* post-migration imbalance (last
    bin's node loads re-binned under the candidate partition); the realized
    value shows up in the timeline entries that follow.  ``parts_before``
    is an audit copy of the partition at trigger time — kept on the object
    for the test battery, excluded from :meth:`to_dict`.
    """

    time: float
    policy: str
    adopted: bool
    imbalance_before: float
    imbalance_after: float
    routers: tuple[int, ...]
    sources: tuple[int, ...]
    dests: tuple[int, ...]
    cost_bytes: int
    n_boundary: int
    parts_before: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_moved(self) -> int:
        return len(self.routers)

    def to_dict(self) -> dict:
        return {
            "time": float(self.time),
            "policy": self.policy,
            "adopted": bool(self.adopted),
            "imbalance_before": float(self.imbalance_before),
            "imbalance_after": float(self.imbalance_after),
            "routers": [int(r) for r in self.routers],
            "sources": [int(s) for s in self.sources],
            "dests": [int(d) for d in self.dests],
            "cost_bytes": int(self.cost_bytes),
            "n_boundary": int(self.n_boundary),
        }


@dataclass
class MigrationLog:
    """Everything one rebalanced run decided, in virtual-time order."""

    policy: str
    bin_s: float
    events: list[MigrationEvent] = field(default_factory=list)
    bin_times: list[float] = field(default_factory=list)
    imbalance: list[float] = field(default_factory=list)
    lp_loads: list[tuple[float, ...]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def migrations(self) -> list[MigrationEvent]:
        """The adopted events only (the ones that moved routers)."""
        return [e for e in self.events if e.adopted]

    @property
    def migration_count(self) -> int:
        return sum(1 for e in self.events if e.adopted)

    @property
    def routers_moved(self) -> int:
        return sum(e.n_moved for e in self.events if e.adopted)

    @property
    def bytes_moved(self) -> int:
        return sum(e.cost_bytes for e in self.events if e.adopted)

    # ------------------------------------------------------------------ #
    def times(self) -> np.ndarray:
        return np.asarray(self.bin_times, dtype=np.float64)

    def imbalance_series(self) -> np.ndarray:
        """Imbalance per closed bin (NaN = near-idle bin)."""
        return np.asarray(self.imbalance, dtype=np.float64)

    def auc(self) -> float:
        """Imbalance-over-time area (lower = better balanced run)."""
        if not self.imbalance:
            return 0.0
        return imbalance_auc(self.imbalance_series(), self.bin_s)

    def time_to_rebalance(
        self, shift_time: float, threshold: float
    ) -> float:
        """Recovery latency after a demand shift at ``shift_time``."""
        return time_to_rebalance(
            self.times(), self.imbalance_series(), shift_time, threshold
        )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-safe snapshot (the golden-test artifact)."""
        return {
            "policy": self.policy,
            "bin_s": float(self.bin_s),
            "migration_count": self.migration_count,
            "routers_moved": self.routers_moved,
            "bytes_moved": self.bytes_moved,
            "auc": self.auc(),
            "bin_times": [float(t) for t in self.bin_times],
            "imbalance": [
                None if np.isnan(v) else float(v) for v in self.imbalance
            ],
            "lp_loads": [list(map(float, row)) for row in self.lp_loads],
            "events": [e.to_dict() for e in self.events],
        }

    def summary(self) -> str:
        moved = self.routers_moved
        return (
            f"{self.policy}: {self.migration_count} migrations, "
            f"{moved} routers, {self.bytes_moved} bytes, "
            f"auc={self.auc():.3f}"
        )
