"""Online load rebalancing for the parallel LP engine.

The paper's traffic-based balance (PLACE/PROFILE) is computed *before* a
run; this package closes the loop **during** one.  A monitor rides the
kernel's conservative-window barriers, folds dispatched events into an
imbalance signal, and — under a pluggable policy — migrates routers
between logical processes live, moving their channel state bit-exactly so
the event trace never notices.  See :mod:`repro.rebalance.monitor` for
the control loop, :mod:`repro.rebalance.policy` for the policies,
:mod:`repro.rebalance.migrate` for cost accounting and forced schedules,
and :mod:`repro.rebalance.log` for the run artifact.
"""

from repro.rebalance.log import MigrationEvent, MigrationLog
from repro.rebalance.migrate import (
    CHANNEL_STATE_BYTES,
    ForcedMigrationSchedule,
    MigrationStats,
    migration_state_bytes,
    node_state_bytes_array,
)
from repro.rebalance.monitor import (
    LoadMonitor,
    OnlineRebalancer,
    RebalanceConfig,
    attach_rebalancer,
)
from repro.rebalance.policy import (
    POLICIES,
    HysteresisPolicy,
    KurvePolicy,
    ProposalState,
    RebalancePolicy,
    RSZPolicy,
    StaticPolicy,
    boundary_vertices,
    make_policy,
)

__all__ = [
    "CHANNEL_STATE_BYTES",
    "ForcedMigrationSchedule",
    "HysteresisPolicy",
    "KurvePolicy",
    "LoadMonitor",
    "MigrationEvent",
    "MigrationLog",
    "MigrationStats",
    "OnlineRebalancer",
    "POLICIES",
    "ProposalState",
    "RebalanceConfig",
    "RebalancePolicy",
    "RSZPolicy",
    "StaticPolicy",
    "attach_rebalancer",
    "boundary_vertices",
    "make_policy",
    "migration_state_bytes",
    "node_state_bytes_array",
]
