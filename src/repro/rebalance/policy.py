"""Pluggable rebalancing policies: static / hysteresis / kurve / rsz.

A policy answers one question at each trigger: *given the last observation
bin's per-node loads, which (neighborhood-local) migration set should run
next?*  All four work over the PR 3 incremental-refinement machinery —
the CSR connectivity table and boundary tests of
:mod:`repro.partition.kwayrefine` — and all randomness flows through the
rebalancer's single seeded generator, so a run's decisions are a pure
function of (workload, seed).

- ``static`` — the paper's baseline: balance before the run, never move.
- ``hysteresis`` — :func:`repro.partition.kwayrefine.kway_refine` with the
  observed loads as vertex weights, adopted under the
  :mod:`repro.core.dynamic` rule: predicted gain must beat the migration
  bill by the hysteresis factor.
- ``kurve`` — game-theoretic iterative repartitioning (Kurve, Kothari &
  Ranka): boundary vertices play best-response rounds against a blended
  computation + communication + migration cost, until no player improves.
- ``rsz`` — dynamic balanced repartitioning with explicit migration cost
  (Räcke, Schmid & Zabrodin): greedily drain the most loaded LP across
  its boundary while a move's balance benefit exceeds its state-transfer
  cost.

Every policy returns a full candidate assignment (or ``None`` to decline);
the monitor enforces the universal adoption gate — a candidate is executed
only if it *strictly* reduces the predicted imbalance signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.imbalance import load_imbalance
from repro.partition.csr import CSRGraph
from repro.partition.kwayrefine import kway_refine, part_connectivity
from repro.partition.perf import RefineStats

__all__ = [
    "ProposalState",
    "RebalancePolicy",
    "StaticPolicy",
    "HysteresisPolicy",
    "KurvePolicy",
    "RSZPolicy",
    "POLICIES",
    "make_policy",
    "boundary_vertices",
]


def boundary_vertices(graph: CSRGraph, parts: np.ndarray) -> np.ndarray:
    """Vertices with at least one neighbor in another part (ascending)."""
    n = graph.n
    if n == 0 or len(graph.adjncy) == 0:
        return np.zeros(0, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    cut = parts[src] != parts[graph.adjncy]
    mask = np.zeros(n, dtype=bool)
    mask[src[cut]] = True
    return np.nonzero(mask)[0]


@dataclass(frozen=True)
class ProposalState:
    """Everything a policy may look at when proposing a migration set.

    ``graph`` carries the observed bin loads as vertex weights (balance)
    and the latency-objective weights as edge weights (cut quality);
    ``parts`` is the live assignment — policies must copy, never mutate.
    """

    graph: CSRGraph
    parts: np.ndarray
    k: int
    node_loads: np.ndarray
    lp_loads: np.ndarray
    state_bytes: np.ndarray
    config: "object"
    rng: np.random.Generator
    stats: RefineStats


def _predicted_imbalance(state: ProposalState, cand: np.ndarray) -> float:
    loads = np.bincount(cand, weights=state.node_loads, minlength=state.k)
    return load_imbalance(loads)


class RebalancePolicy:
    """Base: propose a candidate assignment, or ``None`` to sit still."""

    name = "abstract"
    #: Static policies never trigger (the monitor skips evaluation).
    is_static = False

    def propose(self, state: ProposalState) -> np.ndarray | None:
        raise NotImplementedError


class StaticPolicy(RebalancePolicy):
    """Never migrate — the paper's pre-run PLACE/PROFILE baseline."""

    name = "static"
    is_static = True

    def propose(self, state: ProposalState) -> np.ndarray | None:
        return None


class HysteresisPolicy(RebalancePolicy):
    """Incremental k-way refinement under the ``core.dynamic`` rule.

    The candidate comes from :func:`kway_refine` over the observed loads
    (capped at ``max_moves`` — the neighborhood-local increment); it is
    adopted only when the predicted imbalance gain, scaled to one bin of
    virtual time, exceeds ``hysteresis ×`` the migration bill (payload
    bytes × per-byte cost) — a direct transplant of the offline epoch
    remapper's adoption test.
    """

    name = "hysteresis"

    def propose(self, state: ProposalState) -> np.ndarray | None:
        cfg = state.config
        cand = kway_refine(
            state.graph, state.parts, state.k,
            tolerance=cfg.tolerance, max_passes=cfg.refine_passes,
            rng=state.rng, stats=state.stats, max_moves=cfg.max_moves,
        )
        moved = cand != state.parts
        if not moved.any():
            return None
        before = load_imbalance(state.lp_loads)
        after = _predicted_imbalance(state, cand)
        gain_s = max(before - after, 0.0) * cfg.bin_s
        bill_s = (
            float(state.state_bytes[moved].sum()) * cfg.migration_s_per_byte
        )
        if gain_s <= cfg.hysteresis * bill_s:
            return None
        return cand


class KurvePolicy(RebalancePolicy):
    """Game-theoretic best-response repartitioning.

    Each boundary vertex is a player minimizing its own blended cost —
    its LP's normalized load (computation), its external edge weight
    (communication), and its state size when it moves (migration).  Rounds
    repeat until no player improves or the move budget runs out; only
    parts the vertex has edges into are candidate strategies, so moves
    stay neighborhood-local.
    """

    name = "kurve"

    def propose(self, state: ProposalState) -> np.ndarray | None:
        cfg = state.config
        graph, k = state.graph, state.k
        total = float(state.lp_loads.sum())
        if total <= 0.0:
            return None
        target = total / k
        parts = state.parts.copy()
        lp = state.lp_loads.astype(np.float64).copy()
        counts = np.bincount(parts, minlength=k)
        bytes_norm = float(max(state.state_bytes.max(), 1))
        budget = np.inf if cfg.max_moves is None else int(cfg.max_moves)
        loads = state.node_loads
        moves = 0
        for _ in range(cfg.kurve_rounds):
            if moves >= budget:
                break
            state.stats.passes += 1
            boundary = boundary_vertices(graph, parts)
            order = boundary[state.rng.permutation(len(boundary))]
            round_moves = 0
            for v in order:
                if moves >= budget:
                    break
                v = int(v)
                w = float(loads[v])
                if w <= 0.0:
                    continue  # moving a load-less vertex balances nothing
                s = int(parts[v])
                if counts[s] <= 1:
                    continue
                conn = part_connectivity(graph, parts, v, k)
                state.stats.boundary_scans += 1
                tot = float(conn.sum())
                ext_norm = max(tot, 1e-30)
                cost_here = (
                    lp[s] / target
                    + cfg.kurve_comm * (tot - conn[s]) / ext_norm
                )
                mig_penalty = (
                    cfg.kurve_mig * float(state.state_bytes[v]) / bytes_norm
                )
                best_dest = -1
                best_cost = cost_here - 1e-12
                for d in np.nonzero(conn > 0.0)[0]:
                    d = int(d)
                    if d == s:
                        continue
                    cost_there = (
                        (lp[d] + w) / target
                        + cfg.kurve_comm * (tot - conn[d]) / ext_norm
                        + mig_penalty
                    )
                    if cost_there < best_cost - 1e-12:
                        best_cost = cost_there
                        best_dest = d
                if best_dest < 0:
                    continue
                lp[s] -= w
                lp[best_dest] += w
                counts[s] -= 1
                counts[best_dest] += 1
                parts[v] = best_dest
                state.stats.moves += 1
                moves += 1
                round_moves += 1
            if round_moves == 0:
                break
        if moves == 0:
            return None
        return parts


class RSZPolicy(RebalancePolicy):
    """Greedy dynamic balanced repartitioning with explicit move cost.

    Repeatedly picks the single best boundary move *out of the most
    loaded LP*: the move whose reduction of the maximum LP load, net of
    the migration cost of the vertex's channel state, is largest.  Stops
    when no move has positive net benefit — the explicit-cost stopping
    rule that distinguishes the Räcke–Schmid–Zabrodin formulation from
    plain greedy balancing.
    """

    name = "rsz"

    def propose(self, state: ProposalState) -> np.ndarray | None:
        cfg = state.config
        graph, k = state.graph, state.k
        total = float(state.lp_loads.sum())
        if total <= 0.0:
            return None
        target = total / k
        parts = state.parts.copy()
        lp = state.lp_loads.astype(np.float64).copy()
        counts = np.bincount(parts, minlength=k)
        loads = state.node_loads
        budget = 64 if cfg.max_moves is None else int(cfg.max_moves)
        moves = 0
        for _ in range(budget):
            hot = int(np.argmax(lp))
            if counts[hot] <= 1:
                break
            state.stats.passes += 1
            boundary = boundary_vertices(graph, parts)
            members = boundary[parts[boundary] == hot]
            others = np.delete(lp, hot)
            rest_max = float(others.max()) if len(others) else 0.0
            cur_max = float(lp[hot])
            best_key: tuple[float, int, int] | None = None
            for v in members:
                v = int(v)
                w = float(loads[v])
                if w <= 0.0:
                    continue
                conn = part_connectivity(graph, parts, v, k)
                state.stats.boundary_scans += 1
                for d in np.nonzero(conn > 0.0)[0]:
                    d = int(d)
                    if d == hot:
                        continue
                    new_max = max(cur_max - w, lp[d] + w, rest_max)
                    benefit = (cur_max - new_max) / target
                    score = benefit - (
                        cfg.rsz_cost_weight * float(state.state_bytes[v])
                    )
                    key = (-score, v, d)
                    if best_key is None or key < best_key:
                        best_key = key
            if best_key is None or -best_key[0] <= 1e-12:
                break
            _, v, d = best_key
            w = float(loads[v])
            lp[hot] -= w
            lp[d] += w
            counts[hot] -= 1
            counts[d] += 1
            parts[v] = d
            state.stats.moves += 1
            moves += 1
        if moves == 0:
            return None
        return parts


POLICIES: dict[str, type[RebalancePolicy]] = {
    "static": StaticPolicy,
    "hysteresis": HysteresisPolicy,
    "kurve": KurvePolicy,
    "rsz": RSZPolicy,
}


def make_policy(spec) -> RebalancePolicy:
    """Normalize a policy spec: an instance, a class, or a name."""
    if isinstance(spec, RebalancePolicy):
        return spec
    if isinstance(spec, type) and issubclass(spec, RebalancePolicy):
        return spec()
    name = str(spec).strip().lower()
    if name not in POLICIES:
        raise ValueError(
            f"unknown rebalance policy {spec!r}; choose from "
            f"{', '.join(sorted(POLICIES))}"
        )
    return POLICIES[name]()
