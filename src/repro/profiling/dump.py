"""NetFlow dump files: writer and parser.

MaSSF routers "record every traffic flow ... to a local file"; the PROFILE
pipeline then parses those files.  The format is one whitespace-separated
record per line after a header::

    # massf-netflow v1
    # router src dst flow out_link packets bytes first last
    3 20 45 17 6 134 200000.0 12.500000 13.250000

One file per router (``router_<id>.flow``) in a dump directory mirrors the
"local file" arrangement; a concatenated single file parses identically.
"""

from __future__ import annotations

from pathlib import Path

from repro.profiling.netflow import FlowRecord, NetFlowCollector

__all__ = [
    "format_records",
    "parse_records",
    "write_dump_dir",
    "load_dump_dir",
]

_HEADER = "# massf-netflow v1"
_COLUMNS = "# router src dst flow out_link packets bytes first last"


def format_records(records: list[FlowRecord]) -> str:
    """Serialize records to dump text."""
    lines = [_HEADER, _COLUMNS]
    for r in records:
        lines.append(
            f"{int(r.router)} {int(r.src)} {int(r.dst)} {int(r.flow_id)} "
            f"{int(r.out_link)} {int(r.packets)} {float(r.nbytes)!r} "
            f"{float(r.first)!r} {float(r.last)!r}"
        )
    return "\n".join(lines) + "\n"


def parse_records(text: str) -> list[FlowRecord]:
    """Parse dump text back into records."""
    records: list[FlowRecord] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 9:
            raise ValueError(f"line {lineno}: expected 9 fields, got {len(fields)}")
        records.append(
            FlowRecord(
                router=int(fields[0]), src=int(fields[1]), dst=int(fields[2]),
                flow_id=int(fields[3]), out_link=int(fields[4]),
                packets=int(fields[5]), nbytes=float(fields[6]),
                first=float(fields[7]), last=float(fields[8]),
            )
        )
    return records


def write_dump_dir(collector: NetFlowCollector, directory) -> list[Path]:
    """Write one dump file per router into ``directory``.

    Returns the files written.  Routers with no traffic produce no file
    (their NetFlow cache is empty), as on a real deployment.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    by_router: dict[int, list[FlowRecord]] = {}
    for rec in collector.records():
        by_router.setdefault(rec.router, []).append(rec)
    written = []
    for router, recs in sorted(by_router.items()):
        path = directory / f"router_{router}.flow"
        path.write_text(format_records(recs), encoding="utf-8")
        written.append(path)
    return written


def load_dump_dir(directory) -> list[FlowRecord]:
    """Parse every ``*.flow`` file in a dump directory."""
    directory = Path(directory)
    records: list[FlowRecord] = []
    for path in sorted(directory.glob("*.flow")):
        records.extend(parse_records(path.read_text(encoding="utf-8")))
    return records
