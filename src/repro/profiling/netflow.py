"""NetFlow-like per-router flow accounting.

The collector is handed to :class:`~repro.engine.kernel.EmulationKernel`,
which calls :meth:`NetFlowCollector.record` at every router forwarding
event.  Records accumulate per key; the key granularity is the paper's
tuning knob ("By tuning the granularity of the NetFlow, we can get detailed
network traffic information with small overhead"):

- ``granularity="flow"`` — one record per (router, out-link, flow id):
  maximum detail, most records.
- ``granularity="pair"`` — one record per (router, out-link, src, dst):
  repeated transfers between the same endpoints merge into one record.

Bandwidth is measured in *packets* per the paper: "Instead of using the real
network bandwidth (MB/s) as the bandwidth measurement, we use the number of
packets in a flow, since the real load in the emulator depends on the number
of packets it processes."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.packet import PacketTrain

__all__ = ["FlowRecord", "NetFlowCollector", "GRANULARITIES"]

GRANULARITIES = ("flow", "pair")


@dataclass
class FlowRecord:
    """One accumulated NetFlow record.

    ``first``/``last`` bound the record's activity in virtual time; the
    record's average bandwidth is ``packets / (last - first)`` as in a real
    NetFlow export.
    """

    router: int
    src: int
    dst: int
    flow_id: int  # 0 when granularity="pair"
    out_link: int
    packets: int
    nbytes: float
    first: float
    last: float

    @property
    def duration(self) -> float:
        return self.last - self.first

    @property
    def mean_packet_rate(self) -> float:
        """Packets per second over the record's active span."""
        span = max(self.duration, 1e-9)
        return self.packets / span


class NetFlowCollector:
    """Accumulates flow records during an emulation run."""

    def __init__(self, granularity: str = "flow") -> None:
        if granularity not in GRANULARITIES:
            raise ValueError(
                f"granularity must be one of {GRANULARITIES}, got "
                f"{granularity!r}"
            )
        self.granularity = granularity
        self._records: dict[tuple, FlowRecord] = {}
        self.events_seen = 0

    def record(
        self, time: float, router: int, out_link: int, train: PacketTrain
    ) -> None:
        """Account one forwarding event at a router (kernel hook)."""
        self.events_seen += 1
        if self.granularity == "flow":
            key = (router, out_link, train.flow_id)
            flow_id = train.flow_id
        else:
            key = (router, out_link, train.src, train.dst)
            flow_id = 0
        rec = self._records.get(key)
        if rec is None:
            self._records[key] = FlowRecord(
                router=router, src=train.src, dst=train.dst, flow_id=flow_id,
                out_link=out_link, packets=train.count, nbytes=train.nbytes,
                first=time, last=time,
            )
        else:
            rec.packets += train.count
            rec.nbytes += train.nbytes
            rec.first = min(rec.first, time)
            rec.last = max(rec.last, time)

    def records(self) -> list[FlowRecord]:
        """All records, deterministically ordered."""
        return sorted(
            self._records.values(),
            key=lambda r: (r.router, r.out_link, r.src, r.dst, r.flow_id),
        )

    def records_at(self, router: int) -> list[FlowRecord]:
        """Records collected at one router (its local dump file)."""
        return [r for r in self.records() if r.router == router]

    @property
    def n_records(self) -> int:
        return len(self._records)
