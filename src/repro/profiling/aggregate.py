"""Aggregation of NetFlow records into partition-ready load data.

"Parsing the dump files allows computation of the aggregated traffic on
every router and link in the network" (§3.3).  :class:`ProfileData` holds:

- per-node packet loads (router forwarding work from its own records; host
  send/receive work reconstructed from the access-router records; live
  injection overhead from the emulator's injection log),
- per-link packet loads,
- a per-node time series (each record's packets spread uniformly over its
  [first, last] activity span — the standard NetFlow rate assumption),

everything the PROFILE mapping approach needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.trace import INJECTED, EventTrace
from repro.profiling.netflow import FlowRecord, NetFlowCollector
from repro.topology.network import Network

__all__ = ["ProfileData"]


def _spread_bins(first: float, last: float, interval: float, n_bins: int):
    """The record's active bin range ``(b0, b1)`` (inclusive)."""
    b0 = min(int(first / interval), n_bins - 1)
    b1 = min(int(last / interval), n_bins - 1)
    return b0, b1


def _profile_block(block: tuple[int, int], shared) -> tuple:
    """Flattened add-contributions for one slice of the record stream.

    Returns ``(np_nodes, np_vals, lp_links, lp_vals, ns_nodes, ns_bins,
    ns_vals)`` — the exact element-wise additions the sequential loop in
    :meth:`ProfileData.from_records_reference` performs for these
    records, **in the same order** (per record: router, then conditional
    source host, then conditional destination host; spread bins in
    ascending order).  The parent concatenates blocks in record order and
    folds each stream with a single unbuffered ``np.add.at``, which
    applies the same per-element add sequence as the scalar loop — so
    the parallel build is bit-identical to the sequential one.
    """
    records, host_links, host_neighbors, interval, n_bins = shared
    start, stop = block
    np_nodes: list[int] = []
    np_vals: list[float] = []
    lp_links: list[int] = []
    lp_vals: list[float] = []
    ns_nodes: list[int] = []
    ns_bins: list[int] = []
    ns_vals: list[float] = []

    def emit(node: int, packets: float, first: float, last: float) -> None:
        np_nodes.append(node)
        np_vals.append(packets)
        b0, b1 = _spread_bins(first, last, interval, n_bins)
        if b1 <= b0:
            ns_nodes.append(node)
            ns_bins.append(b0)
            ns_vals.append(packets)
        else:
            share = packets / (b1 - b0 + 1)
            for b in range(b0, b1 + 1):
                ns_nodes.append(node)
                ns_bins.append(b)
                ns_vals.append(share)

    for rec in records[start:stop]:
        lp_links.append(rec.out_link)
        lp_vals.append(rec.packets)
        emit(rec.router, rec.packets, rec.first, rec.last)
        src_nbrs = host_neighbors.get(rec.src)
        if src_nbrs is not None and rec.router in src_nbrs:
            emit(rec.src, rec.packets, rec.first, rec.last)
        dst_links = host_links.get(rec.dst)
        if dst_links is not None and rec.out_link in dst_links:
            emit(rec.dst, rec.packets, rec.first, rec.last)

    return (
        np.asarray(np_nodes, dtype=np.int64),
        np.asarray(np_vals, dtype=np.float64),
        np.asarray(lp_links, dtype=np.int64),
        np.asarray(lp_vals, dtype=np.float64),
        np.asarray(ns_nodes, dtype=np.int64),
        np.asarray(ns_bins, dtype=np.int64),
        np.asarray(ns_vals, dtype=np.float64),
    )


@dataclass
class ProfileData:
    """Aggregated profile of one emulation run.

    Attributes
    ----------
    node_packets:
        ``float64[n_nodes]`` — total packets processed per virtual node.
    link_packets:
        ``float64[n_links]`` — total packets carried per link (both
        directions).
    node_series:
        ``float64[n_nodes, n_bins]`` — per-node packets per interval.
    interval, duration:
        Binning parameters (seconds).
    """

    node_packets: np.ndarray
    link_packets: np.ndarray
    node_series: np.ndarray
    interval: float
    duration: float

    @property
    def n_bins(self) -> int:
        return self.node_series.shape[1]

    def lp_series(self, parts: np.ndarray) -> np.ndarray:
        """Per-engine-node load series under a mapping, ``(k, n_bins)``."""
        from repro.core.aggregate import accumulate_rates

        parts = np.asarray(parts, dtype=np.int64)
        k = int(parts.max()) + 1
        return accumulate_rates(parts, self.node_series, k)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _host_incidence(net: Network) -> tuple[dict, dict]:
        """Incident links / neighbor routers per host, for send/receive
        reconstruction."""
        host_links = {
            h.node_id: {link.link_id for _, link in net.neighbors(h.node_id)}
            for h in net.hosts()
        }
        host_neighbors = {
            h.node_id: {nbr for nbr, _ in net.neighbors(h.node_id)}
            for h in net.hosts()
        }
        return host_links, host_neighbors

    @classmethod
    def from_records(
        cls,
        records: list[FlowRecord],
        net: Network,
        duration: float,
        interval: float = 5.0,
        injections: tuple[np.ndarray, np.ndarray] | None = None,
        *,
        workers: int = 0,
        pool=None,
        telemetry=None,
    ) -> "ProfileData":
        """Build from parsed NetFlow records.

        Parameters
        ----------
        records:
            Parsed dump records.
        injections:
            Optional ``(host_ids, times)`` arrays of live-injection events
            (the paper measures injection overhead separately from NetFlow).
        workers:
            ``>= 2`` fans record-block aggregation across a
            :func:`repro.runtime.pmap.parallel_map` pool, **bit-identical**
            to the sequential build (see :func:`_profile_block`); ``0``/``1``
            runs the sequential reference loop.
        pool:
            Optional :class:`repro.runtime.pmap.PmapPool` to reuse across
            calls (service mode); records are shipped since the pool's
            fork predates them.
        """
        if workers and workers >= 2 and len(records) > 1:
            return cls._from_records_parallel(
                records, net, duration, interval, injections,
                workers=workers, pool=pool, telemetry=telemetry,
            )
        return cls.from_records_reference(
            records, net, duration, interval, injections,
        )

    @classmethod
    def from_records_reference(
        cls,
        records: list[FlowRecord],
        net: Network,
        duration: float,
        interval: float = 5.0,
        injections: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "ProfileData":
        """The sequential scalar aggregation loop — the parity oracle for
        the parallel fold path."""
        if duration <= 0 or interval <= 0:
            raise ValueError("duration and interval must be positive")
        n = net.n_nodes
        n_bins = max(1, int(np.ceil(duration / interval)))
        node_packets = np.zeros(n, dtype=np.float64)
        link_packets = np.zeros(net.n_links, dtype=np.float64)
        node_series = np.zeros((n, n_bins), dtype=np.float64)

        host_links, host_neighbors = cls._host_incidence(net)

        def spread(node: int, packets: float, first: float, last: float):
            """Distribute packets uniformly over the record's active bins."""
            b0, b1 = _spread_bins(first, last, interval, n_bins)
            if b1 <= b0:
                node_series[node, b0] += packets
            else:
                node_series[node, b0 : b1 + 1] += packets / (b1 - b0 + 1)

        for rec in records:
            node_packets[rec.router] += rec.packets
            link_packets[rec.out_link] += rec.packets
            spread(rec.router, rec.packets, rec.first, rec.last)
            # Host send work: the record sits at the source's access router.
            src_nbrs = host_neighbors.get(rec.src)
            if src_nbrs is not None and rec.router in src_nbrs:
                node_packets[rec.src] += rec.packets
                spread(rec.src, rec.packets, rec.first, rec.last)
            # Host receive work: the record forwards onto the destination's
            # access link.
            dst_links = host_links.get(rec.dst)
            if dst_links is not None and rec.out_link in dst_links:
                node_packets[rec.dst] += rec.packets
                spread(rec.dst, rec.packets, rec.first, rec.last)

        cls._fold_injections(
            node_packets, node_series, injections, interval, n_bins
        )
        return cls(
            node_packets=node_packets, link_packets=link_packets,
            node_series=node_series, interval=float(interval),
            duration=float(duration),
        )

    @classmethod
    def _from_records_parallel(
        cls,
        records: list[FlowRecord],
        net: Network,
        duration: float,
        interval: float,
        injections: tuple[np.ndarray, np.ndarray] | None,
        *,
        workers: int,
        pool=None,
        telemetry=None,
    ) -> "ProfileData":
        """Fan :func:`_profile_block` over record blocks, fold in order."""
        from repro.runtime.pmap import parallel_map

        if duration <= 0 or interval <= 0:
            raise ValueError("duration and interval must be positive")
        n = net.n_nodes
        n_bins = max(1, int(np.ceil(duration / interval)))
        host_links, host_neighbors = cls._host_incidence(net)
        shared = (records, host_links, host_neighbors, float(interval), n_bins)

        block = max(1, -(-len(records) // max(workers, 1)))
        blocks = [
            (start, min(start + block, len(records)))
            for start in range(0, len(records), block)
        ]
        kwargs = dict(
            workers=workers, shared=shared, telemetry=telemetry,
        )
        if pool is not None:
            # A reused pool forked before these records existed: ship the
            # shared tuple by pickle instead of relying on inheritance.
            kwargs.update(pool=pool, generation=id(records), ship=True)
        outs = parallel_map(_profile_block, blocks, **kwargs)

        node_packets = np.zeros(n, dtype=np.float64)
        link_packets = np.zeros(net.n_links, dtype=np.float64)
        node_series = np.zeros((n, n_bins), dtype=np.float64)
        # One unbuffered fold per stream, blocks concatenated in record
        # order — the same per-element add sequence as the scalar loop.
        np.add.at(
            node_packets,
            np.concatenate([o[0] for o in outs]),
            np.concatenate([o[1] for o in outs]),
        )
        np.add.at(
            link_packets,
            np.concatenate([o[2] for o in outs]),
            np.concatenate([o[3] for o in outs]),
        )
        np.add.at(
            node_series,
            (
                np.concatenate([o[4] for o in outs]),
                np.concatenate([o[5] for o in outs]),
            ),
            np.concatenate([o[6] for o in outs]),
        )
        cls._fold_injections(
            node_packets, node_series, injections, interval, n_bins
        )
        return cls(
            node_packets=node_packets, link_packets=link_packets,
            node_series=node_series, interval=float(interval),
            duration=float(duration),
        )

    @staticmethod
    def _fold_injections(
        node_packets: np.ndarray,
        node_series: np.ndarray,
        injections: tuple[np.ndarray, np.ndarray] | None,
        interval: float,
        n_bins: int,
    ) -> None:
        if injections is None:
            return
        hosts, times = injections
        hosts = np.asarray(hosts, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        np.add.at(node_packets, hosts, 1.0)
        bins = np.minimum((times / interval).astype(np.int64), n_bins - 1)
        np.add.at(node_series, (hosts, bins), 1.0)

    @classmethod
    def from_run(
        cls,
        collector: NetFlowCollector,
        trace: EventTrace,
        net: Network,
        interval: float = 5.0,
        *,
        workers: int = 0,
        pool=None,
        telemetry=None,
    ) -> "ProfileData":
        """Convenience: records from the collector + injections from the
        kernel trace of the same run."""
        mask = trace.next_node == INJECTED
        injections = (trace.node[mask], trace.time[mask])
        return cls.from_records(
            collector.records(), net, duration=trace.duration,
            interval=interval, injections=injections,
            workers=workers, pool=pool, telemetry=telemetry,
        )
