"""Aggregation of NetFlow records into partition-ready load data.

"Parsing the dump files allows computation of the aggregated traffic on
every router and link in the network" (§3.3).  :class:`ProfileData` holds:

- per-node packet loads (router forwarding work from its own records; host
  send/receive work reconstructed from the access-router records; live
  injection overhead from the emulator's injection log),
- per-link packet loads,
- a per-node time series (each record's packets spread uniformly over its
  [first, last] activity span — the standard NetFlow rate assumption),

everything the PROFILE mapping approach needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.trace import INJECTED, EventTrace
from repro.profiling.netflow import FlowRecord, NetFlowCollector
from repro.topology.network import Network

__all__ = ["ProfileData"]


@dataclass
class ProfileData:
    """Aggregated profile of one emulation run.

    Attributes
    ----------
    node_packets:
        ``float64[n_nodes]`` — total packets processed per virtual node.
    link_packets:
        ``float64[n_links]`` — total packets carried per link (both
        directions).
    node_series:
        ``float64[n_nodes, n_bins]`` — per-node packets per interval.
    interval, duration:
        Binning parameters (seconds).
    """

    node_packets: np.ndarray
    link_packets: np.ndarray
    node_series: np.ndarray
    interval: float
    duration: float

    @property
    def n_bins(self) -> int:
        return self.node_series.shape[1]

    def lp_series(self, parts: np.ndarray) -> np.ndarray:
        """Per-engine-node load series under a mapping, ``(k, n_bins)``."""
        from repro.core.aggregate import accumulate_rates

        parts = np.asarray(parts, dtype=np.int64)
        k = int(parts.max()) + 1
        return accumulate_rates(parts, self.node_series, k)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(
        cls,
        records: list[FlowRecord],
        net: Network,
        duration: float,
        interval: float = 5.0,
        injections: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "ProfileData":
        """Build from parsed NetFlow records.

        Parameters
        ----------
        records:
            Parsed dump records.
        injections:
            Optional ``(host_ids, times)`` arrays of live-injection events
            (the paper measures injection overhead separately from NetFlow).
        """
        if duration <= 0 or interval <= 0:
            raise ValueError("duration and interval must be positive")
        n = net.n_nodes
        n_bins = max(1, int(np.ceil(duration / interval)))
        node_packets = np.zeros(n, dtype=np.float64)
        link_packets = np.zeros(net.n_links, dtype=np.float64)
        node_series = np.zeros((n, n_bins), dtype=np.float64)

        # Incident links per host for send/receive reconstruction.
        host_links = {
            h.node_id: {link.link_id for _, link in net.neighbors(h.node_id)}
            for h in net.hosts()
        }
        host_neighbors = {
            h.node_id: {nbr for nbr, _ in net.neighbors(h.node_id)}
            for h in net.hosts()
        }

        def spread(node: int, packets: float, first: float, last: float):
            """Distribute packets uniformly over the record's active bins."""
            b0 = min(int(first / interval), n_bins - 1)
            b1 = min(int(last / interval), n_bins - 1)
            if b1 <= b0:
                node_series[node, b0] += packets
            else:
                node_series[node, b0 : b1 + 1] += packets / (b1 - b0 + 1)

        for rec in records:
            node_packets[rec.router] += rec.packets
            link_packets[rec.out_link] += rec.packets
            spread(rec.router, rec.packets, rec.first, rec.last)
            # Host send work: the record sits at the source's access router.
            src_nbrs = host_neighbors.get(rec.src)
            if src_nbrs is not None and rec.router in src_nbrs:
                node_packets[rec.src] += rec.packets
                spread(rec.src, rec.packets, rec.first, rec.last)
            # Host receive work: the record forwards onto the destination's
            # access link.
            dst_links = host_links.get(rec.dst)
            if dst_links is not None and rec.out_link in dst_links:
                node_packets[rec.dst] += rec.packets
                spread(rec.dst, rec.packets, rec.first, rec.last)

        if injections is not None:
            hosts, times = injections
            hosts = np.asarray(hosts, dtype=np.int64)
            times = np.asarray(times, dtype=np.float64)
            np.add.at(node_packets, hosts, 1.0)
            bins = np.minimum((times / interval).astype(np.int64), n_bins - 1)
            np.add.at(node_series, (hosts, bins), 1.0)

        return cls(
            node_packets=node_packets, link_packets=link_packets,
            node_series=node_series, interval=float(interval),
            duration=float(duration),
        )

    @classmethod
    def from_run(
        cls,
        collector: NetFlowCollector,
        trace: EventTrace,
        net: Network,
        interval: float = 5.0,
    ) -> "ProfileData":
        """Convenience: records from the collector + injections from the
        kernel trace of the same run."""
        mask = trace.next_node == INJECTED
        injections = (trace.node[mask], trace.time[mask])
        return cls.from_records(
            collector.records(), net, duration=trace.duration,
            interval=interval, injections=injections,
        )
