"""NetFlow-like traffic profiling (the PROFILE approach's data source).

§3.3: "we implement the Cisco NetFlow-like function on each emulated router.
This functionality is used to record every traffic flow on each router to a
local file.  The dump files record the average bandwidth and duration of
every flow on every router."

- :class:`repro.profiling.netflow.NetFlowCollector` — hooked into the
  emulation kernel; accumulates per-router flow records at a configurable
  granularity.
- :mod:`repro.profiling.dump` — dump-file writer/parser (one file per
  router, plain text).
- :class:`repro.profiling.aggregate.ProfileData` — parsed records turned
  into per-link / per-node packet loads and per-node time series.
"""

from repro.profiling.aggregate import ProfileData
from repro.profiling.dump import load_dump_dir, parse_records, write_dump_dir
from repro.profiling.netflow import FlowRecord, NetFlowCollector

__all__ = [
    "NetFlowCollector",
    "FlowRecord",
    "ProfileData",
    "write_dump_dir",
    "load_dump_dir",
    "parse_records",
]
