"""The recorded network traffic trace (transfer log) of an emulation run."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.kernel import EmulationKernel

__all__ = ["TransferTrace"]


@dataclass
class TransferTrace:
    """Columnar record of every transfer injected during a run.

    Attributes
    ----------
    time, src, dst, nbytes, flow:
        Parallel arrays, one row per transfer, ordered by injection time.
    tags:
        Transfer labels (kept as a list of str — small, human-oriented).
    duration:
        Virtual horizon of the recorded run.
    """

    time: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    nbytes: np.ndarray
    flow: np.ndarray
    tags: list[str]
    duration: float

    @property
    def n_transfers(self) -> int:
        return len(self.time)

    @property
    def total_bytes(self) -> float:
        return float(self.nbytes.sum())

    @classmethod
    def from_kernel(cls, kernel: EmulationKernel, duration: float) -> "TransferTrace":
        """Capture the transfer log of a finished kernel run."""
        log = sorted(kernel.transfer_log)
        return cls(
            time=np.array([e[0] for e in log], dtype=np.float64),
            src=np.array([e[1] for e in log], dtype=np.int32),
            dst=np.array([e[2] for e in log], dtype=np.int32),
            nbytes=np.array([e[3] for e in log], dtype=np.float64),
            flow=np.array([e[4] for e in log], dtype=np.int32),
            tags=[e[5] for e in log],
            duration=float(duration),
        )

    def save(self, path) -> None:
        """Persist to ``.npz`` (tags joined with newlines)."""
        np.savez_compressed(
            path, time=self.time, src=self.src, dst=self.dst,
            nbytes=self.nbytes, flow=self.flow,
            tags=np.array("\n".join(self.tags)),
            duration=np.array(self.duration),
        )

    @classmethod
    def load(cls, path) -> "TransferTrace":
        data = np.load(path)
        tags_blob = str(data["tags"])
        return cls(
            time=data["time"], src=data["src"], dst=data["dst"],
            nbytes=data["nbytes"], flow=data["flow"],
            tags=tags_blob.split("\n") if tags_blob else [],
            duration=float(data["duration"]),
        )
