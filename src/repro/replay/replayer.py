"""Replaying a transfer trace to measure network emulation time.

The replayer re-executes the recorded transfers through a fresh emulation
kernel (same network, same routes, no application callbacks — the
application's "real computation" is gone) and evaluates the requested
mapping with zero compute demand.  The conservative-window cost model skips
idle windows, so the measured wall time is the as-fast-as-possible network
emulation time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.costmodel import CostModel
from repro.engine.kernel import EmulationKernel
from repro.engine.packet import Transfer
from repro.engine.parallel import EmulationMetrics, evaluate_mapping
from repro.replay.trace import TransferTrace
from repro.routing.tables import RoutingTables
from repro.topology.network import Network

__all__ = ["ReplayResult", "replay"]


@dataclass
class ReplayResult:
    """Outcome of one replay run under one mapping."""

    metrics: EmulationMetrics
    n_transfers: int

    @property
    def network_emulation_time(self) -> float:
        """The Figure 9/10 quantity."""
        return self.metrics.wall_network


def replay(
    trace: TransferTrace,
    net: Network,
    tables: RoutingTables,
    parts: np.ndarray,
    cost: CostModel | None = None,
    train_packets: int = 32,
) -> ReplayResult:
    """Replay a recorded traffic trace and score ``parts``.

    Transfers are injected open-loop at their recorded times (preserving the
    application's causal message order, which the recording embodies) and
    the mapping is evaluated without compute demand.
    """
    kernel = EmulationKernel(net, tables, train_packets=train_packets)
    for i in range(trace.n_transfers):
        kernel.submit_transfer(
            Transfer(
                src=int(trace.src[i]), dst=int(trace.dst[i]),
                nbytes=float(trace.nbytes[i]), flow_id=int(trace.flow[i]),
                tag=trace.tags[i] if i < len(trace.tags) else "replay",
            ),
            float(trace.time[i]),
        )
    event_trace = kernel.run(until=trace.duration)
    metrics = evaluate_mapping(event_trace, net, parts, cost=cost, compute=None)
    return ReplayResult(metrics=metrics, n_transfers=trace.n_transfers)
