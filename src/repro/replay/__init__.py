"""Trace-based replay — "network emulation time in isolation".

§4.1.1: "MaSSF records all network traffic trace of an emulation execution,
and then replays it without real computation in the application.  When
replaying, it tries to send out traffic as fast as possible, but still
follows the real application causality and message logic order.  This is a
direct measurement of the mapping approaches."

- :class:`repro.replay.trace.TransferTrace` — the recorded traffic trace
  (every transfer's source, destination, size, injection time).
- :func:`repro.replay.replayer.replay` — re-executes the trace through the
  emulation kernel (open loop: injection times come from the recording, so
  causal order is preserved) and scores a mapping with zero compute demand;
  idle virtual time costs nothing, i.e. the replay runs as fast as the
  network emulation allows.
"""

from repro.replay.replayer import ReplayResult, replay
from repro.replay.trace import TransferTrace

__all__ = ["TransferTrace", "replay", "ReplayResult"]
