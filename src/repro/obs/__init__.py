"""Runtime observability: structured telemetry for the whole pipeline.

- :mod:`repro.obs.telemetry` — the :class:`~repro.obs.telemetry.Telemetry`
  collector (spans / counters / gauges / event series / load timelines)
  with a near-zero-cost disabled default.
- :mod:`repro.obs.export` — JSON and CSV snapshot export.
- :mod:`repro.obs.report` — the human-readable ``massf stats`` report.

Typical use::

    from repro.obs import Telemetry

    tel = Telemetry()
    result = repro.sweep("campus", seeds=(1, 2), telemetry=tel)
    repro.obs.write_json(tel, "telemetry.json")
    print(repro.obs.render_report(tel))
"""

from repro.obs.export import (
    load_json,
    to_json,
    write_csv_dir,
    write_json,
)
from repro.obs.report import render_report
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    SCHEMA_VERSION,
    Telemetry,
    ensure_telemetry,
)

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "SCHEMA_VERSION",
    "ensure_telemetry",
    "to_json",
    "write_json",
    "load_json",
    "write_csv_dir",
    "render_report",
]
