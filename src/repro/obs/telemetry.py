"""Structured runtime telemetry: spans, counters, gauges, event series.

The paper's thesis is that you cannot balance what you cannot measure
(PROFILE beats TOP/PLACE precisely because it feeds *measured* load back
into the partitioner).  This module applies the same idea to the harness
itself: a :class:`Telemetry` object threads through the pipeline —
partitioning, routing, the emulation kernel, mapping evaluation, the grid
executor and the sweep — and records

- **spans** — hierarchical wall-clock timers (``sweep/cell/routing``),
  aggregated per path (count / total / min / max);
- **counters** — monotonic totals (cache hits, retries, packets);
- **gauges** — last-written values (lookahead, queue depth);
- **events** — append-only rows per named series (per-cell completions,
  live sweep progress);
- **timelines** — per-engine-node load matrices binned by virtual time,
  the raw data behind the paper's Figure 2/8 plots (and the substrate a
  future dynamic-remapping PR needs).

The default everywhere is :data:`NULL_TELEMETRY`, a disabled instance
whose methods return immediately — the instrumented hot paths cost one
attribute check when telemetry is off.  Everything recorded is plain
JSON-serializable data, so a snapshot pickles across process boundaries
(worker → parent merge in :mod:`repro.runtime.executor`) and exports to
JSON/CSV (:mod:`repro.obs.export`).
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

import numpy as np

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "ensure_telemetry",
    "SCHEMA_VERSION",
]

#: Version stamp embedded in every exported snapshot.
SCHEMA_VERSION = 1


def _json_safe(value):
    """Recursively coerce numpy scalars/arrays into plain Python types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class _NullSpan:
    """Reusable no-op context manager returned by disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; aggregates into the owner on exit."""

    __slots__ = ("_tel", "_name", "_start")

    def __init__(self, tel: "Telemetry", name: str) -> None:
        self._tel = tel
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._tel._stack.append(self._name)
        self._start = self._tel._clock()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = self._tel._clock() - self._start
        stack = self._tel._stack
        path = "/".join(stack)
        if stack and stack[-1] == self._name:
            stack.pop()
        self._tel._record_span(path, elapsed)
        return False


class Telemetry:
    """Collector of spans, counters, gauges, event series and timelines.

    Parameters
    ----------
    enabled:
        ``False`` turns every method into a near-zero-cost no-op; the
        shared :data:`NULL_TELEMETRY` instance is the library-wide default.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, enabled: bool = True, clock=time.perf_counter) -> None:
        self.enabled = bool(enabled)
        self._clock = clock
        # path -> {"count", "total_s", "min_s", "max_s"}
        self.spans: dict[str, dict] = {}
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        # series name -> list of row dicts
        self.series: dict[str, list[dict]] = {}
        # timeline name -> list of {"interval", "loads", **labels}
        self.timelines: dict[str, list[dict]] = {}
        self._stack: list[str] = []
        # live listeners: callables fed (series, row) on every event()
        self._listeners: list = []

    # ------------------------------------------------------------------ #
    # Recording API
    # ------------------------------------------------------------------ #
    def span(self, name: str):
        """Context manager timing one phase; nests via the active stack."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def _record_span(self, path: str, elapsed: float) -> None:
        agg = self.spans.get(path)
        if agg is None:
            self.spans[path] = {
                "count": 1, "total_s": elapsed,
                "min_s": elapsed, "max_s": elapsed,
            }
        else:
            agg["count"] += 1
            agg["total_s"] += elapsed
            if elapsed < agg["min_s"]:
                agg["min_s"] = elapsed
            if elapsed > agg["max_s"]:
                agg["max_s"] = elapsed

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to the monotonic counter ``name``."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        if not self.enabled:
            return
        self.gauges[name] = float(value)

    def event(self, series: str, **fields) -> None:
        """Append one row to the named event series."""
        if not self.enabled:
            return
        row = _json_safe(fields)
        self.series.setdefault(series, []).append(row)
        for listener in tuple(self._listeners):
            try:
                listener(series, row)
            except Exception:
                # A broken subscriber (e.g. a disconnected SSE client)
                # must never take the instrumented hot path down with it.
                pass

    def subscribe(self, listener) -> "Callable[[], None]":
        """Register ``listener(series, row)`` for every future event.

        Returns an unsubscribe callable.  Used by the service's SSE
        endpoint to stream progress rows live; listener exceptions are
        swallowed so a dead client cannot poison recording.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def timeline(self, name: str, loads, interval: float, **labels) -> None:
        """Record a ``(k, n_bins)`` per-engine-node load matrix.

        ``interval`` is the virtual-time width of each bin; ``labels``
        identify the run (setup / seed / approach).  Multiple records under
        one name accumulate — merging across processes concatenates them.
        """
        if not self.enabled:
            return
        entry = {"interval": float(interval),
                 "loads": _json_safe(np.asarray(loads))}
        entry.update(_json_safe(labels))
        self.timelines.setdefault(name, []).append(entry)

    # ------------------------------------------------------------------ #
    # Aggregation / transport
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        # Listeners are process-local (SSE bridges, test probes) and not
        # generally picklable; a transported snapshot starts without them.
        state = dict(self.__dict__)
        state["_listeners"] = []
        return state

    def merge(self, other) -> None:
        """Fold another collector (or its :meth:`to_dict` snapshot) in.

        Spans aggregate (counts/totals add, min/max combine), counters add,
        gauges take the other side's latest value, series and timelines
        concatenate.  Used by the grid executor to absorb worker-process
        telemetry into the parent's collector.
        """
        if not self.enabled:
            return
        data = other.to_dict() if isinstance(other, Telemetry) else other
        if not data:
            return
        for path, agg in data.get("spans", {}).items():
            mine = self.spans.get(path)
            if mine is None:
                self.spans[path] = dict(agg)
            else:
                mine["count"] += agg["count"]
                mine["total_s"] += agg["total_s"]
                mine["min_s"] = min(mine["min_s"], agg["min_s"])
                mine["max_s"] = max(mine["max_s"], agg["max_s"])
        for name, value in data.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in data.get("gauges", {}).items():
            self.gauges[name] = value
        for name, rows in data.get("series", {}).items():
            self.series.setdefault(name, []).extend(rows)
        for name, entries in data.get("timelines", {}).items():
            self.timelines.setdefault(name, []).extend(entries)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (the telemetry wire/export format)."""
        return {
            "schema": SCHEMA_VERSION,
            "spans": {path: dict(agg) for path, agg in self.spans.items()},
            "counters": _json_safe(dict(self.counters)),
            "gauges": _json_safe(dict(self.gauges)),
            "series": {name: list(rows) for name, rows in self.series.items()},
            "timelines": {
                name: list(entries)
                for name, entries in self.timelines.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Telemetry":
        """Rebuild a collector from a :meth:`to_dict` snapshot."""
        tel = cls(enabled=True)
        tel.merge(data)
        return tel

    # ------------------------------------------------------------------ #
    def span_paths(self) -> Iterator[str]:
        """Recorded span paths in sorted (tree pre-order) order."""
        return iter(sorted(self.spans))

    def __bool__(self) -> bool:
        return self.enabled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.enabled:
            return "<Telemetry disabled>"
        return (
            f"<Telemetry {len(self.spans)} spans, "
            f"{len(self.counters)} counters, "
            f"{sum(len(r) for r in self.series.values())} events>"
        )


#: The shared disabled collector used as the default everywhere.
NULL_TELEMETRY = Telemetry(enabled=False)


def ensure_telemetry(telemetry: "Telemetry | None") -> Telemetry:
    """Normalize an optional telemetry argument (``None`` → disabled)."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
