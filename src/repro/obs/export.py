"""Telemetry snapshot export: JSON documents and CSV tables.

The JSON document is the snapshot :meth:`repro.obs.telemetry.Telemetry.to_dict`
produces (schema documented in EXPERIMENTS.md); CSV export flattens the
spans, counters and any event series into one file each for spreadsheet
consumption.
"""

from __future__ import annotations

import csv
import io
import json
import os
import tempfile
from pathlib import Path

from repro.obs.telemetry import Telemetry

__all__ = [
    "to_json",
    "write_json",
    "load_json",
    "spans_csv",
    "counters_csv",
    "series_csv",
    "write_csv_dir",
]


def _as_dict(telemetry: "Telemetry | dict") -> dict:
    if isinstance(telemetry, Telemetry):
        return telemetry.to_dict()
    return telemetry


def to_json(telemetry: "Telemetry | dict", indent: int = 2) -> str:
    """The telemetry snapshot as a JSON document."""
    return json.dumps(_as_dict(telemetry), indent=indent, sort_keys=True)


def write_json(telemetry: "Telemetry | dict", path) -> None:
    """Write the JSON snapshot to ``path`` (atomic: temp + rename).

    Concurrent writers — parallel sweeps, service jobs — can target the
    same path; readers only ever see a complete document.
    """
    path = Path(path)
    text = to_json(telemetry) + "\n"
    fd, tmp = tempfile.mkstemp(
        dir=path.parent if str(path.parent) else ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_json(path) -> dict:
    """Load a snapshot written by :func:`write_json`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def spans_csv(telemetry: "Telemetry | dict") -> str:
    """Span aggregates as CSV (path, count, total_s, mean_s, min_s, max_s)."""
    data = _as_dict(telemetry)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["path", "count", "total_s", "mean_s", "min_s", "max_s"])
    for path in sorted(data.get("spans", {})):
        agg = data["spans"][path]
        mean = agg["total_s"] / agg["count"] if agg["count"] else 0.0
        writer.writerow([
            path, agg["count"], f"{agg['total_s']:.6f}", f"{mean:.6f}",
            f"{agg['min_s']:.6f}", f"{agg['max_s']:.6f}",
        ])
    return out.getvalue()


def counters_csv(telemetry: "Telemetry | dict") -> str:
    """Counters and gauges as CSV (kind, name, value)."""
    data = _as_dict(telemetry)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["kind", "name", "value"])
    for name in sorted(data.get("counters", {})):
        writer.writerow(["counter", name, data["counters"][name]])
    for name in sorted(data.get("gauges", {})):
        writer.writerow(["gauge", name, data["gauges"][name]])
    return out.getvalue()


def series_csv(telemetry: "Telemetry | dict", name: str) -> str:
    """One event series as CSV; the header is the union of row keys."""
    data = _as_dict(telemetry)
    rows = data.get("series", {}).get(name, [])
    keys: list[str] = []
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(keys)
    for row in rows:
        writer.writerow([row.get(key, "") for key in keys])
    return out.getvalue()


def write_csv_dir(telemetry: "Telemetry | dict", directory) -> list[Path]:
    """Write spans/counters plus every series as CSV files under
    ``directory``; returns the written paths."""
    data = _as_dict(telemetry)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def _write(stem: str, text: str) -> None:
        path = directory / f"{stem}.csv"
        path.write_text(text, encoding="utf-8")
        written.append(path)

    _write("spans", spans_csv(data))
    _write("counters", counters_csv(data))
    for name in sorted(data.get("series", {})):
        safe = name.replace("/", "_").replace(".", "_")
        _write(f"series_{safe}", series_csv(data, name))
    return written
