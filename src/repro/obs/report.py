"""Human-readable rendering of a telemetry snapshot (``massf stats``).

Turns the JSON document a sweep writes (``massf sweep --stats out.json``)
into the run report: per-phase span breakdown, executor / cache counters,
and the per-engine-node load timeline with its fine-grained imbalance
series (computed by
:func:`repro.metrics.imbalance.fine_grained_imbalance_series` — the same
math behind the paper's Figure 8).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.imbalance import fine_grained_imbalance_series
from repro.obs.telemetry import Telemetry

__all__ = ["render_report", "phase_breakdown", "timeline_report"]


def _as_dict(telemetry: "Telemetry | dict") -> dict:
    if isinstance(telemetry, Telemetry):
        return telemetry.to_dict()
    return telemetry


def phase_breakdown(telemetry: "Telemetry | dict") -> str:
    """Span tree as text: one line per path, indented by depth."""
    data = _as_dict(telemetry)
    spans = data.get("spans", {})
    if not spans:
        return "no spans recorded"
    lines = [f"{'phase':<44s} {'calls':>6s} {'total':>9s} {'mean':>9s} "
             f"{'max':>9s}"]
    for path in sorted(spans):
        agg = spans[path]
        depth = path.count("/")
        label = "  " * depth + "/".join(path.split("/")[-2:] if depth
                                        else [path])
        mean = agg["total_s"] / agg["count"] if agg["count"] else 0.0
        lines.append(
            f"{label:<44s} {agg['count']:6d} {agg['total_s']:8.3f}s "
            f"{mean:8.4f}s {agg['max_s']:8.4f}s"
        )
    return "\n".join(lines)


def _counter_section(data: dict) -> str:
    lines = []
    counters = data.get("counters", {})
    gauges = data.get("gauges", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            value = counters[name]
            text = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<42s} {text:>12s}")
        hits = counters.get("cache.hits", 0)
        misses = counters.get("cache.misses", 0)
        if hits or misses:
            rate = hits / (hits + misses)
            lines.append(f"  {'cache hit rate':<42s} {rate:>11.1%}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<42s} {gauges[name]:>12.6g}")
    return "\n".join(lines) if lines else "no counters recorded"


def _sparkline(values: np.ndarray) -> str:
    """Compact unicode intensity strip for one series."""
    blocks = " ▁▂▃▄▅▆▇█"
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return ""
    top = finite.max()
    if top <= 0:
        return blocks[0] * len(values)
    out = []
    for v in values:
        if not np.isfinite(v):
            out.append("·")
        else:
            out.append(blocks[int(round(v / top * (len(blocks) - 1)))])
    return "".join(out)


def timeline_report(
    telemetry: "Telemetry | dict",
    name: str = "engine.load",
    max_bins: int = 60,
) -> str:
    """Per-engine-node load timelines plus fine-grained imbalance.

    Each recorded timeline (one per evaluated cell) renders as per-engine
    totals, a sparkline of each engine node's load over virtual time, and
    the per-interval imbalance series derived from the same matrix.
    """
    data = _as_dict(telemetry)
    entries = data.get("timelines", {}).get(name, [])
    if not entries:
        return f"no '{name}' timelines recorded"
    sections = []
    for entry in entries:
        loads = np.asarray(entry.get("loads", []), dtype=np.float64)
        if loads.ndim != 2 or loads.size == 0:
            continue
        interval = float(entry.get("interval", 0.0))
        labels = {
            k: v for k, v in entry.items()
            if k not in ("loads", "interval")
        }
        label_text = " ".join(
            f"{k}={labels[k]}" for k in sorted(labels)
        ) or name
        if loads.shape[1] > max_bins:
            # Re-bin to at most max_bins columns for terminal rendering.
            factor = -(-loads.shape[1] // max_bins)
            pad = (-loads.shape[1]) % factor
            padded = np.pad(loads, ((0, 0), (0, pad)))
            loads = padded.reshape(loads.shape[0], -1, factor).sum(axis=2)
            interval *= factor
        totals = loads.sum(axis=1)
        lines = [f"{label_text}  (interval {interval:.3g}s, "
                 f"{loads.shape[1]} bins)"]
        for i in range(loads.shape[0]):
            lines.append(
                f"  engine{i:<3d} {totals[i]:>12.0f} pkts "
                f"|{_sparkline(loads[i])}|"
            )
        imb = fine_grained_imbalance_series(loads)
        finite = imb[np.isfinite(imb)]
        mean_text = f"{finite.mean():.3f}" if finite.size else "n/a"
        lines.append(
            f"  imbalance  mean={mean_text:>9s} |{_sparkline(imb)}|"
        )
        sections.append("\n".join(lines))
    return "\n\n".join(sections) if sections else (
        f"no '{name}' timelines recorded"
    )


def _cells_section(data: dict) -> str:
    cells = data.get("series", {}).get("cells", [])
    if not cells:
        return ""
    n_ok = sum(1 for c in cells if c.get("ok"))
    durations = [c.get("duration_s", 0.0) for c in cells]
    lines = [
        f"cells: {n_ok}/{len(cells)} ok, "
        f"{sum(durations):.1f}s total cell time"
    ]
    slowest = sorted(cells, key=lambda c: -c.get("duration_s", 0.0))[:5]
    for cell in slowest:
        status = "ok" if cell.get("ok") else "FAILED"
        lines.append(
            f"  {cell.get('setup', '?')}/{cell.get('app', '?')} "
            f"seed={cell.get('seed', '?')} "
            f"{str(cell.get('approach', '?')):8s} {status} "
            f"{cell.get('duration_s', 0.0):7.2f}s "
            f"x{cell.get('attempts', 1)}"
        )
    return "\n".join(lines)


def _rebalance_section(data: dict) -> str:
    """Migration decisions of an online-rebalanced run (one line each)."""
    events = data.get("series", {}).get("rebalance/migrations", [])
    if not events:
        return ""
    adopted = [e for e in events if e.get("adopted")]
    lines = [
        f"migrations: {len(adopted)} adopted / {len(events)} triggers, "
        f"{sum(e.get('n_moved', len(e.get('routers', []))) for e in adopted)}"
        f" routers, {sum(e.get('cost_bytes', 0) for e in adopted)} bytes"
    ]
    for e in events:
        verdict = "adopted " if e.get("adopted") else "rejected"
        lines.append(
            f"  t={e.get('time', 0.0):7.3f}s {e.get('policy', '?'):<11s} "
            f"{verdict} imb {e.get('imbalance_before', 0.0):.3f} -> "
            f"{e.get('imbalance_after', 0.0):.3f}  "
            f"moved={len(e.get('routers', []))} "
            f"cost={e.get('cost_bytes', 0)}B"
        )
    return "\n".join(lines)


def render_report(telemetry: "Telemetry | dict") -> str:
    """The full ``massf stats`` report for one snapshot."""
    data = _as_dict(telemetry)
    sections = [
        "== phase breakdown ==",
        phase_breakdown(data),
        "",
        "== counters & gauges ==",
        _counter_section(data),
    ]
    cells = _cells_section(data)
    if cells:
        sections += ["", "== grid cells ==", cells]
    rebalance = _rebalance_section(data)
    if rebalance:
        sections += ["", "== online rebalancing ==", rebalance]
        if data.get("timelines", {}).get("rebalance/lp_loads"):
            sections += [
                "",
                "== per-LP load timeline (rebalanced) ==",
                timeline_report(data, "rebalance/lp_loads"),
            ]
    sections += [
        "",
        "== per-engine-node load timeline ==",
        timeline_report(data),
    ]
    return "\n".join(sections)
