"""Fork-shared parallel map over independent work items.

:func:`run_grid` fans out whole experiment cells; this is the lighter
primitive the §3.2 PLACE pipeline needs: map one function over a list of
small work items where every call reads the *same* large read-only object
(routing tables with two dense ``(n, n)`` matrices).  Shipping that object
through pickle once per task would dwarf the work, so it is published to a
module global before the pool starts and reaches the workers by ``fork``
inheritance — never serialized.  Platforms without ``fork`` (and pools of
one) degrade to the inline loop, which produces identical results.

An optional :class:`~repro.runtime.cache.ArtifactCache` short-circuits
items whose artifact already exists; lookups and stores happen in the
parent so worker processes stay write-free.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence, TypeVar

__all__ = ["parallel_map"]

T = TypeVar("T")
R = TypeVar("R")

#: The read-only object shared with forked workers.  Set by the parent just
#: before the pool starts, inherited by fork, cleared afterwards.
_SHARED: object | None = None


def _call(fn: Callable[[Any, object], object], item: Any) -> object:
    return fn(item, _SHARED)


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def parallel_map(
    fn: Callable[[T, object], R],
    items: Sequence[T],
    *,
    workers: int | None = 0,
    shared: object = None,
    cache: Any = None,
    kind: str = "pmap",
    key_of: Callable[[T], tuple] | None = None,
    telemetry: Any = None,
) -> list[R]:
    """Map ``fn(item, shared)`` over ``items``, preserving item order.

    Parameters
    ----------
    fn:
        A module-level function (it crosses the process boundary by name).
        Called as ``fn(item, shared)``.
    workers:
        ``0`` or ``1`` runs inline; ``None`` auto-sizes to
        ``min(len(items), cpu_count)``; otherwise the worker process count.
        Parallel results are bit-identical to inline ones — the fold order
        is the item order either way.
    shared:
        Large read-only state reaching workers by fork inheritance, never
        pickled.  Mutations inside workers are invisible to the parent.
    cache, kind, key_of:
        With a cache and a ``key_of(item) -> key_parts`` function, each
        item's artifact is looked up under ``kind`` before any computation
        and stored after; only misses are dispatched to the pool.
    telemetry:
        Optional :class:`repro.obs.telemetry.Telemetry` for pool counters.
    """
    from repro.obs.telemetry import ensure_telemetry

    tel = ensure_telemetry(telemetry)
    items = list(items)
    results: list = [None] * len(items)

    # Parent-side cache pass: hits fill in directly, misses go to the pool.
    miss_idx = list(range(len(items)))
    keys: dict[int, str] = {}
    if cache is not None and key_of is not None:
        miss_idx = []
        for i, item in enumerate(items):
            key = cache.key_of(kind, *key_of(item))
            found, value = cache.lookup(kind, key)
            if found:
                cache.stats._bump(kind, "hits")
                results[i] = value
            else:
                cache.stats._bump(kind, "misses")
                keys[i] = key
                miss_idx.append(i)

    if workers is None:
        workers = max(1, min(len(miss_idx), os.cpu_count() or 1))
    use_pool = workers > 1 and len(miss_idx) > 1 and _fork_available()
    tel.count("pmap.items", len(items))
    tel.count("pmap.computed", len(miss_idx))
    if not use_pool:
        for i in miss_idx:
            results[i] = fn(items[i], shared)
    else:
        tel.count("pmap.pool_items", len(miss_idx))
        tel.gauge("pmap.workers", workers)
        computed = _pool_map(fn, [items[i] for i in miss_idx],
                             shared, workers)
        for i, value in zip(miss_idx, computed):
            results[i] = value

    if cache is not None and key_of is not None:
        for i in miss_idx:
            cache.store(kind, keys[i], results[i])
    return results


def _pool_map(
    fn: Callable[[Any, object], object],
    miss_items: list,
    shared: object,
    workers: int,
) -> list:
    """Run the miss set on a forked pool; results in submission order."""
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    global _SHARED
    ctx = multiprocessing.get_context("fork")
    _SHARED = shared
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(miss_items)), mp_context=ctx
        ) as pool:
            futures = [pool.submit(_call, fn, item) for item in miss_items]
            return [fut.result() for fut in futures]
    finally:
        _SHARED = None
