"""Fork-shared parallel map over independent work items.

:func:`run_grid` fans out whole experiment cells; this is the lighter
primitive the §3.2 PLACE pipeline needs: map one function over a list of
small work items where every call reads the *same* large read-only object
(routing tables with two dense ``(n, n)`` matrices).  Shipping that object
through pickle once per task would dwarf the work, so it is published to a
module global before the pool starts and reaches the workers by ``fork``
inheritance — never serialized.  Platforms without ``fork`` (and pools of
one) degrade to the inline loop, which produces identical results.

Repeated calls can reuse a :class:`PmapPool`, which keeps the forked
workers alive between calls.  Fork inheritance is copy-on-write, so a
persistent pool is only safe while the shared object is unchanged: every
call carries a ``generation`` token, the pool re-forks whenever the token
(or the shared object's identity) moves, and each task re-checks the
token inside the worker — a stale worker raises :class:`StaleSharedError`
instead of silently serving pre-change rows.  Shared state that must stay
live *without* re-forking belongs in :mod:`repro.runtime.shm` segments,
whose mappings are shared (not copied) across the fork.

An optional :class:`~repro.runtime.cache.ArtifactCache` short-circuits
items whose artifact already exists; lookups and stores happen in the
parent so worker processes stay write-free.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence, TypeVar

__all__ = ["parallel_map", "PmapPool", "StaleSharedError"]

T = TypeVar("T")
R = TypeVar("R")

#: The read-only object shared with forked workers.  Set by the parent just
#: before the pool starts, inherited by fork, cleared afterwards (per-call
#: pools) or when the owning :class:`PmapPool` re-forks / closes.
_SHARED: object | None = None

#: Generation token captured at fork time; compared against the token each
#: task was submitted with.
_SHARED_GEN: int | None = None


class StaleSharedError(RuntimeError):
    """A forked worker's shared snapshot predates the submitted task.

    Raised inside the worker when the fork-inherited generation token does
    not match the task's.  Reaching this error means a pool survived a
    mutation of its shared object without re-forking — the parent-side
    guard in :meth:`PmapPool.ensure` normally makes it impossible.
    """


def _call(fn: Callable[[Any, object], object], item: Any) -> object:
    return fn(item, _SHARED)


def _call_gen(
    fn: Callable[[Any, object], object], item: Any, expected_gen: int
) -> object:
    if _SHARED_GEN != expected_gen:
        raise StaleSharedError(
            f"worker forked at generation {_SHARED_GEN}, "
            f"task expects {expected_gen}"
        )
    return fn(item, _SHARED)


def _call_ship(
    fn: Callable[[Any, object], object], item: Any, shared: object
) -> object:
    return fn(item, shared)


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


class PmapPool:
    """A persistent forked pool bound to one (shared, generation) pair.

    Re-forking costs one pass of copy-on-write page table setup; keeping
    the pool between :func:`parallel_map` calls amortizes it across an
    update stream.  :meth:`ensure` is the safety valve: whenever the
    caller presents a different shared object or a newer generation, the
    old workers (whose snapshots are stale) are discarded and a fresh
    pool is forked — counted under ``pmap.pool_reforks``.
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError("PmapPool needs at least 2 workers")
        self.workers = int(workers)
        self._pool = None
        self._shared_id: int | None = None
        self._generation: int | None = None

    def ensure(self, shared: object, generation: int, telemetry=None):
        """Return an executor whose workers hold ``(shared, generation)``.

        Publishes the shared object to the fork globals and (re)creates
        the executor when the binding changed.  The globals stay set for
        the pool's lifetime — ``ProcessPoolExecutor`` forks workers
        lazily on first submit, so they must still be visible then.
        """
        from repro.obs.telemetry import ensure_telemetry

        stale = self._pool is not None and (
            self._shared_id != id(shared) or self._generation != generation
        )
        if stale:
            ensure_telemetry(telemetry).count("pmap.pool_reforks")
            self._shutdown()
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            global _SHARED, _SHARED_GEN
            _SHARED = shared
            _SHARED_GEN = generation
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            self._shared_id = id(shared)
            self._generation = generation
        return self._pool

    @property
    def generation(self) -> int | None:
        return self._generation

    def _shutdown(self) -> None:
        global _SHARED, _SHARED_GEN
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._shared_id = None
        self._generation = None
        _SHARED = None
        _SHARED_GEN = None

    def close(self) -> None:
        """Shut the workers down and clear the fork globals."""
        self._shutdown()

    def __enter__(self) -> "PmapPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def parallel_map(
    fn: Callable[[T, object], R],
    items: Sequence[T],
    *,
    workers: int | None = 0,
    shared: object = None,
    cache: Any = None,
    kind: str = "pmap",
    key_of: Callable[[T], tuple] | None = None,
    telemetry: Any = None,
    generation: int | None = None,
    pool: "PmapPool | None" = None,
    ship: bool = False,
) -> list[R]:
    """Map ``fn(item, shared)`` over ``items``, preserving item order.

    Parameters
    ----------
    fn:
        A module-level function (it crosses the process boundary by name).
        Called as ``fn(item, shared)``.
    workers:
        ``0`` or ``1`` runs inline; ``None`` auto-sizes to
        ``min(len(items), cpu_count)``; otherwise the worker process count.
        Parallel results are bit-identical to inline ones — the fold order
        is the item order either way.  Ignored when ``pool`` is given.
    shared:
        Large read-only state reaching workers by fork inheritance, never
        pickled (unless ``ship``).  Mutations inside workers are invisible
        to the parent; mutations in the *parent* are invisible to an
        already-forked pool unless the arrays live in
        :mod:`repro.runtime.shm` segments.
    cache, kind, key_of:
        With a cache and a ``key_of(item) -> key_parts`` function, each
        item's artifact is looked up under ``kind`` before any computation
        and stored after; only misses are dispatched to the pool.
    telemetry:
        Optional :class:`repro.obs.telemetry.Telemetry` for pool counters.
        When enabled, ``pmap.shipped_bytes`` accumulates the pickled size
        of everything submitted to the pool — the zero-copy perf guard's
        measured quantity.
    generation:
        Version token of ``shared``.  Required with ``pool``; each task
        carries it and a worker whose fork-inherited token differs raises
        :class:`StaleSharedError`.
    pool:
        A :class:`PmapPool` to reuse across calls (re-forks automatically
        when ``shared``/``generation`` move).  Without one, a fresh pool
        is forked and torn down per call, which can never serve stale
        state but pays the fork cost every time.
    ship:
        Ship ``shared`` by pickle inside every task instead of relying on
        fork inheritance.  Exists to *measure* the cost the fork/shm path
        avoids (and as an escape hatch for non-inheritable state); the
        shipped bytes show up in ``pmap.shipped_bytes``.
    """
    from repro.obs.telemetry import ensure_telemetry

    tel = ensure_telemetry(telemetry)
    items = list(items)
    results: list = [None] * len(items)
    if pool is not None and generation is None:
        raise ValueError("a persistent pool requires a generation token")

    # Parent-side cache pass: hits fill in directly, misses go to the pool.
    miss_idx = list(range(len(items)))
    keys: dict[int, str] = {}
    if cache is not None and key_of is not None:
        miss_idx = []
        for i, item in enumerate(items):
            key = cache.key_of(kind, *key_of(item))
            found, value = cache.lookup(kind, key)
            if found:
                cache.stats._bump(kind, "hits")
                results[i] = value
            else:
                cache.stats._bump(kind, "misses")
                keys[i] = key
                miss_idx.append(i)

    if pool is not None:
        workers = pool.workers
    elif workers is None:
        workers = max(1, min(len(miss_idx), os.cpu_count() or 1))
    use_pool = workers > 1 and len(miss_idx) > 1 and _fork_available()
    tel.count("pmap.items", len(items))
    tel.count("pmap.computed", len(miss_idx))
    if not use_pool:
        for i in miss_idx:
            results[i] = fn(items[i], shared)
    else:
        tel.count("pmap.pool_items", len(miss_idx))
        tel.gauge("pmap.workers", workers)
        computed = _pool_map(
            fn, [items[i] for i in miss_idx], shared, workers,
            generation=generation, pool=pool, ship=ship, tel=tel,
        )
        for i, value in zip(miss_idx, computed):
            results[i] = value

    if cache is not None and key_of is not None:
        for i in miss_idx:
            cache.store(kind, keys[i], results[i])
    return results


def _count_shipped(tel, payload: tuple) -> None:
    """Accumulate the pickled size of one submitted task (telemetry on)."""
    if not tel.enabled:
        return
    import pickle

    tel.count("pmap.shipped_bytes", len(pickle.dumps(payload)))


def _pool_map(
    fn: Callable[[Any, object], object],
    miss_items: list,
    shared: object,
    workers: int,
    *,
    generation: int | None = None,
    pool: "PmapPool | None" = None,
    ship: bool = False,
    tel=None,
) -> list:
    """Run the miss set on a forked pool; results in submission order."""
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    from repro.obs.telemetry import ensure_telemetry

    tel = ensure_telemetry(tel)

    def _submit(executor):
        futures = []
        for item in miss_items:
            if ship:
                payload = (fn, item, shared)
                futures.append(executor.submit(_call_ship, *payload))
            elif generation is not None:
                payload = (fn, item, generation)
                futures.append(executor.submit(_call_gen, *payload))
            else:
                payload = (fn, item)
                futures.append(executor.submit(_call, *payload))
            _count_shipped(tel, payload)
        return [fut.result() for fut in futures]

    if pool is not None:
        return _submit(pool.ensure(shared, generation, telemetry=tel))

    global _SHARED, _SHARED_GEN
    ctx = multiprocessing.get_context("fork")
    _SHARED = shared
    _SHARED_GEN = generation
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(miss_items)), mp_context=ctx
        ) as executor:
            return _submit(executor)
    finally:
        _SHARED = None
        _SHARED_GEN = None
