"""Thread-safe lease registry for reusable :class:`PmapPool` workers.

The service front end runs many jobs concurrently in threads, and each
job may want a forked worker pool for routing deltas or PLACE
estimation.  Forking a fresh pool per request throws away the warm
shared state the pool exists to amortize, while sharing one pool between
two simultaneously-running jobs is unsafe (a pool's fork snapshot and
submission protocol assume one driver at a time).  The registry resolves
this with *leases*: a job acquires a pool keyed by worker count, uses it
exclusively, and releases it back for the next job — so a steady stream
of requests reuses a small set of long-lived pools instead of re-forking
per call.

Usage::

    registry = PoolRegistry(workers=4)
    with registry.lease() as pool:
        update_routing(state, changes, workers=4, pool=pool, ...)

Accounting (``created`` / ``leases`` / ``reuses``) feeds the service's
metrics endpoint; ``close()`` tears down every idle pool.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.runtime.pmap import PmapPool

__all__ = ["PoolRegistry", "PoolLease"]


@dataclass
class PoolLease:
    """Context manager holding one pool exclusively until released."""

    registry: "PoolRegistry"
    pool: PmapPool | None
    workers: int
    _released: bool = field(default=False, repr=False)

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.registry._release(self)

    def __enter__(self) -> PmapPool | None:
        return self.pool

    def __exit__(self, *exc) -> bool:
        self.release()
        return False


class PoolRegistry:
    """Pool-per-lease reuse across sequential jobs, safe under threads.

    Parameters
    ----------
    workers:
        Default worker count per pool (``< 2`` → leases carry no pool and
        callers fall back to inline execution, matching ``parallel_map``'s
        own degradation).
    max_pools:
        Cap on simultaneously live pools per worker count; when every
        pool is leased out, additional leases run poolless rather than
        forking unboundedly.
    """

    def __init__(self, workers: int = 0, *, max_pools: int = 4) -> None:
        self.workers = int(workers)
        self.max_pools = max(1, int(max_pools))
        self._idle: dict[int, list[PmapPool]] = {}
        self._live: dict[int, int] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.created = 0
        self.leases = 0
        self.reuses = 0

    def lease(self, workers: int | None = None) -> PoolLease:
        """Borrow a pool with ``workers`` workers (default: registry's)."""
        count = self.workers if workers is None else int(workers)
        with self._lock:
            self.leases += 1
            if self._closed or count < 2:
                return PoolLease(self, None, count)
            idle = self._idle.setdefault(count, [])
            if idle:
                self.reuses += 1
                return PoolLease(self, idle.pop(), count)
            if self._live.get(count, 0) >= self.max_pools:
                return PoolLease(self, None, count)
            self._live[count] = self._live.get(count, 0) + 1
            self.created += 1
        # Fork outside the lock: pool construction is cheap but not free.
        try:
            pool = PmapPool(count)
        except BaseException:
            with self._lock:
                self._live[count] -= 1
            raise
        return PoolLease(self, pool, count)

    def _release(self, lease: PoolLease) -> None:
        pool = lease.pool
        if pool is None:
            return
        with self._lock:
            if not self._closed:
                self._idle.setdefault(lease.workers, []).append(pool)
                return
            self._live[lease.workers] -= 1
        pool.close()

    def stats(self) -> dict:
        """Snapshot for the metrics endpoint."""
        with self._lock:
            return {
                "created": self.created,
                "leases": self.leases,
                "reuses": self.reuses,
                "idle": sum(len(v) for v in self._idle.values()),
                "live": sum(self._live.values()),
            }

    def close(self) -> None:
        """Shut down idle pools; leased pools close on release."""
        with self._lock:
            self._closed = True
            pools = [p for idle in self._idle.values() for p in idle]
            for count, idle in self._idle.items():
                self._live[count] = self._live.get(count, 0) - len(idle)
            self._idle.clear()
        for pool in pools:
            pool.close()

    def __enter__(self) -> "PoolRegistry":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
