"""Shared-memory arrays: zero-copy state for forked workers.

The routing tables are two dense ``(n, n)`` matrices — tens of megabytes
at the paper's 5–10k-router scale.  :mod:`repro.runtime.pmap` already
avoids *pickling* them by publishing to a module global before the fork,
but plain fork inheritance is copy-on-write: once the parent splices
updated rows in place (the incremental engine in
:mod:`repro.routing.delta`), long-lived children — the LP worker
processes of :mod:`repro.engine.lp` — keep reading their stale private
snapshot.

Backing the arrays with :class:`multiprocessing.shared_memory.SharedMemory`
fixes both halves at once: the mapping is ``MAP_SHARED``, so forked
children observe the parent's in-place writes immediately, and a
:class:`ShmHandle` (name + shape + dtype, a few dozen bytes) is all that
ever crosses a pickle boundary — :func:`attach` rebuilds a zero-copy view
on the other side.

Lifetime rules
--------------
The creating process owns every segment: :class:`ShmArena` unlinks them on
:meth:`ShmArena.close` (or context-manager exit).  Attaching processes
call :func:`attach`, which *unregisters* the segment from the inherited
``resource_tracker`` so a worker exiting does not tear the segment out
from under its siblings.  Segment names are derived from the creating
pid plus a monotonic counter — deterministic, collision-free within a
process, and free of the banned ``random`` module.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

__all__ = ["ShmHandle", "SharedArray", "ShmArena", "attach"]

#: Monotonic per-process suffix for segment names.
_SEGMENT_COUNTER = 0


def _next_segment_name() -> str:
    global _SEGMENT_COUNTER
    _SEGMENT_COUNTER += 1
    return f"massf-{os.getpid()}-{_SEGMENT_COUNTER}"


@dataclass(frozen=True)
class ShmHandle:
    """Picklable descriptor of one shared array (the wire format).

    Attributes
    ----------
    name:
        OS-level shared-memory segment name.
    shape:
        Array shape.
    dtype:
        Numpy dtype string (``np.dtype(...).str`` — endianness included).
    """

    name: str
    shape: tuple
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


class SharedArray:
    """One shared-memory segment exposed as a numpy array.

    Create with :meth:`create` (copies ``data`` into a fresh segment) or
    :func:`attach` (zero-copy view of an existing one).  The ``array``
    attribute is an ordinary ndarray backed by the mapping; in-place
    writes are visible to every process holding the segment.
    """

    def __init__(self, seg, handle: ShmHandle, *, owner: bool) -> None:
        self._seg = seg
        self.handle = handle
        self.owner = owner
        self.array = np.ndarray(
            handle.shape, dtype=np.dtype(handle.dtype), buffer=seg.buf
        )

    @classmethod
    def create(cls, data: np.ndarray) -> "SharedArray":
        """Copy ``data`` into a new shared segment owned by this process."""
        from multiprocessing import shared_memory

        data = np.ascontiguousarray(data)
        handle = ShmHandle(
            name=_next_segment_name(), shape=tuple(data.shape),
            dtype=data.dtype.str,
        )
        seg = shared_memory.SharedMemory(
            name=handle.name, create=True, size=max(1, data.nbytes)
        )
        shared = cls(seg, handle, owner=True)
        shared.array[...] = data
        return shared

    def close(self) -> None:
        """Drop this process's mapping (owners also unlink the segment)."""
        # The ndarray view pins the buffer; release it before closing.
        self.array = None
        self._seg.close()
        if self.owner:
            try:
                self._seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __reduce__(self):
        raise TypeError(
            "SharedArray is not picklable; ship its .handle and attach()"
        )


def attach(handle: ShmHandle) -> SharedArray:
    """Map an existing segment (zero-copy) from its :class:`ShmHandle`.

    The attaching side must not register the segment with the resource
    tracker: the creator owns the unlink, the tracker's cache is a plain
    set shared across forks, and an attach-side register/unregister pair
    would silently cancel the creator's registration (Python < 3.13 has
    no ``track=False``).  The register call is suppressed for the
    duration of the mapping instead.
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        seg = shared_memory.SharedMemory(name=handle.name, create=False)
    finally:
        resource_tracker.register = original_register
    return SharedArray(seg, handle, owner=False)


class ShmArena:
    """A named collection of shared arrays with a generation counter.

    The arena is the unit the delta engine and the LP pool agree on: the
    parent shares the routing/link arrays once, hands out
    :meth:`handles`, and bumps :attr:`generation` after every in-place
    update so pools keyed on a generation token
    (:class:`repro.runtime.pmap.PmapPool`) can detect staleness.
    """

    def __init__(self) -> None:
        self._arrays: dict[str, SharedArray] = {}
        self.generation = 0
        self._closed = False

    def share(self, label: str, data: np.ndarray) -> np.ndarray:
        """Copy ``data`` into the arena; returns the shared-backed array.

        Re-sharing an existing label with a matching shape/dtype writes
        in place (same segment, same handle); a mismatch replaces the
        segment.
        """
        if self._closed:
            raise ValueError("arena is closed")
        data = np.ascontiguousarray(data)
        cur = self._arrays.get(label)
        if cur is not None:
            if (cur.handle.shape == tuple(data.shape)
                    and np.dtype(cur.handle.dtype) == data.dtype):
                cur.array[...] = data
                return cur.array
            cur.close()
            del self._arrays[label]
        shared = SharedArray.create(data)
        self._arrays[label] = shared
        return shared.array

    def __getitem__(self, label: str) -> np.ndarray:
        return self._arrays[label].array

    def __contains__(self, label: str) -> bool:
        return label in self._arrays

    def handles(self) -> dict[str, ShmHandle]:
        """Picklable ``label -> handle`` map for attaching processes."""
        return {
            label: shared.handle for label, shared in self._arrays.items()
        }

    def bump(self) -> int:
        """Advance the generation (call after in-place updates)."""
        self.generation += 1
        return self.generation

    @property
    def nbytes(self) -> int:
        return int(
            sum(shared.handle.nbytes for shared in self._arrays.values())
        )

    def close(self) -> None:
        """Unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shared in self._arrays.values():
            shared.close()
        self._arrays.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __reduce__(self):
        raise TypeError(
            "ShmArena is not picklable; ship .handles() and attach()"
        )
