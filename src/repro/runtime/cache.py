"""Content-addressed artifact cache (memory + disk).

Artifacts — routing tables, profiling runs, evaluation runs — are keyed by
a :func:`repro.runtime.fingerprint.stable_hash` of everything that
determines them (network + workload + seed + config), so a repeated sweep
hits the cache instead of re-simulating, and results are *bit-identical*
to a cold computation (pickle round-trips preserve exact array bytes).

Layout on disk: ``<root>/<kind>/<hash>.pkl``, written atomically
(temp file + ``os.replace``) so concurrent workers can share one cache
directory; a corrupt or truncated entry is treated as a miss and
rewritten.  The default root is ``$MASSF_CACHE_DIR`` or ``.massf-cache/``
under the current directory.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, TypeVar

from repro.runtime.fingerprint import stable_hash

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "default_cache",
    "DEFAULT_CACHE_DIR",
]

T = TypeVar("T")

#: Default on-disk location (relative to the working directory) when
#: ``$MASSF_CACHE_DIR`` is not set.  Excluded from version control.
DEFAULT_CACHE_DIR = ".massf-cache"


@dataclass
class CacheStats:
    """Hit/miss/store counters, per artifact kind and in total.

    Counter bumps are serialized by a lock so one :class:`ArtifactCache`
    can be shared by concurrent service jobs running in threads.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    by_kind: dict = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _bump(self, kind: str, what: str) -> None:
        with self._lock:
            setattr(self, what, getattr(self, what) + 1)
            per = self.by_kind.setdefault(kind, {"hits": 0, "misses": 0})
            if what in per:
                per[what] += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Fold another process's counters into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        for kind, per in other.by_kind.items():
            mine = self.by_kind.setdefault(kind, {"hits": 0, "misses": 0})
            for key in ("hits", "misses"):
                mine[key] += per.get(key, 0)

    def summary(self) -> str:
        per = ", ".join(
            f"{kind}: {c['hits']}h/{c['misses']}m"
            for kind, c in sorted(self.by_kind.items())
        )
        return (
            f"cache {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%})" + (f" [{per}]" if per else "")
        )


class ArtifactCache:
    """Two-tier (dict + directory) content-addressed store.

    Parameters
    ----------
    root:
        Disk directory, or ``None`` for a memory-only cache.
    memory:
        Keep a per-process dict in front of the disk tier (saves repeated
        unpickling within one process).
    """

    def __init__(
        self, root: str | Path | None = None, *, memory: bool = True
    ) -> None:
        self.root = Path(root) if root is not None else None
        self._memory: dict[tuple[str, str], object] | None = (
            {} if memory else None
        )
        self._mem_lock = threading.Lock()
        self.stats = CacheStats()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_mem_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._mem_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @staticmethod
    def key_of(*parts: object) -> str:
        """Content key for ``parts`` (stable across processes)."""
        return stable_hash(*parts)

    def _path(self, kind: str, key: str) -> Path:
        assert self.root is not None
        return self.root / kind / f"{key}.pkl"

    def lookup(self, kind: str, key: str) -> tuple[bool, object]:
        """Return ``(found, value)`` without touching the counters."""
        if self._memory is not None:
            with self._mem_lock:
                if (kind, key) in self._memory:
                    return True, self._memory[(kind, key)]
        if self.root is not None:
            path = self._path(kind, key)
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError):
                return False, None
            if self._memory is not None:
                with self._mem_lock:
                    self._memory[(kind, key)] = value
            return True, value
        return False, None

    def store(self, kind: str, key: str, value: object) -> None:
        """Insert an artifact (atomic on disk)."""
        self.stats._bump(kind, "stores")
        if self._memory is not None:
            with self._mem_lock:
                self._memory[(kind, key)] = value
        if self.root is None:
            return
        directory = self.root / kind
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(kind, key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_or_compute(
        self, kind: str, key_parts: tuple, compute: Callable[[], T]
    ) -> T:
        """The main entry point: fetch by content key or compute + store."""
        key = self.key_of(kind, *key_parts)
        found, value = self.lookup(kind, key)
        if found:
            self.stats._bump(kind, "hits")
            return value  # type: ignore[return-value]
        self.stats._bump(kind, "misses")
        value = compute()
        self.store(kind, key, value)
        return value

    # ------------------------------------------------------------------ #
    def clear_memory(self) -> None:
        """Drop the in-process tier (disk entries stay)."""
        if self._memory is not None:
            with self._mem_lock:
                self._memory.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.root) if self.root else "memory-only"
        return f"<ArtifactCache {where} {self.stats.summary()}>"


def default_cache_root() -> Path:
    """``$MASSF_CACHE_DIR`` or ``.massf-cache`` under the cwd."""
    return Path(os.environ.get("MASSF_CACHE_DIR", DEFAULT_CACHE_DIR))


def default_cache() -> ArtifactCache:
    """A fresh cache on the default root (cheap: directories are lazy)."""
    return ArtifactCache(default_cache_root())


def resolve_cache(
    cache: "ArtifactCache | str | Path | bool | None",
) -> ArtifactCache | None:
    """Normalize the ``cache=`` argument accepted across the API.

    ``None``/``False`` → no caching; ``True``/``"default"`` → the default
    disk cache; a path → a disk cache there; an :class:`ArtifactCache` →
    itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True or cache == "default":
        return default_cache()
    if isinstance(cache, (str, Path)):
        return ArtifactCache(cache)
    return cache
