"""Stable structural hashing for cache keys.

:func:`stable_hash` maps an object graph (dataclasses, dicts, sequences,
numpy arrays, plain attribute objects) to a hex digest that is identical
across processes and interpreter runs for structurally identical inputs —
unlike ``hash()``, which is salted per process, and unlike ``pickle``
bytes, which are not guaranteed canonical.

Objects can opt into an explicit representation by exposing a
``cache_token()`` method returning primitives (see
:meth:`repro.topology.network.Network.cache_token`); everything else is
walked generically.  Unknown objects without ``__dict__`` raise
``TypeError`` rather than hashing unstably.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib

import numpy as np

__all__ = ["stable_hash", "CACHE_VERSION"]

#: Bump when cached artifact layouts change incompatibly; part of every key.
CACHE_VERSION = 1


def _feed(h: "hashlib._Hash", obj: object, depth: int = 0) -> None:
    if depth > 50:
        raise ValueError("object graph too deep for stable hashing")
    token = getattr(obj, "cache_token", None)
    if token is not None and callable(token):
        h.update(b"T(")
        _feed(h, token(), depth + 1)
        h.update(b")")
        return
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, int):
        h.update(b"I" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"F" + repr(obj).encode())
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        h.update(b"S" + str(len(data)).encode() + b":" + data)
    elif isinstance(obj, bytes):
        h.update(b"Y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, enum.Enum):
        h.update(b"E" + type(obj).__qualname__.encode())
        _feed(h, obj.value, depth + 1)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(
            b"A" + arr.dtype.str.encode() + str(arr.shape).encode()
        )
        h.update(arr.tobytes())
    elif isinstance(obj, np.generic):
        _feed(h, obj.item(), depth + 1)
    elif isinstance(obj, (list, tuple)):
        h.update(b"L(" if isinstance(obj, list) else b"U(")
        for item in obj:
            _feed(h, item, depth + 1)
            h.update(b",")
        h.update(b")")
    elif isinstance(obj, (set, frozenset)):
        h.update(b"Z(")
        for blob in sorted(stable_hash(item).encode() for item in obj):
            h.update(blob + b",")
        h.update(b")")
    elif isinstance(obj, dict):
        h.update(b"D(")
        items = sorted(
            (stable_hash(k).encode(), k, v) for k, v in obj.items()
        )
        for kblob, _, v in items:
            h.update(kblob + b"=")
            _feed(h, v, depth + 1)
            h.update(b",")
        h.update(b")")
    elif isinstance(obj, functools.partial):
        h.update(b"P(")
        _feed(h, obj.func, depth + 1)
        _feed(h, list(obj.args), depth + 1)
        _feed(h, dict(obj.keywords), depth + 1)
        h.update(b")")
    elif callable(obj):
        name = getattr(obj, "__qualname__", type(obj).__qualname__)
        module = getattr(obj, "__module__", "?")
        h.update(b"C" + f"{module}:{name}".encode())
    elif dataclasses.is_dataclass(obj):
        h.update(b"O" + type(obj).__qualname__.encode() + b"(")
        for f in dataclasses.fields(obj):
            h.update(f.name.encode() + b"=")
            _feed(h, getattr(obj, f.name), depth + 1)
            h.update(b",")
        h.update(b")")
    elif hasattr(obj, "__dict__"):
        # Generic object: public attributes only (private attributes hold
        # caches / derived state that must not perturb the key).
        h.update(b"O" + type(obj).__qualname__.encode() + b"(")
        for name in sorted(vars(obj)):
            if name.startswith("_"):
                continue
            h.update(name.encode() + b"=")
            _feed(h, getattr(obj, name), depth + 1)
            h.update(b",")
        h.update(b")")
    else:
        raise TypeError(
            f"cannot stably hash {type(obj).__qualname__!r}; give it a "
            "cache_token() method"
        )


def stable_hash(*objs: object) -> str:
    """Hex sha256 of the canonical encoding of ``objs``.

    Identical object structure → identical digest, across processes and
    runs.  Every key embeds :data:`CACHE_VERSION` so cache layouts can be
    invalidated wholesale.
    """
    h = hashlib.sha256()
    h.update(f"v{CACHE_VERSION}|".encode())
    for obj in objs:
        _feed(h, obj)
        h.update(b";")
    return h.hexdigest()
