"""Parallel experiment runtime: artifact caching + grid execution.

The paper's evaluation is an embarrassingly parallel grid over
(setup × seed × approach); this subsystem treats that grid as the parallel
system to optimize:

- :mod:`repro.runtime.fingerprint` — stable structural hashing of networks,
  workloads and configs, so artifacts can be content-addressed.
- :mod:`repro.runtime.cache` — a content-addressed artifact cache (memory +
  disk) for routing tables, profiling runs and evaluation runs.
- :mod:`repro.runtime.executor` — a process-pool grid executor with
  deterministic per-cell seeding, per-cell error records (a crashed worker
  never kills the sweep), a timeout/retry policy, and run observability
  (per-cell timing, cache hit/miss counters, progress callbacks).
- :mod:`repro.runtime.pmap` — a fork-shared parallel map for batched
  kernels (the PLACE route blocks) whose tasks all read one large
  read-only object that must never cross a pickle boundary.
- :mod:`repro.runtime.pools` — a thread-safe lease registry that reuses
  warm :class:`~repro.runtime.pmap.PmapPool` workers across service jobs.
"""

from repro.runtime.cache import ArtifactCache, CacheStats, default_cache
from repro.runtime.executor import (
    CellResult,
    GridResult,
    GridStats,
    RuntimeConfig,
    run_grid,
)
from repro.runtime.fingerprint import stable_hash
from repro.runtime.pmap import parallel_map
from repro.runtime.pools import PoolLease, PoolRegistry

__all__ = [
    "parallel_map",
    "PoolRegistry",
    "PoolLease",
    "ArtifactCache",
    "CacheStats",
    "default_cache",
    "stable_hash",
    "RuntimeConfig",
    "CellResult",
    "GridResult",
    "GridStats",
    "run_grid",
]
