"""Process-pool execution of the (setup × seed × approach) grid.

Each *cell* of the grid is one ``(setup, seed, approach)`` evaluation; the
executor fans cells out across cores with:

- **deterministic seeding** — a cell's randomness is fully determined by
  its explicit grid seed, never by scheduling order or worker placement,
  so a parallel sweep is bit-for-bit identical to the serial one;
- **graceful failure handling** — a cell that raises, times out, or takes
  its worker process down produces an error record (:class:`CellResult`
  with ``error`` set) instead of killing the sweep;
- **a timeout/retry policy** — per-task soft timeouts (SIGALRM inside the
  worker) and bounded retries for crashed / timed-out tasks;
- **observability** — per-cell wall timing, merged cache hit/miss
  counters, and a progress callback.

Grouping: with ``group="run"`` (default) all approaches of one
``(setup, seed)`` run in one task so they share the evaluation emulation
in-process; ``group="cell"`` schedules every approach separately for
maximum parallelism (worth it once the artifact cache is warm).
"""

from __future__ import annotations

import os
import signal
import time
import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro.runtime.cache import ArtifactCache, CacheStats

__all__ = [
    "RuntimeConfig",
    "CellResult",
    "GridStats",
    "GridResult",
    "run_grid",
]


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the parallel runtime.

    Attributes
    ----------
    workers:
        Worker process count; ``None`` auto-sizes to the task count capped
        at the CPU count, ``0`` runs everything in-process (the serial
        reference path — still produces the same :class:`GridResult`).
    timeout_s:
        Soft per-task timeout enforced with ``SIGALRM`` inside worker
        processes (ignored when ``workers == 0``).
    retries:
        Additional attempts for a task whose worker crashed or timed out.
        Deterministic in-task exceptions are *not* retried — they would
        fail identically again.
    group:
        ``"run"`` (one task per ``(setup, seed)``, approaches share the
        evaluation emulation) or ``"cell"`` (one task per approach).
    start_method:
        Multiprocessing start method; default ``fork`` where available.
    """

    workers: int | None = None
    timeout_s: float | None = None
    retries: int = 1
    group: str = "run"
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.group not in ("run", "cell"):
            raise ValueError("group must be 'run' or 'cell'")
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")


@dataclass
class CellResult:
    """Outcome record of one grid cell (error records included)."""

    setup_name: str
    app_name: str
    seed: int
    approach: str
    outcome: object | None = None  # ApproachOutcome on success
    error: str | None = None
    duration_s: float = 0.0
    attempts: int = 1
    worker_pid: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class GridStats:
    """Run observability: timings, failures, cache behaviour."""

    wall_s: float = 0.0
    n_cells: int = 0
    n_ok: int = 0
    n_failed: int = 0
    n_retries: int = 0
    cell_seconds: float = 0.0
    workers: int = 0
    cache: CacheStats = field(default_factory=CacheStats)

    def summary(self) -> str:
        return (
            f"{self.n_ok}/{self.n_cells} cells ok"
            + (f" ({self.n_failed} failed)" if self.n_failed else "")
            + f" in {self.wall_s:.1f}s wall / {self.cell_seconds:.1f}s cell "
            f"time on {self.workers} workers; {self.cache.summary()}"
        )


@dataclass
class GridResult:
    """All cell records of one grid execution, in grid order."""

    cells: list[CellResult]
    stats: GridStats

    def ok(self) -> list[CellResult]:
        return [c for c in self.cells if c.ok]

    def failures(self) -> list[CellResult]:
        return [c for c in self.cells if not c.ok]

    def outcome(
        self, setup_name: str, seed: int, approach: str
    ) -> Any:
        for cell in self.cells:
            if (cell.setup_name, cell.seed, cell.approach) == (
                setup_name, seed, approach,
            ):
                return cell.outcome
        raise KeyError((setup_name, seed, approach))


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #
class _TaskTimeout(Exception):
    pass


@dataclass(frozen=True)
class _Task:
    task_id: int
    setup: object  # ExperimentSetup (network stripped for transport)
    seed: int
    approaches: tuple[str, ...]
    config: object  # RunnerConfig | None
    cache_root: str | None
    timeout_s: float | None
    collect_telemetry: bool = False


@dataclass
class _TaskOutcome:
    task_id: int
    cells: list[CellResult]
    cache_stats: CacheStats
    retryable: bool = False
    telemetry: dict | None = None  # Telemetry.to_dict() snapshot


def _arm_soft_timeout(timeout_s: float) -> tuple[Any, bool]:
    """Install the SIGALRM soft timeout; returns the previous handler or
    ``None`` when unavailable.

    ``signal.signal`` only works in the main thread of the main
    interpreter, and ``SIGALRM``/``setitimer`` do not exist on Windows.
    In those environments the task degrades gracefully: a warning is
    emitted and the cell runs without a soft timeout instead of dying on
    the setup call itself.
    """
    def _on_alarm(signum: int, frame: Any) -> None:
        raise _TaskTimeout(f"cell exceeded {timeout_s:.3g}s timeout")

    try:
        old_handler = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    except (ValueError, OSError, AttributeError) as exc:
        # ValueError: not the main thread; AttributeError: no SIGALRM /
        # setitimer on this platform; OSError: itimer rejected.
        warnings.warn(
            f"soft timeout unavailable ({type(exc).__name__}: {exc}); "
            "running the cell without a timeout",
            RuntimeWarning,
            stacklevel=2,
        )
        return None, False
    return old_handler, True


def _disarm_soft_timeout(old_handler: Any, timer_armed: bool) -> None:
    """Cancel the soft timeout and restore the previous handler.

    ``timer_armed`` is only True when :func:`_arm_soft_timeout`
    succeeded (main thread, SIGALRM available), but the restore guards
    itself anyway: catching ``ValueError`` here makes the disarm safe
    to call from any thread even if the armed flag and the calling
    thread ever disagree (e.g. a task resumed on a different thread).
    """
    if not timer_armed:
        return
    try:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)
    except (ValueError, AttributeError):  # off-main-thread / platform
        pass


def _execute_task(
    task: _Task, cache: ArtifactCache | None = None,
    telemetry: Any = None,
) -> _TaskOutcome:
    """Run one task; never raises (failures become error records)."""
    from repro.experiments.runner import evaluate_setup
    from repro.obs.telemetry import Telemetry

    if cache is None and task.cache_root is not None:
        cache = ArtifactCache(task.cache_root)
    if telemetry is None and task.collect_telemetry:
        telemetry = Telemetry()
    pid = os.getpid()
    start = time.perf_counter()

    old_handler = None
    timer_armed = False
    if task.timeout_s is not None:
        old_handler, timer_armed = _arm_soft_timeout(task.timeout_s)
    try:
        results = evaluate_setup(
            task.setup,
            approaches=task.approaches,
            seed=task.seed,
            config=task.config,
            cache=cache,
            telemetry=telemetry,
        )
        duration = time.perf_counter() - start
        cells = [
            CellResult(
                setup_name=task.setup.name,
                app_name=task.setup.app_name,
                seed=task.seed,
                approach=name,
                outcome=results[name].outcome,
                duration_s=duration,
                worker_pid=pid,
            )
            for name in task.approaches
        ]
        retryable = False
    except BaseException as exc:  # noqa: BLE001 - error record, not crash
        duration = time.perf_counter() - start
        tb = traceback.format_exc(limit=8)
        cells = [
            CellResult(
                setup_name=task.setup.name,
                app_name=task.setup.app_name,
                seed=task.seed,
                approach=name,
                error=f"{type(exc).__name__}: {exc}\n{tb}",
                duration_s=duration,
                worker_pid=pid,
            )
            for name in task.approaches
        ]
        retryable = isinstance(exc, _TaskTimeout)
    finally:
        _disarm_soft_timeout(old_handler, timer_armed)

    # Report this task's counters; the parent merges them.  When the cache
    # object is shared (inline mode) the parent reads the live object and
    # discards this delta instead.
    delta = cache.stats if cache is not None else CacheStats()
    return _TaskOutcome(
        task_id=task.task_id, cells=cells, cache_stats=delta,
        retryable=retryable,
        telemetry=(
            telemetry.to_dict()
            if telemetry is not None and telemetry.enabled else None
        ),
    )


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #
def _build_tasks(
    setups: Sequence,
    seeds: Sequence[int],
    approaches: tuple[str, ...],
    config: Any,
    cache_root: str | None,
    runtime: RuntimeConfig,
    collect_telemetry: bool = False,
) -> list[_Task]:
    tasks: list[_Task] = []
    for setup in setups:
        # Ship a copy without the cached Network: workers rebuild it
        # deterministically from the factory, and the parent's instance
        # may be large.
        light = replace(setup, _network=None)
        for seed in seeds:
            if runtime.group == "run":
                groups: list[tuple[str, ...]] = [tuple(approaches)]
            else:
                groups = [(a,) for a in approaches]
            for group in groups:
                tasks.append(
                    _Task(
                        task_id=len(tasks),
                        setup=light,
                        seed=int(seed),
                        approaches=group,
                        config=config,
                        cache_root=cache_root,
                        timeout_s=runtime.timeout_s,
                        collect_telemetry=collect_telemetry,
                    )
                )
    return tasks


def _error_outcome(task: _Task, message: str, attempts: int) -> _TaskOutcome:
    return _TaskOutcome(
        task_id=task.task_id,
        cells=[
            CellResult(
                setup_name=task.setup.name,
                app_name=task.setup.app_name,
                seed=task.seed,
                approach=name,
                error=message,
                attempts=attempts,
            )
            for name in task.approaches
        ],
        cache_stats=CacheStats(),
    )


def run_grid(
    setups: Any,
    seeds: Sequence[int],
    approaches: tuple[str, ...] = ("top", "place", "profile"),
    *,
    config: Any = None,
    runtime: RuntimeConfig | None = None,
    cache: ArtifactCache | str | bool | None = None,
    progress: Callable[[CellResult, int, int], None] | None = None,
    telemetry: Any = None,
) -> GridResult:
    """Evaluate the (setup × seed × approach) grid, possibly in parallel.

    Parameters
    ----------
    setups:
        One :class:`~repro.experiments.setups.ExperimentSetup` or a
        sequence of them.
    seeds, approaches:
        The grid axes.  Each cell's randomness is fully determined by its
        ``seed`` — results are independent of scheduling.
    config:
        :class:`~repro.experiments.runner.RunnerConfig` shared by all
        cells.
    runtime:
        :class:`RuntimeConfig`; defaults to auto-sized workers, no
        timeout, one retry.
    cache:
        Artifact cache specification (see
        :func:`repro.runtime.cache.resolve_cache`).  Worker processes
        share the *disk* tier; a memory-only cache only helps the
        in-process path.
    progress:
        ``progress(cell_result, done_cells, total_cells)`` called as cells
        finish (in completion order).
    telemetry:
        Optional :class:`repro.obs.telemetry.Telemetry`.  When enabled,
        every task runs with its own collector (worker processes included)
        whose snapshot merges back here — phase spans, kernel counters and
        per-cell load timelines from all workers land in one place — plus
        the grid's own ``cells`` event series and executor counters.

    Returns
    -------
    GridResult
        Cell records in grid order (setup-major, then seed, then
        approach); failed cells carry ``error`` instead of ``outcome``.
    """
    from repro.experiments.setups import ExperimentSetup
    from repro.obs.telemetry import ensure_telemetry
    from repro.runtime.cache import resolve_cache

    tel = ensure_telemetry(telemetry)
    if isinstance(setups, ExperimentSetup):
        setups = [setups]
    setups = list(setups)
    seeds = [int(s) for s in seeds]
    approaches = tuple(approaches)
    if not setups or not seeds or not approaches:
        raise ValueError("need at least one setup, seed and approach")
    runtime = runtime or RuntimeConfig()
    cache_obj = resolve_cache(cache)
    cache_root = (
        str(cache_obj.root)
        if cache_obj is not None and cache_obj.root is not None
        else None
    )

    tasks = _build_tasks(
        setups, seeds, approaches, config, cache_root, runtime,
        collect_telemetry=tel.enabled,
    )
    total_cells = sum(len(t.approaches) for t in tasks)
    stats = GridStats(n_cells=total_cells)
    outcomes: dict[int, _TaskOutcome] = {}
    done_cells = 0
    start = time.perf_counter()

    def _record(outcome: _TaskOutcome) -> None:
        nonlocal done_cells
        outcomes[outcome.task_id] = outcome
        stats.cache.merge(outcome.cache_stats)
        if outcome.telemetry is not None:
            tel.merge(outcome.telemetry)
        for cell in outcome.cells:
            done_cells += 1
            stats.cell_seconds += cell.duration_s
            if cell.ok:
                stats.n_ok += 1
            else:
                stats.n_failed += 1
            tel.event(
                "cells",
                setup=cell.setup_name, app=cell.app_name, seed=cell.seed,
                approach=cell.approach, ok=cell.ok,
                duration_s=round(cell.duration_s, 6),
                attempts=cell.attempts, worker_pid=cell.worker_pid,
                **({"error": cell.error.splitlines()[0]}
                   if cell.error else {}),
            )
            if progress is not None:
                progress(cell, done_cells, total_cells)

    with tel.span("grid/run"):
        if runtime.workers == 0:
            stats.workers = 0
            for task in tasks:
                # Inline mode uses the live cache object (memory tier
                # included), the caller's live telemetry collector, and
                # skips the SIGALRM timeout: we are in the caller's process.
                inline = replace(task, timeout_s=None, cache_root=None,
                                 collect_telemetry=False)
                outcome = _execute_task(
                    inline, cache=cache_obj,
                    telemetry=tel if tel.enabled else None,
                )
                outcome.cache_stats = CacheStats()  # live in cache_obj
                outcome.telemetry = None  # already in the live collector
                _record(outcome)
            if cache_obj is not None:
                stats.cache = cache_obj.stats
        else:
            n_workers = runtime.workers
            if n_workers is None:
                n_workers = max(1, min(len(tasks), os.cpu_count() or 1))
            stats.workers = n_workers
            _run_pool(tasks, n_workers, runtime, _record)
            if cache_obj is not None:
                # Parent-side counters (earlier use) + worker deltas.
                cache_obj.stats.merge(stats.cache)

    stats.wall_s = time.perf_counter() - start
    stats.n_retries = sum(
        max(0, max((c.attempts for c in o.cells), default=1) - 1)
        for o in outcomes.values()
    )
    if tel.enabled:
        tel.count("grid.cells", stats.n_cells)
        tel.count("grid.cells_ok", stats.n_ok)
        tel.count("grid.cells_failed", stats.n_failed)
        tel.count("grid.retries", stats.n_retries)
        tel.gauge("grid.workers", stats.workers)
        tel.gauge("grid.wall_s", stats.wall_s)
        tel.count("cache.hits", stats.cache.hits)
        tel.count("cache.misses", stats.cache.misses)
        tel.count("cache.stores", stats.cache.stores)
        for kind, per in sorted(stats.cache.by_kind.items()):
            tel.count(f"cache.{kind}.hits", per.get("hits", 0))
            tel.count(f"cache.{kind}.misses", per.get("misses", 0))
    cells = [
        cell
        for task in tasks
        for cell in outcomes[task.task_id].cells
    ]
    return GridResult(cells=cells, stats=stats)


def _run_pool(
    tasks: list[_Task],
    n_workers: int,
    runtime: RuntimeConfig,
    record: Callable[[_TaskOutcome], None],
) -> None:
    """Submit tasks to a process pool, surviving worker crashes.

    A crashed worker breaks the whole ``ProcessPoolExecutor``; the loop
    records which tasks finished, rebuilds the pool, and resubmits the
    rest (bounded by ``runtime.retries`` per task).
    """
    import multiprocessing

    method = runtime.start_method
    if method is None:
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
    ctx = multiprocessing.get_context(method)

    attempts: dict[int, int] = {t.task_id: 0 for t in tasks}
    pending: list[_Task] = list(tasks)
    by_id = {t.task_id: t for t in tasks}

    while pending:
        round_tasks, pending = pending, []
        crashed: list[int] = []
        with ProcessPoolExecutor(
            max_workers=n_workers, mp_context=ctx
        ) as pool:
            futures = {}
            for task in round_tasks:
                attempts[task.task_id] += 1
                try:
                    futures[pool.submit(_execute_task, task)] = task.task_id
                except BaseException as exc:  # unpicklable payload etc.
                    record(
                        _error_outcome(
                            task,
                            f"submit failed: {type(exc).__name__}: {exc}",
                            attempts[task.task_id],
                        )
                    )
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in done:
                    task_id = futures[fut]
                    try:
                        outcome = fut.result()
                    except BrokenProcessPool:
                        crashed.append(task_id)
                        continue
                    except BaseException as exc:  # noqa: BLE001
                        crashed.append(task_id)
                        continue
                    for cell in outcome.cells:
                        cell.attempts = attempts[task_id]
                    if outcome.retryable and attempts[task_id] <= runtime.retries:
                        pending.append(by_id[task_id])
                    else:
                        record(outcome)
        for task_id in crashed:
            if attempts[task_id] <= runtime.retries:
                pending.append(by_id[task_id])
            else:
                record(
                    _error_outcome(
                        by_id[task_id],
                        "worker process crashed (BrokenProcessPool)",
                        attempts[task_id],
                    )
                )
