"""GridNPB 3.0 foreground traffic model (HC + VP + MB).

The paper runs the NAS Grid Benchmarks as "a workflow style composition in
data flow graphs encapsulating an instance of a slightly modified NPB task
in each graph node, which communicates with other nodes by sending/receiving
initialization data", using Helical Chain (HC), Visualization Pipeline (VP)
and Mixed Bag (MB) concurrently at class S, for ~15 virtual minutes.

The mapping-relevant property is the opposite of ScaLapack's: traffic is
*irregular and stage-varying* — bursts between changing endpoint pairs at
stage boundaries, so the node dominating the emulation load changes over
time (Figures 2 and 8) and the PLACE all-to-all-even approximation is poor.

Dataflow graphs follow the NGB 1.0 spec shapes:

- **HC** — nine tasks BT→SP→LU→BT→SP→LU→BT→SP→LU in a chain.
- **VP** — three pipelined columns BT→MG→FT (flow, mixing, visualization).
- **MB** — a 3×3 layered mix of LU/MG/FT with full fan-out between layers
  and deliberately uneven task sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.compute import ComputeProfile
from repro.engine.kernel import EmulationKernel
from repro.traffic.apps.base import (
    ForegroundApp,
    WorkflowApp,
    WorkflowEdge,
    WorkflowTask,
)

__all__ = ["GridNPBApp", "build_hc", "build_vp", "build_mb"]

# Per-task compute time (virtual s) and inter-task volumes (bytes), scaled
# so the combined run lasts ~900 s like the paper's.  NPB kernel types get
# different weights: BT/SP/LU are heavy solvers, MG/FT lighter.
_TASK_SECONDS = {"BT": 85.0, "SP": 70.0, "LU": 95.0, "MG": 45.0, "FT": 55.0}
# Class-S tasks are small solvers that spend part of their window blocked on
# workflow I/O, so per-task demand sits below real time.
_TASK_RATE = {"BT": 0.55, "SP": 0.5, "LU": 0.6, "MG": 0.4, "FT": 0.45}


def build_hc(endpoints: list[int], volume: float, start: float) -> WorkflowApp:
    """Helical Chain: 9 tasks in sequence, hopping endpoints round-robin."""
    kinds = ["BT", "SP", "LU"] * 3
    tasks = [
        WorkflowTask(
            name=f"hc{i}-{kind}", endpoint_idx=i % len(endpoints),
            compute_s=_TASK_SECONDS[kind], compute_rate=_TASK_RATE[kind],
        )
        for i, kind in enumerate(kinds)
    ]
    edges = [
        WorkflowEdge(tasks[i].name, tasks[i + 1].name, volume)
        for i in range(len(tasks) - 1)
    ]
    return WorkflowApp("gridnpb-hc", endpoints, tasks, edges, start_time=start)


def build_vp(endpoints: list[int], volume: float, start: float) -> WorkflowApp:
    """Visualization Pipeline: three BT→MG→FT columns, pipelined."""
    tasks: list[WorkflowTask] = []
    edges: list[WorkflowEdge] = []
    n_ep = len(endpoints)
    for col in range(3):
        for row, kind in enumerate(("BT", "MG", "FT")):
            tasks.append(
                WorkflowTask(
                    name=f"vp{col}-{kind}",
                    endpoint_idx=(col * 3 + row) % n_ep,
                    compute_s=_TASK_SECONDS[kind],
                    compute_rate=_TASK_RATE[kind],
                )
            )
        edges.append(WorkflowEdge(f"vp{col}-BT", f"vp{col}-MG", volume))
        edges.append(WorkflowEdge(f"vp{col}-MG", f"vp{col}-FT", volume * 0.6))
        if col > 0:  # pipeline coupling: column feeds the next column's BT
            edges.append(
                WorkflowEdge(f"vp{col - 1}-BT", f"vp{col}-BT", volume * 0.4)
            )
    return WorkflowApp("gridnpb-vp", endpoints, tasks, edges, start_time=start)


def build_mb(endpoints: list[int], volume: float, start: float) -> WorkflowApp:
    """Mixed Bag: 3 layers × 3 tasks with full fan-out and uneven sizes."""
    tasks: list[WorkflowTask] = []
    edges: list[WorkflowEdge] = []
    n_ep = len(endpoints)
    layers = (("LU", "LU", "LU"), ("MG", "MG", "MG"), ("FT", "FT", "FT"))
    # Unevenness: scale factors per column (the "mixed bag").
    scale = (1.6, 1.0, 0.5)
    for layer, kinds in enumerate(layers):
        for col, kind in enumerate(kinds):
            tasks.append(
                WorkflowTask(
                    name=f"mb{layer}{col}-{kind}",
                    endpoint_idx=(layer * 3 + col) % n_ep,
                    compute_s=_TASK_SECONDS[kind] * scale[col],
                    compute_rate=_TASK_RATE[kind],
                )
            )
    for layer in range(2):
        for src_col in range(3):
            for dst_col in range(3):
                src = f"mb{layer}{src_col}-{layers[layer][src_col]}"
                dst = f"mb{layer + 1}{dst_col}-{layers[layer + 1][dst_col]}"
                edges.append(
                    WorkflowEdge(src, dst, volume * scale[src_col] / 3.0)
                )
    return WorkflowApp("gridnpb-mb", endpoints, tasks, edges, start_time=start)


@dataclass
class GridNPBApp(ForegroundApp):
    """The paper's combined HC + VP + MB GridNPB workload.

    Attributes
    ----------
    endpoints:
        Host node ids where GridNPB processes attach (paper: a handful of
        Grid nodes; 9 works well — each MB/VP task gets its own endpoint).
    volume:
        Base inter-task transfer size in bytes (class-S initialization data
        scaled up to exercise the network, per the substitution notes in
        DESIGN.md).
    stagger_s:
        Start offsets of the three sub-benchmarks.
    """

    endpoints: list[int]
    volume: float = 12e6
    stagger_s: float = 60.0
    name: str = "gridnpb"
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if len(self.endpoints) < 3:
            raise ValueError("GridNPB needs at least three endpoints")
        self._parts = [
            build_hc(self.endpoints, self.volume, self.start_time),
            build_vp(
                self.endpoints, self.volume * 0.8,
                self.start_time + self.stagger_s,
            ),
            build_mb(
                self.endpoints, self.volume * 1.2,
                self.start_time + 2 * self.stagger_s,
            ),
        ]

    @property
    def sub_benchmarks(self) -> list[WorkflowApp]:
        return list(self._parts)

    @property
    def duration(self) -> float:
        return max(p.makespan_end for p in self._parts) - self.start_time

    def install(self, kernel: EmulationKernel, rng: np.random.Generator) -> None:
        for part in self._parts:
            part.install(kernel, rng)

    def compute_profile(self) -> ComputeProfile:
        # Concurrent workflow tasks run on separate application-cluster
        # nodes, so their combined demand caps at real time (rate 1.0).
        return ComputeProfile.combine(
            [p.compute_profile() for p in self._parts], cap=1.0
        )

    def offered_bytes(self) -> float:
        """Aggregate inter-task volume (users know their dataflow sizes)."""
        return float(sum(p.offered_bytes() for p in self._parts))
