"""Foreground application interface and the generic workflow machinery.

A foreground app is a *live* traffic source with known injection points
(§3.2: "we determine the traffic injection points of the application, where
its processes attach to the emulated network").  It drives the emulator with
transfers and exposes a compute-demand profile (the part that runs on the
application cluster, not the emulator).

:class:`WorkflowApp` is the shared engine for dataflow-graph applications
(GridNPB): tasks with durations placed on endpoints, edges with transfer
sizes; a static schedule is derived by topological timing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.engine.compute import ComputeProfile
from repro.engine.kernel import EmulationKernel
from repro.engine.packet import Transfer

__all__ = ["ForegroundApp", "WorkflowTask", "WorkflowEdge", "WorkflowApp"]


class ForegroundApp(abc.ABC):
    """Base class for foreground (live application) traffic models."""

    #: injection points — host node ids where app processes attach
    endpoints: list[int]
    #: human-readable name used in experiment reports
    name: str = "app"

    @abc.abstractmethod
    def install(self, kernel: EmulationKernel, rng: np.random.Generator) -> None:
        """Schedule the application's transfers on the kernel."""

    @abc.abstractmethod
    def compute_profile(self) -> ComputeProfile:
        """Compute demand on the application cluster over virtual time."""

    @property
    @abc.abstractmethod
    def duration(self) -> float:
        """Virtual run length of the application."""

    def offered_bytes(self) -> float | None:
        """Coarse user-estimable total traffic volume (bytes), or None.

        Users cannot predict an application's traffic *pattern* (that is
        §3.2's starting point), but they usually know its aggregate data
        volume (matrix sizes, file sizes).  PLACE uses this, when available,
        to cap the full-link-utilization assumption at a plausible average
        rate; without it the literal paper assumption applies.
        """
        return None


@dataclass
class WorkflowTask:
    """One dataflow-graph task.

    Attributes
    ----------
    name:
        Unique task name.
    endpoint_idx:
        Index into the app's ``endpoints`` list where this task runs.
    compute_s:
        Task busy time (virtual seconds).
    compute_rate:
        Compute demand rate while the task runs (seconds of app-cluster
        computation per virtual second).
    """

    name: str
    endpoint_idx: int
    compute_s: float
    compute_rate: float = 1.0


@dataclass
class WorkflowEdge:
    """A dataflow dependency carrying ``nbytes`` from ``src`` to ``dst``."""

    src: str
    dst: str
    nbytes: float


class WorkflowApp(ForegroundApp):
    """Dataflow-graph application executed by static topological timing.

    Task start = max over incoming edges of (predecessor finish + estimated
    transfer time); the transfers themselves are submitted to the emulator
    at the predecessors' finish times, so the emulated network carries
    exactly the workflow's communication.
    """

    def __init__(
        self,
        name: str,
        endpoints: list[int],
        tasks: list[WorkflowTask],
        edges: list[WorkflowEdge],
        transfer_rate_est: float = 100e6 / 8,
        start_time: float = 0.0,
    ) -> None:
        self.name = name
        self.endpoints = list(endpoints)
        self.tasks = {t.name: t for t in tasks}
        if len(self.tasks) != len(tasks):
            raise ValueError("duplicate task names")
        for task in tasks:
            if not 0 <= task.endpoint_idx < len(endpoints):
                raise ValueError(f"task {task.name}: endpoint index out of range")
        self.edges = list(edges)
        for edge in self.edges:
            if edge.src not in self.tasks or edge.dst not in self.tasks:
                raise ValueError(f"edge {edge.src}->{edge.dst}: unknown task")
        self.transfer_rate_est = transfer_rate_est
        self.start_time = start_time
        self._schedule = self._compute_schedule()

    # ------------------------------------------------------------------ #
    def _compute_schedule(self) -> dict[str, tuple[float, float]]:
        """Topological timing: name -> (start, finish) in virtual time."""
        preds: dict[str, list[WorkflowEdge]] = {n: [] for n in self.tasks}
        succs: dict[str, list[WorkflowEdge]] = {n: [] for n in self.tasks}
        indeg = {n: 0 for n in self.tasks}
        for e in self.edges:
            preds[e.dst].append(e)
            succs[e.src].append(e)
            indeg[e.dst] += 1
        ready = sorted(n for n, d in indeg.items() if d == 0)
        schedule: dict[str, tuple[float, float]] = {}
        done = 0
        while ready:
            name = ready.pop(0)
            task = self.tasks[name]
            start = self.start_time
            for e in preds[name]:
                pfinish = schedule[e.src][1]
                start = max(
                    start, pfinish + e.nbytes / self.transfer_rate_est
                )
            schedule[name] = (start, start + task.compute_s)
            done += 1
            for e in succs[name]:
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    ready.append(e.dst)
                    ready.sort()
        if done != len(self.tasks):
            raise ValueError("workflow graph contains a cycle")
        return schedule

    def task_window(self, name: str) -> tuple[float, float]:
        """(start, finish) of a task in the static schedule."""
        return self._schedule[name]

    @property
    def duration(self) -> float:
        return max(f for _, f in self._schedule.values()) - self.start_time

    @property
    def makespan_end(self) -> float:
        """Absolute virtual time when the last task finishes."""
        return max(f for _, f in self._schedule.values())

    # ------------------------------------------------------------------ #
    def install(self, kernel: EmulationKernel, rng: np.random.Generator) -> None:
        for edge in self.edges:
            src_task = self.tasks[edge.src]
            dst_task = self.tasks[edge.dst]
            src_ep = self.endpoints[src_task.endpoint_idx]
            dst_ep = self.endpoints[dst_task.endpoint_idx]
            if src_ep == dst_ep:
                continue  # co-located tasks exchange data locally
            finish = self._schedule[edge.src][1]
            kernel.submit_transfer(
                Transfer(
                    src=src_ep, dst=dst_ep, nbytes=edge.nbytes,
                    tag=f"{self.name}:{edge.src}->{edge.dst}",
                ),
                finish,
            )

    def compute_profile(self) -> ComputeProfile:
        profiles = [
            ComputeProfile(
                times=np.array(self._schedule[name]),
                rates=np.array([task.compute_rate]),
            )
            for name, task in self.tasks.items()
            if task.compute_s > 0
        ]
        return ComputeProfile.combine(profiles)

    def offered_bytes(self) -> float:
        """Sum of inter-endpoint edge volumes (co-located edges excluded)."""
        total = 0.0
        for edge in self.edges:
            src_ep = self.endpoints[self.tasks[edge.src].endpoint_idx]
            dst_ep = self.endpoints[self.tasks[edge.dst].endpoint_idx]
            if src_ep != dst_ep:
                total += edge.nbytes
        return total
