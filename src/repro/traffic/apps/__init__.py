"""Foreground application traffic models (the paper's live Grid apps)."""

from repro.traffic.apps.base import ForegroundApp, WorkflowApp, WorkflowEdge, WorkflowTask
from repro.traffic.apps.gridnpb import GridNPBApp
from repro.traffic.apps.scalapack import ScaLapackApp

__all__ = [
    "ForegroundApp",
    "WorkflowTask",
    "WorkflowEdge",
    "WorkflowApp",
    "ScaLapackApp",
    "GridNPBApp",
]
