"""ScaLapack foreground traffic model.

The paper runs ScaLapack (via MPICH-G over TCP) solving a 3000×3000 system
on 10 nodes for ~10 virtual minutes.  The property the mapping experiments
depend on is that its traffic is *regular and evenly distributed*: block-
cyclic LU makes every process exchange comparable volumes with every other
process over the run, so the PLACE placement approximation (full access-link
utilization, all-to-all even) is close to truth and PROFILE has little left
to win (§4.2.1).

The model reproduces block-cyclic LU communication: iteration ``k`` has the
panel owner (round-robin) broadcast the current panel to all peers, plus a
ring exchange for the row swaps; panel sizes shrink as the factorization
consumes the matrix, and the trailing-update compute demand shrinks
quadratically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.compute import ComputeProfile
from repro.engine.kernel import EmulationKernel
from repro.engine.packet import Transfer
from repro.traffic.apps.base import ForegroundApp

__all__ = ["ScaLapackApp"]


@dataclass
class ScaLapackApp(ForegroundApp):
    """Block-cyclic LU traffic on ``len(endpoints)`` processes.

    Attributes
    ----------
    endpoints:
        Host node ids of the MPI processes (paper: 10 nodes).
    duration_s:
        Virtual run length (paper: ~600 s).
    n_iters:
        Panel iterations spread uniformly over the duration.
    panel_bytes:
        Size of the first panel broadcast; later panels shrink linearly.
    ring_fraction:
        Ring-exchange volume as a fraction of the panel size.
    compute_rate_peak:
        Compute demand rate at iteration 0 (decays quadratically, like the
        trailing-matrix update cost).
    """

    endpoints: list[int]
    duration_s: float = 600.0
    n_iters: int = 90
    panel_bytes: float = 1e6
    ring_fraction: float = 0.5
    compute_rate_peak: float = 0.25
    name: str = "scalapack"
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if len(self.endpoints) < 2:
            raise ValueError("ScaLapack needs at least two processes")
        if self.n_iters < 1:
            raise ValueError("n_iters must be >= 1")

    @property
    def duration(self) -> float:
        return self.duration_s

    def _iter_time(self, k: int) -> float:
        return self.start_time + k * (self.duration_s / self.n_iters)

    def _panel_size(self, k: int) -> float:
        """Panel shrinks linearly; floor keeps late iterations non-trivial."""
        frac = 1.0 - k / self.n_iters
        return max(self.panel_bytes * frac, self.panel_bytes * 0.05)

    def install(self, kernel: EmulationKernel, rng: np.random.Generator) -> None:
        procs = self.endpoints
        p = len(procs)
        for k in range(self.n_iters):
            t = self._iter_time(k)
            size = self._panel_size(k)
            # 2D block-cyclic grid: the column owner broadcasts the panel
            # along its process row while the row owner broadcasts the
            # multiplier row along its process column — two concurrent
            # broadcasts from different sources every iteration.
            for owner, fraction, label in (
                (k % p, 1.0, "panel"),
                ((k + p // 2) % p, 0.7, "lrow"),
            ):
                nbytes = size * fraction
                if nbytes < 1.0:
                    continue
                for j in range(p):
                    if j == owner:
                        continue
                    kernel.submit_transfer(
                        Transfer(
                            src=procs[owner], dst=procs[j], nbytes=nbytes,
                            tag=f"{self.name}:{label}{k}",
                        ),
                        t,
                    )
            # Row-swap ring exchange: i -> i+1 (mod p).
            ring = size * self.ring_fraction
            if ring >= 1.0:
                for i in range(p):
                    j = (i + 1) % p
                    kernel.submit_transfer(
                        Transfer(
                            src=procs[i], dst=procs[j], nbytes=ring,
                            tag=f"{self.name}:ring{k}",
                        ),
                        t + 0.2 * (self.duration_s / self.n_iters),
                    )

    def compute_profile(self) -> ComputeProfile:
        """Quadratic decay: trailing update is O((n-k)^2) per panel."""
        edges = np.array(
            [self._iter_time(k) for k in range(self.n_iters + 1)]
        )
        fracs = 1.0 - np.arange(self.n_iters) / self.n_iters
        rates = self.compute_rate_peak * fracs**2
        return ComputeProfile(times=edges, rates=rates)

    def offered_bytes(self) -> float:
        """User-estimable aggregate volume (the user knows the matrix size)."""
        return self.total_bytes()

    def total_bytes(self) -> float:
        """Analytic total traffic volume (used by tests)."""
        p = len(self.endpoints)
        total = 0.0
        for k in range(self.n_iters):
            size = self._panel_size(k)
            total += size * (p - 1)          # panel broadcast
            if size * 0.7 >= 1.0:
                total += size * 0.7 * (p - 1)  # multiplier-row broadcast
            ring = size * self.ring_fraction
            if ring >= 1.0:
                total += ring * p
        return total
