"""TCP-like windowed flows.

The paper's foreground applications run over TCP (ScaLapack via MPICH-G "a
network of TCP/IP connections"); the background HTTP model of [21] is TCP
too.  This module adds a closed-loop TCP abstraction on top of the
emulation kernel: a :class:`TcpFlow` sends one congestion window per round
trip, growing the window by slow start and congestion avoidance, halving it
on a retransmission timeout — so transfer pacing reacts to emulated network
conditions (RTT, queueing, drop-tail losses) instead of being open-loop.

This is deliberately a *flow-level* TCP (per-window, not per-segment ACKs):
it reproduces the burst structure and loss reaction that matter for load
shape at a fraction of the event cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.engine.kernel import EmulationKernel
from repro.engine.packet import MTU_BYTES, Transfer
from repro.routing.tables import RoutingTables
from repro.topology.network import Network
from repro.traffic.flows import PredictedFlow, TrafficGenerator

__all__ = ["TcpFlow", "TcpTraffic"]


class TcpFlow:
    """One TCP-like bulk transfer.

    Parameters
    ----------
    kernel:
        The emulation kernel to run on.
    src, dst:
        Host node ids.
    nbytes:
        Total payload.
    mss:
        Segment size (defaults to the MTU).
    init_cwnd:
        Initial congestion window, in segments.
    ssthresh:
        Slow-start threshold, in segments.
    max_cwnd:
        Receive-window cap, in segments.
    rto:
        Retransmission timeout (seconds); a window unacknowledged after
        this long is retransmitted with the window halved.
    max_retries:
        Consecutive timeouts before the flow gives up.
    on_complete:
        ``fn(kernel, time, flow)`` invoked when the last byte is delivered.
    """

    def __init__(
        self,
        kernel: EmulationKernel,
        src: int,
        dst: int,
        nbytes: float,
        mss: float = MTU_BYTES,
        init_cwnd: int = 2,
        ssthresh: int = 32,
        max_cwnd: int = 64,
        rto: float = 1.0,
        max_retries: int = 8,
        on_complete: Optional[Callable] = None,
        tag: str = "tcp",
    ) -> None:
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if init_cwnd < 1 or max_cwnd < init_cwnd:
            raise ValueError("need 1 <= init_cwnd <= max_cwnd")
        self.kernel = kernel
        self.src = src
        self.dst = dst
        self.total_bytes = float(nbytes)
        self.mss = float(mss)
        self.init_cwnd = int(init_cwnd)
        self.ssthresh = int(ssthresh)
        self.max_cwnd = int(max_cwnd)
        self.rto = float(rto)
        self.max_retries = int(max_retries)
        self.on_complete = on_complete
        self.tag = tag

        self.cwnd = int(init_cwnd)
        self.bytes_acked = 0.0
        self.rounds = 0
        self.timeouts = 0
        self.completed = False
        self.failed = False
        self._window_seq = 0
        self._acked_seq = -1
        self._retries = 0

    # ------------------------------------------------------------------ #
    def start(self, time: float) -> None:
        """Begin transmission at virtual ``time``."""
        self._send_window(time)

    @property
    def remaining(self) -> float:
        return max(0.0, self.total_bytes - self.bytes_acked)

    def _send_window(self, time: float) -> None:
        size = min(self.cwnd * self.mss, self.remaining)
        seq = self._window_seq
        self.rounds += 1
        transfer = Transfer(
            src=self.src, dst=self.dst, nbytes=size, tag=self.tag,
            on_delivery=lambda k, t, _tr, _seq=seq, _size=size:
                self._acked(t, _seq, _size),
        )
        self.kernel.submit_transfer(transfer, time)
        self.kernel.schedule(
            time + self.rto, lambda k, t, _seq=seq: self._check_timeout(t, _seq)
        )

    def _acked(self, time: float, seq: int, size: float) -> None:
        if seq != self._window_seq or self.completed or self.failed:
            return  # stale (retransmitted) window
        self._acked_seq = seq
        self._window_seq += 1
        self._retries = 0
        self.bytes_acked += size
        if self.remaining <= 0:
            self.completed = True
            if self.on_complete is not None:
                self.on_complete(self.kernel, time, self)
            return
        # Window growth: slow start doubles, congestion avoidance adds one.
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd * 2, self.max_cwnd)
        else:
            self.cwnd = min(self.cwnd + 1, self.max_cwnd)
        self._send_window(time)

    def _check_timeout(self, time: float, seq: int) -> None:
        if seq != self._window_seq or self.completed or self.failed:
            return  # window was acknowledged (or flow is done)
        self.timeouts += 1
        self._retries += 1
        if self._retries > self.max_retries:
            self.failed = True
            return
        # Multiplicative decrease, then retransmit the window.
        self.ssthresh = max(2, self.cwnd // 2)
        self.cwnd = self.init_cwnd
        self._window_seq += 1  # invalidate late ACKs of the lost window
        self._send_window(time)


@dataclass
class TcpTraffic(TrafficGenerator):
    """Background bulk TCP transfers on explicit pairs.

    Each pair starts a new :class:`TcpFlow` of ``nbytes`` every ``period``
    seconds (if the previous one finished; otherwise the slot is skipped —
    a busy server does not pile up copies of the same job).
    """

    pairs: list[tuple[int, int]]
    nbytes: float = 500e3
    period: float = 20.0
    duration: float = 300.0
    rto: float = 1.0
    flows: list[TcpFlow] = field(default_factory=list, repr=False)

    def install(self, kernel: EmulationKernel, rng: np.random.Generator) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        for src, dst in self.pairs:
            start = float(rng.uniform(0.0, self.period))
            kernel.schedule(start, self._launch, src, dst)

    def _launch(self, kernel: EmulationKernel, time: float, src: int,
                dst: int) -> None:
        if time >= self.duration:
            return
        flow = TcpFlow(kernel, src, dst, self.nbytes, rto=self.rto,
                       tag="tcp-bulk")
        self.flows.append(flow)
        flow.start(time)
        kernel.schedule(time + self.period, self._launch, src, dst)

    def predicted_flows(
        self, net: Network, tables: RoutingTables
    ) -> list[PredictedFlow]:
        rate = self.nbytes / self.period
        return [PredictedFlow(s, d, rate) for s, d in self.pairs]

    def describe(self) -> str:
        return (
            f"TCP({len(self.pairs)} pairs, {self.nbytes / 1e3:.0f}KB "
            f"every {self.period}s)"
        )
