"""Traffic specification files — the paper's §4.1.4 user interface.

MaSSF users describe background traffic with blocks like::

    Traffic [ name HTTP
      request_size       200KByte
      think_time         12
      client_per_server  10
      server_number      107
    ]

This module parses that exact syntax (plus CBR/Poisson/TCP blocks and an
``Application`` block for the foreground app) into a ready
:class:`~repro.experiments.workloads.Workload`.  Sizes accept the paper's
unit spellings (``200KByte``, ``1.5MB``, ``64kb`` …); bare numbers are
seconds or counts depending on the key.
"""

from __future__ import annotations

import re

import numpy as np

from repro.topology.network import Network

__all__ = ["parse_spec", "parse_size", "SpecError"]


class SpecError(ValueError):
    """Raised on malformed traffic specifications."""


_SIZE_RE = re.compile(
    r"^(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[a-zA-Z]*)$"
)
_SIZE_UNITS = {
    "": 1.0,
    "b": 1.0, "byte": 1.0, "bytes": 1.0,
    "kb": 1e3, "kbyte": 1e3, "kbytes": 1e3, "k": 1e3,
    "mb": 1e6, "mbyte": 1e6, "mbytes": 1e6, "m": 1e6,
    "gb": 1e9, "gbyte": 1e9, "gbytes": 1e9, "g": 1e9,
}


def parse_size(text: str) -> float:
    """Parse ``200KByte`` / ``1.5MB`` / ``512`` into bytes."""
    match = _SIZE_RE.match(text.strip())
    if not match:
        raise SpecError(f"cannot parse size {text!r}")
    unit = match.group("unit").lower()
    if unit not in _SIZE_UNITS:
        raise SpecError(f"unknown size unit {match.group('unit')!r}")
    return float(match.group("num")) * _SIZE_UNITS[unit]


# --------------------------------------------------------------------- #
# Tokenizer (shares the DML bracket grammar)
# --------------------------------------------------------------------- #
def _tokenize(text: str):
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c.isspace():
            i += 1
        elif c in "[]":
            yield c
            i += 1
        elif c == "#":
            j = text.find("\n", i)
            i = n if j < 0 else j + 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in "[]#":
                j += 1
            yield text[i:j]
            i = j


def _parse_blocks(text: str) -> list[tuple[str, dict[str, str]]]:
    tokens = list(_tokenize(text))
    blocks: list[tuple[str, dict[str, str]]] = []
    i = 0
    while i < len(tokens):
        kind = tokens[i]
        if i + 1 >= len(tokens) or tokens[i + 1] != "[":
            raise SpecError(f"expected '[' after {kind!r}")
        i += 2
        body: dict[str, str] = {}
        while i < len(tokens) and tokens[i] != "]":
            key = tokens[i]
            if i + 1 >= len(tokens) or tokens[i + 1] in "[]":
                raise SpecError(f"key {key!r} has no value")
            body[key.lower()] = tokens[i + 1]
            i += 2
        if i >= len(tokens):
            raise SpecError("unterminated block")
        i += 1  # skip ']'
        blocks.append((kind.lower(), body))
    return blocks


# --------------------------------------------------------------------- #
# Block builders
# --------------------------------------------------------------------- #
def _pairs_from(body: dict[str, str], net: Network,
                rng: np.random.Generator, n_default: int = 4):
    hosts = [h.node_id for h in net.hosts()]
    count = int(body.get("pairs", n_default))
    if count > len(hosts) // 2:
        raise SpecError(f"not enough hosts for {count} pairs")
    picks = rng.choice(hosts, size=2 * count, replace=False)
    return [(int(picks[2 * i]), int(picks[2 * i + 1])) for i in range(count)]


def _build_http(body, net, rng, duration):
    from repro.traffic.http import HttpTraffic

    return HttpTraffic(
        request_size=parse_size(body.get("request_size", "200KByte")),
        think_time=float(body.get("think_time", 12.0)),
        clients_per_server=int(body.get("client_per_server", 10)),
        n_servers=int(body.get("server_number", 4)),
        duration=float(body.get("duration", duration)),
        site_skew=float(body.get("site_skew", 0.0)),
    )


def _build_cbr(body, net, rng, duration):
    from repro.traffic.cbr import CbrTraffic

    return CbrTraffic(
        pairs=_pairs_from(body, net, rng),
        nbytes=parse_size(body.get("size", "100KByte")),
        period=float(body.get("period", 5.0)),
        duration=float(body.get("duration", duration)),
    )


def _build_poisson(body, net, rng, duration):
    from repro.traffic.poisson import PoissonTraffic

    return PoissonTraffic(
        pairs=_pairs_from(body, net, rng),
        mean_nbytes=parse_size(body.get("mean_size", "50KByte")),
        rate=float(body.get("rate", 0.5)),
        duration=float(body.get("duration", duration)),
    )


def _build_tcp(body, net, rng, duration):
    from repro.traffic.tcp import TcpTraffic

    return TcpTraffic(
        pairs=_pairs_from(body, net, rng),
        nbytes=parse_size(body.get("size", "500KByte")),
        period=float(body.get("period", 20.0)),
        duration=float(body.get("duration", duration)),
    )


_TRAFFIC_BUILDERS = {
    "http": _build_http,
    "cbr": _build_cbr,
    "poisson": _build_poisson,
    "tcp": _build_tcp,
}


def _build_app(body, net, rng):
    from repro.experiments.workloads import packed_endpoints, spread_endpoints
    from repro.traffic.apps.gridnpb import GridNPBApp
    from repro.traffic.apps.scalapack import ScaLapackApp

    name = body.get("name", "scalapack").lower()
    nodes = int(body.get("nodes", 10 if name == "scalapack" else 9))
    placement = body.get("placement", "packed")
    place = packed_endpoints if placement == "packed" else spread_endpoints
    endpoints = place(net, nodes, rng)
    if name == "scalapack":
        kwargs = {}
        if "panel_size" in body:
            kwargs["panel_bytes"] = parse_size(body["panel_size"])
        if "duration" in body:
            kwargs["duration_s"] = float(body["duration"])
        return ScaLapackApp(endpoints=endpoints, **kwargs)
    if name == "gridnpb":
        kwargs = {}
        if "volume" in body:
            kwargs["volume"] = parse_size(body["volume"])
        return GridNPBApp(endpoints=endpoints, **kwargs)
    raise SpecError(f"unknown application {name!r}")


def parse_spec(text: str, net: Network, seed: int = 0):
    """Parse a traffic specification into a Workload.

    At most one ``Application`` block; any number of ``Traffic`` blocks.
    """
    from repro.experiments.workloads import Workload

    rng = np.random.default_rng(seed)
    background = []
    app = None
    duration_hint = 300.0
    for kind, body in _parse_blocks(text):
        if kind == "traffic":
            name = body.get("name", "").lower()
            builder = _TRAFFIC_BUILDERS.get(name)
            if builder is None:
                raise SpecError(
                    f"unknown traffic model {body.get('name')!r}; "
                    f"choose from {sorted(_TRAFFIC_BUILDERS)}"
                )
            background.append(builder(body, net, rng, duration_hint))
        elif kind == "application":
            if app is not None:
                raise SpecError("multiple Application blocks")
            app = _build_app(body, net, rng)
        elif kind == "experiment":
            duration_hint = float(body.get("duration", duration_hint))
        else:
            raise SpecError(f"unknown block {kind!r}")

    duration = duration_hint
    if app is not None:
        duration = max(duration, app.duration * 1.05)
    return Workload(
        background=background, app=app, duration=duration,
        name=f"{net.name}/spec",
    )
