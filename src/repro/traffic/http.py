"""HTTP background traffic (the paper's §4.1.4 workload description).

The paper configures background traffic with records like::

    Traffic [ name HTTP
      request_size       200KByte
      think_time         12
      client_per_server  10
      server_number      107 ]

Servers and clients are selected randomly from the virtual network's
endpoints.  Each client runs the classic closed ON/OFF loop (Barford &
Crovella style): think for an exponential time, send a small GET, receive a
``request_size`` response, repeat.  The loop is genuinely closed — responses
are triggered by request *delivery* inside the emulator, so response timing
reflects emulated network conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.kernel import EmulationKernel
from repro.engine.packet import Transfer
from repro.routing.tables import RoutingTables
from repro.topology.network import Network
from repro.traffic.flows import PredictedFlow, TrafficGenerator

__all__ = ["HttpTraffic"]

GET_BYTES = 400.0  # size of an HTTP request


@dataclass
class HttpTraffic(TrafficGenerator):
    """Closed-loop HTTP client/server background load.

    Attributes
    ----------
    request_size:
        Response payload in bytes (paper default: 200 KByte).
    think_time:
        Mean exponential think time between a response and the next request.
    clients_per_server, n_servers:
        Population sizes; ``n_servers * clients_per_server`` client loops.
    duration:
        No new requests are issued after this virtual time.
    hosts:
        Candidate endpoint node ids (defaults to every host in the network
        at install time).
    site_skew:
        Zipf-like bias of *server* placement across sites: 0 = uniform over
        hosts; larger values concentrate servers on a few randomly-ranked
        sites (server farms live somewhere specific, they are not sprinkled
        uniformly).  Clients stay uniform.
    """

    request_size: float = 200e3
    think_time: float = 12.0
    clients_per_server: int = 10
    n_servers: int = 4
    duration: float = 300.0
    hosts: list[int] | None = None
    site_skew: float = 0.0
    # Populated by install(); exposed for tests and for PLACE.
    pairs: list[tuple[int, int]] = field(default_factory=list, repr=False)

    def _select_population(
        self, net: Network, rng: np.random.Generator
    ) -> list[tuple[int, int]]:
        """Pick (client, server) pairs randomly from the endpoints."""
        host_ids = self.hosts
        if host_ids is None:
            host_ids = [h.node_id for h in net.hosts()]
        if len(host_ids) < 2:
            raise ValueError("need at least two hosts for HTTP traffic")
        probs = None
        if self.site_skew > 0:
            site_of = {h: net.node(h).site or "_" for h in host_ids}
            sites = sorted(set(site_of.values()))
            ranked = [sites[i] for i in rng.permutation(len(sites))]
            site_weight = {
                s: (rank + 1.0) ** -self.site_skew
                for rank, s in enumerate(ranked)
            }
            members = {s: sum(1 for h in host_ids if site_of[h] == s)
                       for s in sites}
            raw = np.array(
                [site_weight[site_of[h]] / members[site_of[h]]
                 for h in host_ids]
            )
            probs = raw / raw.sum()
        servers = rng.choice(
            host_ids, size=min(self.n_servers, len(host_ids)),
            replace=False, p=probs,
        )
        pairs: list[tuple[int, int]] = []
        for server in servers:
            others = [h for h in host_ids if h != server]
            clients = rng.choice(
                others,
                size=min(self.clients_per_server, len(others)),
                replace=False,
            )
            pairs.extend((int(c), int(server)) for c in clients)
        return pairs

    def prepare(self, net: Network, rng: np.random.Generator) -> None:
        """Select the client/server population (idempotent once selected)."""
        if not self.pairs:
            self.pairs = self._select_population(net, rng)

    # ------------------------------------------------------------------ #
    # Live generation (closed loop)
    # ------------------------------------------------------------------ #
    def install(self, kernel: EmulationKernel, rng: np.random.Generator) -> None:
        self.prepare(kernel.net, rng)
        for client, server in self.pairs:
            # Stagger the first request uniformly across one think period.
            start = float(rng.uniform(0.0, self.think_time))
            kernel.schedule(start, self._send_request, client, server, rng)

    def _send_request(
        self,
        kernel: EmulationKernel,
        time: float,
        client: int,
        server: int,
        rng: np.random.Generator,
    ) -> None:
        if time >= self.duration:
            return

        def on_request_delivered(k, t, _transfer, _c=client, _s=server):
            response = Transfer(
                src=_s, dst=_c, nbytes=self.request_size, tag="http-rsp",
                on_delivery=lambda k2, t2, _tr: self._schedule_next(
                    k2, t2, _c, _s, rng
                ),
            )
            k.submit_transfer(response, t)

        request = Transfer(
            src=client, dst=server, nbytes=GET_BYTES, tag="http-req",
            on_delivery=on_request_delivered,
        )
        kernel.submit_transfer(request, time)

    def _schedule_next(
        self,
        kernel: EmulationKernel,
        time: float,
        client: int,
        server: int,
        rng: np.random.Generator,
    ) -> None:
        think = float(rng.exponential(self.think_time))
        nxt = time + think
        if nxt < self.duration:
            kernel.schedule(nxt, self._send_request, client, server, rng)

    # ------------------------------------------------------------------ #
    # Prediction (what the user would hand PLACE)
    # ------------------------------------------------------------------ #
    def predicted_flows(
        self, net: Network, tables: RoutingTables
    ) -> list[PredictedFlow]:
        """Average-bandwidth prediction per client/server pair.

        One response of ``request_size`` per think period, i.e.
        ``request_size / think_time`` server→client, plus the (negligible
        but included) request direction.  Requires :meth:`install` to have
        selected the population, or ``pairs`` to be set explicitly.
        """
        if not self.pairs:
            raise RuntimeError(
                "population not selected yet; call install() first or set "
                ".pairs explicitly"
            )
        rate = self.request_size / self.think_time
        req_rate = GET_BYTES / self.think_time
        flows: list[PredictedFlow] = []
        for client, server in self.pairs:
            flows.append(PredictedFlow(server, client, rate))
            flows.append(PredictedFlow(client, server, req_rate))
        return flows

    def describe(self) -> str:
        return (
            f"HTTP(request={self.request_size / 1e3:.0f}KB, "
            f"think={self.think_time}s, "
            f"{self.n_servers}x{self.clients_per_server} pairs)"
        )
