"""Traffic-generator interface and predicted-flow records.

§3.2: "it is reasonable that all traffic generators can provide some
prediction of their generated traffic load, for example, specifying the
average traffic bandwidth between two endpoints."  A
:class:`PredictedFlow` is exactly that record; PLACE routes each one and
accumulates per-link load.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.engine.kernel import EmulationKernel
from repro.routing.tables import RoutingTables
from repro.topology.network import Network

__all__ = ["PredictedFlow", "TrafficGenerator"]


@dataclass(frozen=True)
class PredictedFlow:
    """User-level prediction of one aggregate flow.

    Attributes
    ----------
    src, dst:
        Endpoint node ids.
    bytes_per_s:
        Predicted average bandwidth of the flow.
    """

    src: int
    dst: int
    bytes_per_s: float


class TrafficGenerator(abc.ABC):
    """Base class for background traffic generators.

    Lifecycle: :meth:`prepare` fixes any random population choices (so the
    PLACE prediction can be read before the run), then :meth:`install`
    schedules the generator's events on a kernel.
    """

    def prepare(self, net: Network, rng: np.random.Generator) -> None:
        """Fix population choices; default is a no-op."""

    @abc.abstractmethod
    def install(self, kernel: EmulationKernel, rng: np.random.Generator) -> None:
        """Schedule the generator's initial events on the kernel."""

    @abc.abstractmethod
    def predicted_flows(
        self, net: Network, tables: RoutingTables
    ) -> list[PredictedFlow]:
        """The average-bandwidth prediction the user would supply to PLACE."""

    def describe(self) -> str:
        """Human-readable one-liner for experiment logs."""
        return type(self).__name__
