"""Poisson-arrival background traffic.

Transfers arrive on each pair as a Poisson process with exponential sizes —
burstier than CBR but with the same predictable mean rate, sitting between
CBR and the closed-loop HTTP model in predictability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.kernel import EmulationKernel
from repro.engine.packet import Transfer
from repro.routing.tables import RoutingTables
from repro.topology.network import Network
from repro.traffic.flows import PredictedFlow, TrafficGenerator

__all__ = ["PoissonTraffic"]


@dataclass
class PoissonTraffic(TrafficGenerator):
    """Poisson arrivals with exponential transfer sizes on explicit pairs.

    Attributes
    ----------
    pairs:
        ``(src, dst)`` host id pairs.
    mean_nbytes:
        Mean transfer size.
    rate:
        Arrivals per second on each pair.
    duration:
        Stop issuing at this virtual time.
    min_bytes:
        Floor on sampled sizes (a transfer must carry at least one byte).
    """

    pairs: list[tuple[int, int]]
    mean_nbytes: float = 50e3
    rate: float = 0.5
    duration: float = 300.0
    min_bytes: float = 64.0

    def install(self, kernel: EmulationKernel, rng: np.random.Generator) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        for src, dst in self.pairs:
            t = float(rng.exponential(1.0 / self.rate))
            while t < self.duration:
                size = max(self.min_bytes, float(rng.exponential(self.mean_nbytes)))
                kernel.submit_transfer(
                    Transfer(src=src, dst=dst, nbytes=size, tag="poisson"), t
                )
                t += float(rng.exponential(1.0 / self.rate))

    def predicted_flows(
        self, net: Network, tables: RoutingTables
    ) -> list[PredictedFlow]:
        mean_rate = self.mean_nbytes * self.rate
        return [PredictedFlow(s, d, mean_rate) for s, d in self.pairs]

    def describe(self) -> str:
        return (
            f"Poisson({len(self.pairs)} pairs, mean "
            f"{self.mean_nbytes / 1e3:.0f}KB @ {self.rate}/s)"
        )
