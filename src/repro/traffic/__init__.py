"""Traffic generation: background models and foreground applications.

Background (§4.1.4): :class:`repro.traffic.http.HttpTraffic` (the paper's
HTTP workload description), plus CBR and Poisson generators.  Each generator
exposes the two faces the mapping approaches need:

- ``install(kernel, rng)`` — drive the emulation (closed-loop where the real
  generator is closed-loop);
- ``predicted_flows(net, tables)`` — the user-suppliable average-bandwidth
  prediction PLACE consumes.

Foreground: :class:`repro.traffic.apps.scalapack.ScaLapackApp` and
:class:`repro.traffic.apps.gridnpb.GridNPBApp` model the paper's two live
Grid applications as traffic + compute-demand generators with explicit
injection points.
"""

from repro.traffic.cbr import CbrTraffic
from repro.traffic.flows import PredictedFlow, TrafficGenerator
from repro.traffic.http import HttpTraffic
from repro.traffic.poisson import PoissonTraffic

__all__ = [
    "PredictedFlow",
    "TrafficGenerator",
    "HttpTraffic",
    "CbrTraffic",
    "PoissonTraffic",
]
