"""Constant-bit-rate background traffic.

The simplest aggregate model: each configured pair ships a fixed-size
transfer every ``period`` seconds.  Its prediction is exact (rate =
size/period), which makes CBR the control case where PLACE should match
PROFILE almost perfectly — a property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.kernel import EmulationKernel
from repro.engine.packet import Transfer
from repro.routing.tables import RoutingTables
from repro.topology.network import Network
from repro.traffic.flows import PredictedFlow, TrafficGenerator

__all__ = ["CbrTraffic"]


@dataclass
class CbrTraffic(TrafficGenerator):
    """Fixed-rate transfers on explicit endpoint pairs.

    Attributes
    ----------
    pairs:
        ``(src, dst)`` host id pairs.
    nbytes:
        Transfer size per period.
    period:
        Seconds between transfers on each pair.
    duration:
        Stop issuing transfers at this virtual time.
    jitter:
        Optional uniform start-phase jitter (fraction of a period) so pairs
        do not fire in lockstep.
    """

    pairs: list[tuple[int, int]]
    nbytes: float = 100e3
    period: float = 5.0
    duration: float = 300.0
    jitter: float = 0.5

    def install(self, kernel: EmulationKernel, rng: np.random.Generator) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        for src, dst in self.pairs:
            phase = float(rng.uniform(0.0, self.jitter * self.period))
            t = phase
            while t < self.duration:
                kernel.submit_transfer(
                    Transfer(src=src, dst=dst, nbytes=self.nbytes, tag="cbr"),
                    t,
                )
                t += self.period

    def predicted_flows(
        self, net: Network, tables: RoutingTables
    ) -> list[PredictedFlow]:
        rate = self.nbytes / self.period
        return [PredictedFlow(s, d, rate) for s, d in self.pairs]

    def describe(self) -> str:
        return (
            f"CBR({len(self.pairs)} pairs, {self.nbytes / 1e3:.0f}KB "
            f"every {self.period}s)"
        )
