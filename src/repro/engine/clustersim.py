"""Operational simulation of the engine cluster (cost-model validation).

:func:`repro.engine.parallel.evaluate_mapping` computes wall-clock time
*analytically* (per-chunk maxima plus sync charges).  This module computes
it *operationally*: each engine node is simulated as a server with its own
wall-clock cursor, advancing through the conservative windows under a
bounded-skew rule —

    an engine node may begin its work for window ``w`` only after every
    engine node has completed window ``w - skew``

— which is the execution the analytic model approximates.  Cross-checking
the two (tests/engine/test_clustersim.py) validates the cost model the way
a queueing simulation validates a closed-form bound: the operational wall
time must never exceed the analytic one (the analytic model serializes
whole chunks; the operational engine pipelines within them), stay above the
trivial lower bounds, and preserve the ranking of mappings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.costmodel import CostModel
from repro.engine.parallel import lookahead_of
from repro.engine.trace import EventTrace
from repro.topology.network import Network

__all__ = ["ClusterSimResult", "simulate_cluster"]


@dataclass
class ClusterSimResult:
    """Outcome of one operational cluster simulation."""

    wall: float
    busy: np.ndarray          # per-engine-node busy seconds
    n_windows_executed: int
    lookahead: float

    @property
    def utilization(self) -> np.ndarray:
        """Per-engine-node busy fraction of the total wall clock."""
        if self.wall <= 0:
            return np.zeros_like(self.busy)
        return self.busy / self.wall


def simulate_cluster(
    trace: EventTrace,
    net: Network,
    parts: np.ndarray,
    cost: CostModel | None = None,
) -> ClusterSimResult:
    """Simulate the engine cluster executing ``trace`` under ``parts``.

    Uses the same per-event costs, window length, skew horizon, and
    remote-window synchronization charges as the analytic evaluator, but
    advances per-engine-node cursors window by window instead of summing
    chunk maxima.
    """
    cost = cost or CostModel()
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (net.n_nodes,):
        raise ValueError("parts must assign every network node")
    k = int(parts.max()) + 1 if len(parts) else 1

    lookahead = lookahead_of(net, parts, cost.min_lookahead)
    window_len = lookahead if np.isfinite(lookahead) else max(trace.duration, 1e-9)
    n_windows = max(1, int(np.ceil(trace.duration / window_len)))

    if trace.n_events == 0:
        return ClusterSimResult(
            wall=0.0, busy=np.zeros(k), n_windows_executed=0,
            lookahead=lookahead,
        )

    # Per-(window, lp) work and the remote-window flags — identical
    # span-spreading to the analytic model.
    ev_lp = parts[trace.node]
    forwarding = trace.next_node >= 0
    remote = forwarding & (parts[np.maximum(trace.next_node, 0)] != ev_lp)
    ev_cost = (
        trace.packets * cost.per_packet_cost
        + cost.per_event_cost
        + remote * cost.remote_event_cost
    )
    MAX_SPREAD = 32
    win0 = np.minimum((trace.time / window_len).astype(np.int64), n_windows - 1)
    win1 = np.minimum(
        ((trace.time + trace.span) / window_len).astype(np.int64),
        n_windows - 1,
    )
    n_span = np.minimum(win1 - win0 + 1, MAX_SPREAD)
    total_rows = int(n_span.sum())
    starts = np.cumsum(n_span) - n_span
    pos = np.arange(total_rows) - np.repeat(starts, n_span)
    full_span = np.repeat(win1 - win0 + 1, n_span)
    win = np.repeat(win0, n_span) + pos * full_span // np.repeat(n_span, n_span)
    piece_cost = np.repeat(ev_cost / n_span, n_span)
    piece_lp = np.repeat(ev_lp, n_span)
    remote_pieces = np.repeat(remote, n_span)

    # Dense per-active-window work table.
    active_windows, win_index = np.unique(win, return_inverse=True)
    n_active = len(active_windows)
    work = np.zeros((n_active, k), dtype=np.float64)
    np.add.at(work, (win_index, piece_lp), piece_cost)
    window_remote = np.zeros(n_active, dtype=bool)
    np.logical_or.at(window_remote, win_index[remote_pieces], True)

    sync = cost.sync_cost(k)
    skew = max(1, int(cost.skew_windows))

    # Operational recurrence over active windows.  finish[i, lp] is when lp
    # completes active window i; the bounded-skew barrier says lp may start
    # active window i only after every lp finished the last active window
    # at least `skew` raw windows older.
    cursors = np.zeros(k, dtype=np.float64)
    finish_hist: list[tuple[int, float]] = []  # (raw window id, max finish)
    busy = np.zeros(k, dtype=np.float64)
    barrier = 0.0
    hist_ptr = 0
    for i in range(n_active):
        raw_w = int(active_windows[i])
        # Advance the barrier: all finishes of windows <= raw_w - skew bind.
        while hist_ptr < len(finish_hist) and finish_hist[hist_ptr][0] <= raw_w - skew:
            barrier = max(barrier, finish_hist[hist_ptr][1])
            hist_ptr += 1
        row_sync = sync if window_remote[i] else 0.0
        start = np.maximum(cursors, barrier)
        spent = work[i] + np.where(work[i] > 0, row_sync, 0.0)
        cursors = start + spent
        busy += spent
        finish_hist.append((raw_w, float(cursors.max())))
    return ClusterSimResult(
        wall=float(cursors.max()), busy=busy,
        n_windows_executed=n_active, lookahead=lookahead,
    )
