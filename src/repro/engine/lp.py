"""Logical processes: sharded event execution for the batched kernels.

Two layers live here:

- :class:`LPShard` — the numeric core of batched event processing.  A shard
  owns the FIFO busy-time state and per-link accounting for a subset of
  (link, direction) channels and processes one segment of same-window train
  events at a time, entirely from numpy arrays (no train objects, no
  callbacks).  The sequential :class:`~repro.engine.kernel.EmulationKernel`
  runs ONE shard covering the whole network; the parallel engine runs one
  per partition.
- :class:`ParallelEmulationKernel` — the multi-process LP engine.  The
  network is sharded by a node partition (``parts``); each LP is a forked
  worker process owning every (link, direction) channel whose *sending*
  endpoint it owns (events execute at the sender, so each channel's FIFO
  recurrence stays within one LP).  The parent process remains the
  sequencer: it owns the control heap, delivery hooks, flow ids, the
  transfer log, sequence-number assignment and trace assembly, so the
  produced :class:`~repro.engine.trace.EventTrace` is byte-identical to the
  sequential engine's.  Workers exchange segments and results over pipes at
  segment granularity — the conservative-window barrier of the paper's
  MaSSF kernel.

Per-link float accounting is accumulated per shard and summed elementwise
at the end of the run, so with more than one LP those *aggregate* arrays
can differ from the sequential engine's in the last bit (float addition is
not associative); the event trace, the semantic stats and the drop counts
remain exact.

The parallel engine supports drop-tail or unlimited queues only: RED
admission and NetFlow collection consume state in global arrival order,
which no partitioned execution can reproduce — construct it with those and
it refuses (naming the offending option), pointing back at
``engine="sequential"``.

**Live migration.**  Because each (link, direction) channel's FIFO
recurrence is self-contained — the only cross-window state is the
channel's busy-until float — a node can change owners *between* windows
without perturbing the run: :meth:`ParallelEmulationKernel.migrate_routers`
serializes the node's outgoing-channel busy times out of the owning LP
(zeroing them there, so end-of-run summation stays exact), installs the
exact float bits into the destination LP, and repoints ``parts``.  Events
already staged in the calendar are routed at dispatch time, so both LPs'
event queues splice automatically and the post-migration
:class:`~repro.engine.trace.EventTrace` is byte-identical to a
single-process run with the same schedule.  Migrations must happen at
window barriers — install them via ``kernel.barrier_hooks`` (see
:mod:`repro.rebalance`).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.engine.eventq import EventBatch
from repro.engine.kernel import EmulationKernel
from repro.engine.queues import DropTail
from repro.engine.sync import group_by_owner
from repro.engine.trace import DELIVERED
from repro.routing.tables import RoutingTables
from repro.topology.network import Network

__all__ = [
    "LPShard",
    "ShardContext",
    "ShardResult",
    "ParallelEmulationKernel",
    "shard_context",
]

#: Fork-inherited state for worker processes (set around Process.start()).
_SHARED: dict | None = None

#: Serialized migration payload per (link, direction) channel: the flat
#: busy key (int64) plus the busy-until time (float64).
CHANNEL_STATE_BYTES = 16


@dataclass(frozen=True)
class ShardContext:
    """Immutable per-run arrays every shard needs (fork-shared, copy-on-
    write; nothing here is mutated after construction)."""

    n_nodes: int
    n_links: int
    next_hop: np.ndarray       # int[n, n]
    pair_keys: np.ndarray      # int64[p], sorted u * n + v adjacency keys
    pair_lids: np.ndarray      # int64[p], link id behind each key
    link_u: np.ndarray         # int64[m], lower endpoint of each link
    link_bw: np.ndarray        # float64[m], bandwidth (bit/s)
    link_lat: np.ndarray       # float64[m], propagation latency (s)
    queue_limit_s: Optional[float]  # drop-tail horizon, None = no drops


def shard_context(
    net: Network, tables: RoutingTables, queue_disc=None, arena=None
) -> ShardContext:
    """Snapshot the routed network into a :class:`ShardContext`.

    Only a plain :class:`~repro.engine.queues.DropTail` translates into
    shard-side admission (it is stateless per decision); any other
    discipline is handled by the kernel's ordered path and leaves the
    context limit unset.

    ``arena`` (a :class:`repro.runtime.shm.ShmArena`) rehomes the
    mutable-under-change arrays — next hops, latencies, bandwidths, the
    pair lookup — into shared-memory segments, so mid-run routing
    repairs in the parent are visible to already-forked LP workers
    (plain fork inheritance is copy-on-write and would freeze them).
    """
    u, v, lat, bw = net.link_endpoint_arrays()
    pair_keys, pair_lids = tables._lookup_arrays()
    limit = None
    if queue_disc is not None and type(queue_disc) is DropTail:
        limit = float(queue_disc.limit_s)
    next_hop = tables.next_hop
    pair_keys = np.asarray(pair_keys, dtype=np.int64)
    pair_lids = np.asarray(pair_lids, dtype=np.int64)
    bw = np.asarray(bw, dtype=np.float64)
    lat = np.asarray(lat, dtype=np.float64)
    if arena is not None:
        next_hop = arena.share("next_hop", next_hop)
        tables.next_hop = next_hop
        pair_keys = arena.share("pair_keys", pair_keys)
        pair_lids = arena.share("pair_lids", pair_lids)
        bw = arena.share("link_bw", bw)
        lat = arena.share("link_lat", lat)
    return ShardContext(
        n_nodes=net.n_nodes,
        n_links=net.n_links,
        next_hop=next_hop,
        pair_keys=pair_keys,
        pair_lids=pair_lids,
        link_u=np.asarray(u, dtype=np.int64),
        link_bw=bw,
        link_lat=lat,
        queue_limit_s=limit,
    )


@dataclass
class ShardResult:
    """Outcome of one segment on one shard.

    ``next``/``span`` are full-segment columns (next hop or
    :data:`~repro.engine.trace.DELIVERED`; serialization span or 0);
    ``succ_pos`` are the segment positions (ascending) of admitted
    forwards and ``succ_time`` their successor arrival times.  The integer
    fields are counter deltas for :class:`~repro.engine.perf.KernelStats`.
    """

    next: np.ndarray
    span: np.ndarray
    succ_pos: np.ndarray
    succ_time: np.ndarray
    packets_delivered: int
    transfers_delivered: int
    trains_forwarded: int
    trains_dropped: int
    vector_events: int
    python_loop_events: int


_EMPTY_I = np.zeros(0, dtype=np.int64)
_EMPTY_F = np.zeros(0, dtype=np.float64)

#: Below this many active FIFO groups, the round-vectorized recurrence
#: replay falls back to the scalar loop (numpy call overhead dominates).
_ROUND_MIN_GROUPS = 8


class LPShard:
    """Busy-time state + per-link accounting for one logical process.

    The shard never sees events it does not own; with k > 1 LPs the caller
    routes each event to the shard owning ``parts[node]``, which by
    construction owns the (link, direction) channel the event transmits on.
    """

    def __init__(self, ctx: ShardContext) -> None:
        self.ctx = ctx
        m = ctx.n_links
        # Per-link, per-direction busy-until times (FIFO transmission).
        self.busy = np.zeros((m, 2), dtype=np.float64)
        self.link_packets = np.zeros(m, dtype=np.float64)
        self.link_bytes = np.zeros(m, dtype=np.float64)
        self.link_busy_s = np.zeros(m, dtype=np.float64)
        self.link_max_backlog_s = np.zeros(m, dtype=np.float64)

    # ------------------------------------------------------------------ #
    def _link_ids(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized adjacent-pair -> link id (mirrors
        ``RoutingTables.link_ids_of`` over the snapshot arrays)."""
        keys_s = self.ctx.pair_keys
        keys = us * self.ctx.n_nodes + vs
        if keys_s.size == 0:
            raise ValueError(
                f"nodes {int(us[0])} and {int(vs[0])} are not adjacent"
            )
        pos = np.minimum(np.searchsorted(keys_s, keys), keys_s.size - 1)
        bad = keys_s[pos] != keys
        if bad.any():
            i = int(np.argmax(bad))
            raise ValueError(
                f"nodes {int(us[i])} and {int(vs[i])} are not adjacent"
            )
        return self.ctx.pair_lids[pos]

    def process(
        self,
        time: np.ndarray,
        node: np.ndarray,
        dst: np.ndarray,
        count: np.ndarray,
        nbytes: np.ndarray,
        last: np.ndarray,
    ) -> ShardResult:
        """Execute one segment of (time, seq)-ordered train events.

        Deliveries and singleton FIFO groups go through the vector path;
        FIFO groups with several events in the segment replay the
        float-order-sensitive busy-time recurrence round-by-round across
        groups (:meth:`_process_fifo_groups`), falling back to a scalar
        loop only for the last few stragglers.
        """
        n = len(time)
        next_col = np.full(n, DELIVERED, dtype=np.int64)
        span_col = np.zeros(n, dtype=np.float64)

        deliver = node == dst
        pkts = int(count[deliver].sum()) if deliver.any() else 0
        tdel = int((deliver & last).sum())
        n_deliver = int(deliver.sum())

        f = np.nonzero(~deliver)[0]
        if len(f) == 0:
            return ShardResult(
                next_col, span_col, _EMPTY_I, _EMPTY_F,
                pkts, tdel, 0, 0, n_deliver, 0,
            )

        fnode = node[f]
        ftime = time[f]
        nxt = self.ctx.next_hop[fnode, dst[f]].astype(np.int64)
        if (nxt < 0).any():
            i = int(np.argmax(nxt < 0))
            raise RuntimeError(
                f"no route from {int(fnode[i])} to {int(dst[f][i])}"
            )
        lids = self._link_ids(fnode, nxt)
        dirs = (fnode != self.ctx.link_u[lids]).astype(np.int64)
        tx = nbytes[f] * 8.0 / self.ctx.link_bw[lids]
        key = lids * 2 + dirs
        limit = self.ctx.queue_limit_s

        depart = np.empty(len(f), dtype=np.float64)
        backlog = np.empty(len(f), dtype=np.float64)
        admit = np.ones(len(f), dtype=bool)

        # FIFO groups: events sharing a (link, direction) channel within
        # the segment.  Stable sort keeps event order inside each group.
        order = np.argsort(key, kind="stable")
        ks = key[order]
        firsts = np.ones(len(ks), dtype=bool)
        firsts[1:] = ks[1:] != ks[:-1]
        starts = np.nonzero(firsts)[0]
        ends = np.append(starts[1:], len(ks))
        single = (ends - starts) == 1

        busy_flat = self.busy.ravel()  # key indexes this view directly

        sing = order[starts[single]]  # event positions of singleton groups
        if len(sing):
            b0 = busy_flat[key[sing]]
            bk = b0 - ftime[sing]
            backlog[sing] = bk
            if limit is not None:
                admit[sing] = np.maximum(bk, 0.0) <= limit
            dep = np.maximum(ftime[sing], b0) + tx[sing]
            depart[sing] = dep
            sel = sing[admit[sing]]
            busy_flat[key[sel]] = depart[sel]

        n_multi, n_scalar = self._process_fifo_groups(
            order, ks, starts, ends, single, ftime, tx,
            backlog, depart, admit, busy_flat, limit,
        )

        next_col[f] = np.where(admit, nxt, DELIVERED)
        fa = f[admit]
        span_col[fa] = tx[admit]

        # Accounting in event order (np.add.at applies index-sequentially,
        # so the float sums accumulate exactly as the scalar loop would).
        alids = lids[admit]
        np.add.at(self.link_packets, alids, count[fa])
        np.add.at(self.link_bytes, alids, nbytes[fa])
        np.add.at(self.link_busy_s, alids, tx[admit])
        np.maximum.at(self.link_max_backlog_s, alids, backlog[admit])

        n_fwd = int(admit.sum())
        return ShardResult(
            next=next_col,
            span=span_col,
            succ_pos=fa,
            succ_time=depart[admit] + self.ctx.link_lat[alids],
            packets_delivered=pkts,
            transfers_delivered=tdel,
            trains_forwarded=n_fwd,
            trains_dropped=len(f) - n_fwd,
            vector_events=n_deliver + int(single.sum()) + n_multi - n_scalar,
            python_loop_events=n_scalar,
        )

    def _process_fifo_groups(
        self,
        order: np.ndarray,
        ks: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        single: np.ndarray,
        ftime: np.ndarray,
        tx: np.ndarray,
        backlog: np.ndarray,
        depart: np.ndarray,
        admit: np.ndarray,
        busy_flat: np.ndarray,
        limit: Optional[float],
    ) -> tuple[int, int]:
        """Replay the FIFO recurrence for groups with several events.

        ``busy = max(t, busy) + tx`` per admitted event is a float-order-
        sensitive scan, so it cannot be prefix-summed — but it *can* run
        one round at a time across groups: round ``r`` executes the
        ``r``-th event of every still-active group with elementwise numpy
        ops, which performs each group's operations in exactly the scalar
        order (``np.maximum``/``+``/``np.where`` are elementwise IEEE ops,
        so every group's busy-time sequence is bit-identical to the scalar
        replay).  Once few groups remain active, per-round numpy overhead
        loses to plain python and the tail falls back to the scalar loop.

        Returns ``(multi-group events total, events run in the scalar
        tail)`` for the :class:`~repro.engine.perf.KernelStats` split.
        """
        multi = np.nonzero(~single)[0]
        if len(multi) == 0:
            return 0, 0
        starts_m = starts[multi]
        sizes_m = ends[multi] - starts_m
        n_multi = int(sizes_m.sum())
        gkeys = ks[starts_m]
        busy_g = busy_flat[gkeys]  # fancy index: a private copy
        n_scalar = 0
        r = 0
        active = np.arange(len(multi))
        while len(active):
            if len(active) < _ROUND_MIN_GROUPS:
                for gi in active.tolist():
                    busy = float(busy_g[gi])
                    idxs = order[starts_m[gi] + r:starts_m[gi] + sizes_m[gi]]
                    n_scalar += len(idxs)
                    tl = ftime[idxs].tolist()
                    txl = tx[idxs].tolist()
                    for j, t, txj in zip(idxs.tolist(), tl, txl):
                        b = busy - t
                        backlog[j] = b
                        if limit is not None and max(b, 0.0) > limit:
                            admit[j] = False
                            continue
                        d = max(t, busy) + txj
                        depart[j] = d
                        busy = d
                    busy_g[gi] = busy
                break
            j = order[starts_m[active] + r]
            tj = ftime[j]
            bg = busy_g[active]
            b = bg - tj
            backlog[j] = b
            d = np.maximum(tj, bg) + tx[j]
            depart[j] = d
            if limit is not None:
                adm = np.maximum(b, 0.0) <= limit
                admit[j] = adm
                busy_g[active] = np.where(adm, d, bg)
            else:
                busy_g[active] = d
            r += 1
            active = active[sizes_m[active] > r]
        busy_flat[gkeys] = busy_g
        return n_multi, n_scalar

    def partials(self) -> tuple[np.ndarray, ...]:
        """The accounting arrays, for end-of-run aggregation."""
        return (self.busy, self.link_packets, self.link_bytes,
                self.link_busy_s, self.link_max_backlog_s)


# --------------------------------------------------------------------- #
# Worker processes
# --------------------------------------------------------------------- #
def _worker_main(conn) -> None:
    """One LP worker: build a shard from the fork-shared context and serve
    segment requests until told to stop."""
    shard = LPShard(_SHARED["ctx"])
    while True:
        try:
            cmd, payload = conn.recv()
        except EOFError:
            break
        if cmd == "stop":
            break
        try:
            if cmd == "seg":
                conn.send(("ok", shard.process(*payload)))
            elif cmd == "stats":
                conn.send(("ok", shard.partials()))
            elif cmd == "xfer_out":
                # Migration: hand the flat busy keys' exact float state to
                # the parent and zero them here (the channel has exactly
                # one owner at any barrier; stale values would corrupt the
                # end-of-run busy summation).
                flat = shard.busy.reshape(-1)
                values = flat[payload].copy()
                flat[payload] = 0.0
                conn.send(("ok", values))
            elif cmd == "xfer_in":
                keys, values = payload
                shard.busy.reshape(-1)[keys] = values
                conn.send(("ok", None))
            else:
                conn.send(("err", ValueError(f"unknown command {cmd!r}")))
        except Exception as exc:  # propagate to the parent verbatim
            conn.send(("err", exc))
    conn.close()


class ParallelEmulationKernel(EmulationKernel):
    """Multi-process LP engine: same trace, sharded execution.

    Parameters (beyond :class:`~repro.engine.kernel.EmulationKernel`'s
    keyword options)
    ----------
    parts:
        ``int[n_nodes]`` partition ids — one LP per partition.  Each LP
        owns the events executing at its nodes and the (link, direction)
        channels those events transmit on.
    processes:
        True forks one worker per LP (requires the ``fork`` start method;
        falls back to in-process shards where unavailable).  False keeps
        every shard in-process — same code path, same results, no IPC —
        which is what the determinism tests exercise.
    """

    def __init__(
        self,
        net: Network,
        tables: RoutingTables,
        *,
        parts,
        processes: bool = True,
        **options,
    ) -> None:
        super().__init__(net, tables, **options)
        if self._ordered:
            offending = []
            if self.collector is not None:
                offending.append(
                    f"collector={type(self.collector).__name__}"
                )
            if self.queue_disc is not None and (
                type(self.queue_disc) is not DropTail
            ):
                offending.append(
                    f"queue={type(self.queue_disc).__name__}"
                )
            raise ValueError(
                f"ParallelEmulationKernel cannot honour "
                f"{' and '.join(offending)}: RED admission and NetFlow "
                f"collection consume state in global arrival order, which "
                f"partitioned execution cannot reproduce; drop the option "
                f"or use engine='sequential'"
            )
        # Private copy: live migration rewrites partition ids in place and
        # must never mutate the caller's array.
        parts = np.asarray(parts, dtype=np.int64).copy()
        if parts.shape != (net.n_nodes,):
            raise ValueError(
                f"parts must assign every node a partition: expected shape "
                f"({net.n_nodes},), got {parts.shape}"
            )
        if len(parts) and parts.min() < 0:
            raise ValueError("partition ids must be non-negative")
        self._parts = parts
        self.n_lps = int(parts.max()) + 1 if len(parts) else 1
        #: Train events dispatched to each LP (imbalance reporting).
        self.lp_events = np.zeros(self.n_lps, dtype=np.int64)
        #: Attached :class:`repro.rebalance.OnlineRebalancer` (or None).
        self.rebalancer = None
        # Migration accounting (perf-guard observability: serialization
        # happens only for migrated routers, no-ops move nothing).
        self.migrations_applied = 0
        self.routers_migrated = 0
        self.channels_migrated = 0
        self.migration_bytes = 0
        self.migration_noops = 0
        self._chan_xadj: np.ndarray | None = None
        self._chan_keys: np.ndarray | None = None
        self._procs: list | None = None
        self._conns: list | None = None
        self._shards: list[LPShard] | None = None
        if processes:
            self._start_pool()
        if self._conns is None:
            self._shards = [LPShard(self._ctx) for _ in range(self.n_lps)]

    # ------------------------------------------------------------------ #
    def _start_pool(self) -> None:
        global _SHARED
        try:
            mp = multiprocessing.get_context("fork")
        except ValueError:
            return  # no fork on this platform: stay in-process
        _SHARED = {"ctx": self._ctx}
        conns, procs = [], []
        try:
            for _ in range(self.n_lps):
                parent, child = mp.Pipe()
                proc = mp.Process(
                    target=_worker_main, args=(child,), daemon=True
                )
                proc.start()
                child.close()
                conns.append(parent)
                procs.append(proc)
        finally:
            _SHARED = None
        self._conns = conns
        self._procs = procs

    def _recv(self, owner: int):
        status, payload = self._conns[owner].recv()
        if status == "err":
            raise payload
        return payload

    # ------------------------------------------------------------------ #
    def _process_segment(self, seg: EventBatch):
        owners = self._parts[seg.node]
        groups = group_by_owner(owners, self.n_lps)
        n = len(seg)
        next_col = np.empty(n, dtype=np.int64)
        span_col = np.zeros(n, dtype=np.float64)
        if self._conns is not None:
            for owner, positions in groups:
                self._conns[owner].send(("seg", (
                    seg.time[positions], seg.node[positions],
                    seg.dst[positions], seg.count[positions],
                    seg.nbytes[positions], seg.last[positions],
                )))
            results = [self._recv(owner) for owner, _ in groups]
        else:
            results = [
                self._shards[owner].process(
                    seg.time[positions], seg.node[positions],
                    seg.dst[positions], seg.count[positions],
                    seg.nbytes[positions], seg.last[positions],
                )
                for owner, positions in groups
            ]
        sp_parts: list[np.ndarray] = []
        st_parts: list[np.ndarray] = []
        for (owner, positions), res in zip(groups, results):
            self._absorb(res)
            self.lp_events[owner] += len(positions)
            next_col[positions] = res.next
            span_col[positions] = res.span
            if len(res.succ_pos):
                sp_parts.append(positions[res.succ_pos])
                st_parts.append(res.succ_time)
        if not sp_parts:
            return next_col, span_col, _EMPTY_I, _EMPTY_F
        gp = np.concatenate(sp_parts)
        gt = np.concatenate(st_parts)
        # Successor seqs are assigned in event order across the whole
        # segment, exactly as the sequential engine numbers them.
        order = np.argsort(gp, kind="stable")
        return next_col, span_col, gp[order], gt[order]

    # ------------------------------------------------------------------ #
    # Live migration
    # ------------------------------------------------------------------ #
    def _channel_index(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR of flat busy keys (``2 * link + direction``) per owning node.

        Node ``v`` owns, for every incident link ``l``, the direction it
        *sends* on: ``0`` when ``v == link_u[l]``, else ``1`` — exactly the
        keys :meth:`LPShard.process` writes for events executing at ``v``.
        """
        if self._chan_xadj is None:
            u, v, _, _ = self.net.link_endpoint_arrays()
            m = self._ctx.n_links
            owner = np.concatenate((u, v)).astype(np.int64)
            lid = np.arange(m, dtype=np.int64)
            keys = np.concatenate((lid * 2, lid * 2 + 1))
            order = np.argsort(owner, kind="stable")
            counts = np.bincount(owner, minlength=self.net.n_nodes)
            xadj = np.zeros(self.net.n_nodes + 1, dtype=np.int64)
            np.cumsum(counts, out=xadj[1:])
            self._chan_xadj = xadj
            self._chan_keys = keys[order]
        return self._chan_xadj, self._chan_keys

    def node_state_bytes(self, nodes) -> int:
        """Serialized migration payload size for ``nodes`` —
        :data:`CHANNEL_STATE_BYTES` per owned (link, direction) channel."""
        xadj, _ = self._channel_index()
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        degrees = xadj[nodes + 1] - xadj[nodes]
        return int(degrees.sum()) * CHANNEL_STATE_BYTES

    def _extract_channels(self, lp: int, keys: np.ndarray) -> np.ndarray:
        """Pull the exact busy floats for ``keys`` out of ``lp``, zeroing
        them there (a channel is non-zero in exactly one shard, which is
        what keeps :meth:`_finalize_run`'s summation exact)."""
        if self._conns is not None:
            self._conns[lp].send(("xfer_out", keys))
            return self._recv(lp)
        flat = self._shards[lp].busy.reshape(-1)
        values = flat[keys].copy()
        flat[keys] = 0.0
        return values

    def _install_channels(
        self, lp: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        if self._conns is not None:
            self._conns[lp].send(("xfer_in", (keys, values)))
            self._recv(lp)
        else:
            self._shards[lp].busy.reshape(-1)[keys] = values

    def migrate_routers(self, routers, dests) -> int:
        """Reassign ``routers`` to the LPs named in ``dests``, live.

        Must be called at a conservative-window barrier (between windows —
        e.g. from ``kernel.barrier_hooks``): no segment is in flight there
        and all staged successors are already in the calendar, so moving a
        node's outgoing-channel FIFO state and repointing ``parts`` is the
        *complete* ownership transfer.  The busy-until floats carry over
        bit-exactly, so the remainder of the run — and hence the
        :class:`~repro.engine.trace.EventTrace` — is byte-identical to a
        run that never migrated.

        Entries whose destination equals the current owner are no-ops:
        counted (``migration_noops``) but nothing is serialized.  Returns
        the serialized payload size in bytes.
        """
        routers = np.atleast_1d(np.asarray(routers, dtype=np.int64))
        dests = np.atleast_1d(np.asarray(dests, dtype=np.int64))
        if routers.shape != dests.shape:
            raise ValueError(
                f"routers and dests must pair up: got {routers.shape} "
                f"routers and {dests.shape} destinations"
            )
        if len(routers) == 0:
            return 0
        if len(np.unique(routers)) != len(routers):
            raise ValueError("duplicate router in one migration set")
        if routers.min() < 0 or routers.max() >= self.net.n_nodes:
            raise ValueError(
                f"router id out of range 0..{self.net.n_nodes - 1}"
            )
        if dests.min() < 0 or dests.max() >= self.n_lps:
            raise ValueError(
                f"destination LP out of range 0..{self.n_lps - 1}"
            )
        sources = self._parts[routers]
        moving = sources != dests
        self.migration_noops += int((~moving).sum())
        if not moving.any():
            return 0
        xadj, ckeys = self._channel_index()
        # Group movers by (source LP, destination LP) so each pair costs
        # one extract + one install round-trip.
        lanes: dict[tuple[int, int], list[int]] = {}
        for r, s, d in zip(
            routers[moving].tolist(), sources[moving].tolist(),
            dests[moving].tolist(),
        ):
            lanes.setdefault((s, d), []).append(r)
        payload = 0
        for (src_lp, dst_lp) in sorted(lanes):
            nodes = lanes[(src_lp, dst_lp)]
            keys = np.concatenate(
                [ckeys[xadj[r]:xadj[r + 1]] for r in nodes]
            )
            if len(keys):
                values = self._extract_channels(src_lp, keys)
                self._install_channels(dst_lp, keys, values)
            self.channels_migrated += len(keys)
            payload += len(keys) * CHANNEL_STATE_BYTES
        self._parts[routers] = dests
        self.migrations_applied += 1
        self.routers_migrated += int(moving.sum())
        self.migration_bytes += payload
        return payload

    def _finalize_run(self) -> None:
        """Sum per-shard accounting into the kernel's public arrays.

        Elementwise sums over k shards: exact for packets/bytes (each
        (link, direction) is owned by exactly one LP), bit-equal to
        sequential for everything except cross-direction float addition
        order on links whose two directions live in different LPs.
        """
        if self.rebalancer is not None:
            self.rebalancer.finalize()
        if self._conns is not None:
            for conn in self._conns:
                conn.send(("stats", None))
            partials = [self._recv(i) for i in range(self.n_lps)]
        else:
            partials = [shard.partials() for shard in self._shards]
        self._busy[:] = 0.0
        self.link_packets[:] = 0.0
        self.link_bytes[:] = 0.0
        self.link_busy_s[:] = 0.0
        self.link_max_backlog_s[:] = 0.0
        for busy, pkts, nbytes, busy_s, max_backlog in partials:
            self._busy += busy
            self.link_packets += pkts
            self.link_bytes += nbytes
            self.link_busy_s += busy_s
            np.maximum(self.link_max_backlog_s, max_backlog,
                       out=self.link_max_backlog_s)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the worker pool (idempotent; in-process mode is a no-op)."""
        if self._conns is None:
            return
        for conn in self._conns:
            try:
                conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns = None
        self._procs = None

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
