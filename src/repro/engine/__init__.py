"""Conservative parallel discrete-event network emulator (MaSSF stand-in).

The emulator is split into a *virtual-time* layer and a *wall-clock* layer:

- :class:`repro.engine.kernel.EmulationKernel` simulates the virtual network
  (packet trains, link queueing, forwarding) and records an
  :class:`~repro.engine.trace.EventTrace`.  Virtual behaviour is independent
  of how the network is partitioned — the PDES correctness contract.
- :mod:`repro.engine.parallel` evaluates a partition against a trace using
  the conservative-window cost model: the window (sized by the minimum
  cut-link latency, i.e. the lookahead) is the unit of parallelism; within a
  window the engine nodes run concurrently, across windows they barrier.

This split lets one emulation run be scored under many mappings, exactly as
load balance theory says it can be (the virtual traffic does not change, only
who processes it and how often they synchronize).
"""

from repro.engine.costmodel import CostModel
from repro.engine.kernel import EmulationKernel, KernelStats, run_kernel
from repro.engine.packet import PacketTrain, Transfer
from repro.engine.parallel import EmulationMetrics, evaluate_mapping, lookahead_of
from repro.engine.trace import EventTrace

__all__ = [
    "EmulationKernel",
    "KernelStats",
    "run_kernel",
    "PacketTrain",
    "Transfer",
    "EventTrace",
    "CostModel",
    "EmulationMetrics",
    "evaluate_mapping",
    "lookahead_of",
]
