"""Conservative-window synchronization math for the batched engines.

The batched kernels advance virtual time in windows of length equal to the
*lookahead* — here the minimum one-way latency over **all** links, since
within one engine process every link is a channel.  A train event executed
at time ``t`` schedules its successor at ``depart + latency > t +
lookahead``, so all events of one window can be processed as a batch: no
event generated inside the window can precede any event already in it.
(:func:`repro.engine.parallel.lookahead_of` computes the *cut-link*
lookahead the analytic wall-clock model uses; the execution engines need
the all-links bound.)

Two things *can* inject events into the window being processed, and both
are visible to the kernel before they run: control events (traffic
generator callbacks) and delivery hooks (closed-loop responses).  The
helpers here locate those cut points inside a sorted event batch; the
kernel processes the segment before the cut vectorized, runs the callback,
then re-merges whatever it injected.

All functions are pure and operate on the sorted ``(time, seq)`` arrays of
an :class:`~repro.engine.eventq.EventBatch`.
"""

from __future__ import annotations

import numpy as np

from repro.topology.network import Network

__all__ = [
    "BarrierClock",
    "conservative_window",
    "cut_before",
    "first_true",
    "group_by_owner",
]

#: Window length used when the network has no links (degenerate, but a
#: kernel can still run pure control events over it).
_DEFAULT_WINDOW_S = 1.0


def conservative_window(net: Network) -> float:
    """Batch window length: the minimum one-way latency over all links."""
    _, _, lat, _ = net.link_endpoint_arrays()
    if len(lat) == 0:
        return _DEFAULT_WINDOW_S
    return float(lat.min())


class BarrierClock:
    """Virtual-time observation bins, advanced at window barriers.

    The conservative-window march guarantees that when the kernel reaches a
    barrier at ``now``, every event with ``time < now`` has executed — so
    any fixed-width bin whose right edge is ``<= now`` is *complete* and
    can be folded into a load signal.  The online rebalancer's monitor
    calls :meth:`completed` from a kernel barrier hook; the returned bins
    are each yielded exactly once, in order, regardless of how many
    windows elapse between calls.
    """

    def __init__(self, bin_s: float) -> None:
        if bin_s <= 0:
            raise ValueError("bin width must be positive")
        self.bin_s = float(bin_s)
        self._done = 0

    def bin_of(self, time: np.ndarray) -> np.ndarray:
        """Bin index of each timestamp (bin ``i`` covers
        ``[i * bin_s, (i + 1) * bin_s)``)."""
        return (np.asarray(time, dtype=np.float64) / self.bin_s).astype(
            np.int64
        )

    def edge_of(self, index: int) -> float:
        """Right (closing) edge of bin ``index`` in virtual seconds."""
        return (index + 1) * self.bin_s

    def completed(self, now: float) -> range:
        """Bins that became complete since the previous call.

        A bin is complete once ``now`` reaches its right edge (events at
        exactly the edge belong to the next bin).
        """
        first = self._done
        if np.isfinite(now):
            self._done = max(self._done, int(np.floor(now / self.bin_s)))
        return range(first, self._done)


def cut_before(
    time: np.ndarray,
    seq: np.ndarray,
    start: int,
    limit: tuple[float, int],
) -> int:
    """First index ``>= start`` whose ``(time, seq)`` key is ``>= limit``.

    ``time`` must be non-decreasing with ``seq`` ascending within equal
    times (the :meth:`EventBatch.sorted_by_key` order).  Returns
    ``len(time)`` when every remaining key precedes ``limit``.
    """
    limit_t, limit_s = limit
    end = int(np.searchsorted(time, limit_t, side="left"))
    hi = int(np.searchsorted(time, limit_t, side="right"))
    if end < hi:
        end += int(np.searchsorted(seq[end:hi], limit_s, side="left"))
    return max(end, start)


def first_true(mask: np.ndarray, start: int, end: int) -> int:
    """Index of the first True in ``mask[start:end]``, or -1."""
    seg = mask[start:end]
    if not seg.any():
        return -1
    return start + int(np.argmax(seg))


def group_by_owner(
    owners: np.ndarray, n_owners: int
) -> list[tuple[int, np.ndarray]]:
    """Split positions ``0..len(owners)`` by owner id, order preserved.

    Returns ``(owner, positions)`` pairs for each owner that appears, in
    ascending owner id; ``positions`` keeps the original (execution)
    order.  This is how the LP engine shards one window's events across
    logical processes.
    """
    owners = np.asarray(owners)
    if len(owners) == 0:
        return []
    order = np.argsort(owners, kind="stable")
    sorted_owners = owners[order]
    starts = np.concatenate(
        ([0], np.nonzero(np.diff(sorted_owners))[0] + 1)
    )
    ends = np.concatenate((starts[1:], [len(owners)]))
    out: list[tuple[int, np.ndarray]] = []
    for a, b in zip(starts, ends):
        owner = int(sorted_owners[a])
        if not 0 <= owner < n_owners:
            raise ValueError(f"event owner {owner} out of range")
        out.append((owner, order[a:b]))
    return out
