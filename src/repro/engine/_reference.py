"""Reference (pre-batching) emulation kernel — the test oracle.

This is the original per-event heap+callback kernel, kept verbatim when the
hot path moved to batched numpy processing in :mod:`repro.engine.kernel`.
Every event is popped from a binary heap one at a time and dispatched
through a python callback — exactly the scaling behaviour the batched
kernel exists to avoid; never call it from production code.

The batched kernel promises *bit-identical* traces: same
:class:`~repro.engine.trace.EventTrace` arrays (byte for byte), same
semantic :class:`~repro.engine.perf.KernelStats`, same per-link accounting
arrays.  The differential parity suite
(``tests/engine/test_kernel_parity.py``) proves the promise by driving both
:func:`run_kernel_reference` and its counterpart
:func:`repro.engine.kernel.run_kernel` over the topology × queue-discipline
× train-packets grid.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.engine.eventq import EventQueue
from repro.engine.packet import PacketTrain, Transfer, packetize, reset_flow_ids
from repro.engine.perf import KernelStats
from repro.engine.trace import DELIVERED, INJECTED, EventTrace, TraceRecorder
from repro.routing.tables import RoutingTables
from repro.topology.network import Network

__all__ = ["ReferenceKernel", "run_kernel_reference"]

_PARITY_COUNTERPARTS = {
    "run_kernel_reference": "repro.engine.kernel.run_kernel",
}


class ReferenceKernel:
    """One emulation run over a routed network (original heap kernel).

    Same construction surface as the historical ``EmulationKernel``:
    ``net`` and ``tables`` positional, options positional-or-keyword.
    """

    def __init__(
        self,
        net: Network,
        tables: RoutingTables,
        train_packets: int = 32,
        collector=None,
        queue_limit_s: Optional[float] = None,
        queue=None,
        telemetry=None,
    ) -> None:
        from repro.obs.telemetry import ensure_telemetry

        if tables.net is not net:
            raise ValueError("routing tables were built for another network")
        self.net = net
        self.tables = tables
        self.train_packets = int(train_packets)
        self.collector = collector
        self.telemetry = ensure_telemetry(telemetry)
        if queue is None and queue_limit_s is not None:
            from repro.engine.queues import DropTail

            queue = DropTail(queue_limit_s)
        self.queue_disc = queue
        self.queue = EventQueue()
        self.recorder = TraceRecorder(net.n_nodes)
        self.stats = KernelStats()
        # (time, src, dst, nbytes, flow_id, tag) per submitted transfer —
        # the "network traffic trace" MaSSF records for replay.
        self.transfer_log: list[tuple[float, int, int, float, int, str]] = []
        self.now = 0.0
        self._end_time: float = float("inf")
        # Per-link, per-direction busy-until times (FIFO transmission).
        self._busy = np.zeros((net.n_links, 2), dtype=np.float64)
        # Per-link accounting: packets carried, bytes carried, busy seconds,
        # worst backlog seen (both directions summed / maxed).
        self.link_packets = np.zeros(net.n_links, dtype=np.float64)
        self.link_bytes = np.zeros(net.n_links, dtype=np.float64)
        self.link_busy_s = np.zeros(net.n_links, dtype=np.float64)
        self.link_max_backlog_s = np.zeros(net.n_links, dtype=np.float64)
        self._is_router = np.array(
            [node.is_router for node in net.nodes], dtype=bool
        )

    # ------------------------------------------------------------------ #
    # Scheduling API (used by traffic generators)
    # ------------------------------------------------------------------ #
    def schedule(self, time: float, callback: Callable, *args) -> None:
        """Run ``callback(kernel, time, *args)`` at virtual ``time``."""
        self.queue.push(time, callback, *args)

    def submit_transfer(self, transfer: Transfer, time: float) -> None:
        """Inject a transfer at its source host at virtual ``time``.

        The source paces trains at its access-link rate (the first link on
        the path), mirroring a host NIC draining a socket buffer.  The
        injection itself is recorded as one kernel event (the paper counts
        "requests coming from the application" as live-injection overhead).
        """
        if time < self.now:
            raise ValueError("cannot submit a transfer in the past")
        self.stats.transfers_submitted += 1
        first_hop = self.tables.hop(transfer.src, transfer.dst)
        if first_hop < 0:
            raise ValueError(
                f"no route {transfer.src} -> {transfer.dst}"
            )
        access = self.tables.link_between(transfer.src, first_hop)
        self.transfer_log.append(
            (time, transfer.src, transfer.dst, transfer.nbytes,
             transfer.flow_id, transfer.tag)
        )
        self.recorder.record(time, transfer.src, INJECTED, 1, transfer.flow_id)
        offset = 0.0
        for train in packetize(transfer, self.train_packets):
            self.queue.push(time + offset, self._arrive, transfer.src, train)
            offset += access.tx_time(train.nbytes)

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _arrive(self, kernel, time: float, node: int, train: PacketTrain) -> None:
        if node == train.dst:
            self.recorder.record(
                time, node, DELIVERED, train.count, train.flow_id
            )
            self.stats.packets_delivered += train.count
            if train.last:
                self.stats.transfers_delivered += 1
                hook = train.transfer.on_delivery
                if hook is not None:
                    hook(self, time, train.transfer)
            return

        nxt = self.tables.hop(node, train.dst)
        if nxt < 0:
            raise RuntimeError(f"no route from {node} to {train.dst}")
        link = self.tables.link_between(node, nxt)
        direction = 0 if node == link.u else 1
        backlog = self._busy[link.link_id, direction] - time
        if self.queue_disc is not None and not self.queue_disc.admit(
            link.link_id, direction, max(backlog, 0.0)
        ):
            # Dropped: record the processing work, forward nothing.
            self.recorder.record(
                time, node, DELIVERED, train.count, train.flow_id
            )
            self.stats.trains_dropped += 1
            return

        self.recorder.record(
            time, node, nxt, train.count, train.flow_id,
            span=link.tx_time(train.nbytes),
        )
        self.stats.trains_forwarded += 1
        if self._is_router[node] and self.collector is not None:
            self.collector.record(time, node, link.link_id, train)

        tx = link.tx_time(train.nbytes)
        depart = max(time, self._busy[link.link_id, direction]) + tx
        self._busy[link.link_id, direction] = depart
        self.link_packets[link.link_id] += train.count
        self.link_bytes[link.link_id] += train.nbytes
        self.link_busy_s[link.link_id] += tx
        if backlog > self.link_max_backlog_s[link.link_id]:
            self.link_max_backlog_s[link.link_id] = backlog
        self.queue.push(depart + link.latency_s, self._arrive, nxt, train)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self, until: float) -> EventTrace:
        """Process events up to virtual time ``until`` and freeze the trace.

        Events scheduled beyond ``until`` are discarded (the emulation has a
        fixed horizon, like the paper's fixed-duration application runs).
        """
        if until <= 0:
            raise ValueError("horizon must be positive")
        self._end_time = float(until)
        with self.telemetry.span("kernel/run"):
            while self.queue:
                if self.queue.peek_time() > self._end_time:
                    break
                time, callback, args = self.queue.pop()
                self.now = time
                callback(self, time, *args)
        tel = self.telemetry
        if tel.enabled:
            tel.count("kernel.events", self.queue.processed)
            tel.count("kernel.trains_forwarded", self.stats.trains_forwarded)
            tel.count("kernel.trains_dropped", self.stats.trains_dropped)
            tel.count("kernel.packets_delivered",
                      self.stats.packets_delivered)
            tel.count("kernel.transfers", self.stats.transfers_submitted)
            tel.gauge("kernel.horizon_s", self._end_time)
            if self.net.n_links:
                tel.gauge("kernel.max_backlog_s",
                          float(self.link_max_backlog_s.max()))
        return self.recorder.finish(self._end_time)

    @property
    def events_processed(self) -> int:
        return self.queue.processed

    def link_utilization(self, duration: float | None = None) -> np.ndarray:
        """Per-link busy fraction over the run (both directions pooled)."""
        horizon = duration if duration is not None else self._end_time
        if not np.isfinite(horizon) or horizon <= 0:
            raise ValueError("run() first, or pass an explicit duration")
        return self.link_busy_s / horizon


def run_kernel_reference(
    net: Network,
    tables: RoutingTables,
    workload,
    *,
    seed: int = 0,
    until: float | None = None,
    train_packets: int = 32,
    queue=None,
    queue_limit_s: float | None = None,
    collector=None,
    telemetry=None,
) -> tuple[EventTrace, "ReferenceKernel"]:
    """Run one workload through the reference heap kernel — the oracle side
    of the engine parity pair.

    ``workload`` is anything with ``install(kernel, rng)`` (and a
    ``duration`` attribute used when ``until`` is omitted) — a
    :class:`repro.experiments.workloads.Workload`, a single traffic
    generator, or a test stub.  Flow ids are reset first so two runs of the
    same (seed, workload) are comparable train by train.
    """
    reset_flow_ids()
    kernel = ReferenceKernel(
        net, tables, train_packets=train_packets, collector=collector,
        queue_limit_s=queue_limit_s, queue=queue, telemetry=telemetry,
    )
    workload.install(kernel, np.random.default_rng(seed))
    horizon = float(until if until is not None else workload.duration)
    trace = kernel.run(until=horizon)
    return trace, kernel
