"""Application compute-demand profiles.

The emulated application runs on its own cluster and advances in lockstep
with the emulator's virtual time: in each conservative window the wall clock
advances by the *slower* of the emulation work and the application's compute
demand.  A :class:`ComputeProfile` is the piecewise-constant compute-demand
rate (seconds of computation per second of virtual time) an application
model exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ComputeProfile"]


@dataclass
class ComputeProfile:
    """Piecewise-constant compute demand.

    ``rates[i]`` applies on ``[times[i], times[i+1])``; ``times`` has one
    more entry than ``rates``.  The cumulative function ``C(t)`` (compute
    seconds demanded up to virtual ``t``) is what the cost model queries.
    """

    times: np.ndarray
    rates: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        self.rates = np.asarray(self.rates, dtype=np.float64)
        if len(self.times) != len(self.rates) + 1:
            raise ValueError("times must have len(rates) + 1 entries")
        if np.any(np.diff(self.times) <= 0):
            raise ValueError("times must be strictly increasing")
        if np.any(self.rates < 0):
            raise ValueError("rates must be non-negative")
        segment = np.diff(self.times) * self.rates
        self._cum = np.concatenate(([0.0], np.cumsum(segment)))

    @classmethod
    def constant(cls, rate: float, duration: float) -> "ComputeProfile":
        """Uniform demand over ``[0, duration)``."""
        return cls(times=np.array([0.0, duration]), rates=np.array([rate]))

    @classmethod
    def zero(cls, duration: float = 1.0) -> "ComputeProfile":
        """No compute demand (network-only replay)."""
        return cls.constant(0.0, duration)

    @classmethod
    def combine(
        cls, profiles: list["ComputeProfile"], cap: float | None = None
    ) -> "ComputeProfile":
        """Sum of several profiles (concurrent applications).

        ``cap`` bounds the combined rate: tasks that compute concurrently on
        *separate* application-cluster processors do not stack their demand
        beyond real time, so workflow apps cap at 1.0.
        """
        if not profiles:
            return cls.zero()
        breaks = np.unique(np.concatenate([p.times for p in profiles]))
        mids = (breaks[:-1] + breaks[1:]) / 2.0
        rates = np.zeros(len(mids))
        for p in profiles:
            idx = np.searchsorted(p.times, mids, side="right") - 1
            valid = (idx >= 0) & (idx < len(p.rates))
            rates[valid] += p.rates[idx[valid]]
        if cap is not None:
            rates = np.minimum(rates, cap)
        return cls(times=breaks, rates=rates)

    def cumulative(self, t) -> np.ndarray:
        """``C(t)``: compute seconds demanded in ``[0, t)`` (vectorized)."""
        t = np.asarray(t, dtype=np.float64)
        return np.interp(t, self.times, self._cum)

    @property
    def total(self) -> float:
        """Compute seconds demanded over the whole profile."""
        return float(self._cum[-1])
