"""Queue disciplines for emulated link buffers.

The kernel models each link direction as a FIFO with a transmission
backlog; a queue discipline decides whether an arriving train is admitted.
Two classic disciplines are provided:

- :class:`DropTail` — admit until the backlog exceeds a fixed horizon (the
  kernel's historical ``queue_limit_s`` behaviour).
- :class:`RED` — Random Early Detection (Floyd & Jacobson): probabilistic
  drops ramp up between a low and a high backlog threshold, keeping average
  queues short; the standard companion of the era's TCP studies.

Disciplines are stateful per kernel (RED keeps a per-link-direction EWMA of
the backlog), so construct a fresh instance per
:class:`~repro.engine.kernel.EmulationKernel`.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["QueueDiscipline", "DropTail", "RED"]


class QueueDiscipline(abc.ABC):
    """Admission policy for one emulation run's link buffers."""

    @abc.abstractmethod
    def admit(self, link_id: int, direction: int, backlog_s: float) -> bool:
        """Whether a train joining ``backlog_s`` seconds of queue enters."""


class DropTail(QueueDiscipline):
    """Admit while the backlog is below a fixed horizon."""

    def __init__(self, limit_s: float) -> None:
        if limit_s <= 0:
            raise ValueError("limit_s must be positive")
        self.limit_s = float(limit_s)
        self.drops = 0

    def admit(self, link_id: int, direction: int, backlog_s: float) -> bool:
        if backlog_s > self.limit_s:
            self.drops += 1
            return False
        return True


class RED(QueueDiscipline):
    """Random Early Detection on the backlog (in seconds of transmission).

    Parameters
    ----------
    min_th_s, max_th_s:
        Average-backlog thresholds: below ``min_th`` everything is
        admitted; above ``max_th`` everything is dropped; in between the
        drop probability ramps linearly up to ``max_p``.
    max_p:
        Drop probability at the upper threshold.
    ewma:
        Weight of the newest sample in the average-backlog estimate.
    seed:
        Seed of the discipline's own RNG (deterministic runs).
    """

    def __init__(
        self,
        min_th_s: float = 0.02,
        max_th_s: float = 0.1,
        max_p: float = 0.2,
        ewma: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not 0 < min_th_s < max_th_s:
            raise ValueError("need 0 < min_th_s < max_th_s")
        if not 0 < max_p <= 1:
            raise ValueError("max_p must be in (0, 1]")
        if not 0 < ewma <= 1:
            raise ValueError("ewma must be in (0, 1]")
        self.min_th_s = float(min_th_s)
        self.max_th_s = float(max_th_s)
        self.max_p = float(max_p)
        self.ewma = float(ewma)
        self._avg: dict[tuple[int, int], float] = {}
        self._rng = np.random.default_rng(seed)
        self.drops = 0
        self.early_drops = 0

    def admit(self, link_id: int, direction: int, backlog_s: float) -> bool:
        key = (link_id, direction)
        avg = self._avg.get(key, 0.0)
        avg = (1.0 - self.ewma) * avg + self.ewma * backlog_s
        self._avg[key] = avg
        if avg < self.min_th_s:
            return True
        if avg >= self.max_th_s:
            self.drops += 1
            return False
        p = self.max_p * (avg - self.min_th_s) / (self.max_th_s - self.min_th_s)
        if self._rng.random() < p:
            self.drops += 1
            self.early_drops += 1
            return False
        return True

    def average_backlog(self, link_id: int, direction: int) -> float:
        """Current EWMA backlog estimate for one link direction."""
        return self._avg.get((link_id, direction), 0.0)
