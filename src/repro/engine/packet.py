"""Packet-train and transfer records.

The emulator moves *packet trains*: batches of up to ``train_packets``
consecutive packets of one flow.  Load accounting stays per-packet (the
paper's kernel event unit) while the Python event count stays manageable —
fidelity is a knob (``train_packets=1`` is per-packet simulation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["PacketTrain", "Transfer", "MTU_BYTES"]

MTU_BYTES = 1500

_flow_counter = itertools.count(1)


def next_flow_id() -> int:
    """Process-wide unique flow id (monotone, deterministic per run order)."""
    return next(_flow_counter)


def reset_flow_ids() -> None:
    """Reset the flow-id counter (tests / fresh experiment runs)."""
    global _flow_counter
    _flow_counter = itertools.count(1)


@dataclass
class Transfer:
    """One application-level transfer (a flow): ``nbytes`` from src to dst.

    Attributes
    ----------
    src, dst:
        Host node ids.
    nbytes:
        Payload size in bytes.
    flow_id:
        Unique id; assigned by :func:`next_flow_id` when 0.
    on_delivery:
        Optional callback ``fn(kernel, time, transfer)`` invoked when the
        last train reaches ``dst`` — the closed-loop hook (HTTP responses,
        workflow successors).
    tag:
        Free-form label ("http-req", "scalapack", ...) carried into traces
        and NetFlow records.
    """

    src: int
    dst: int
    nbytes: float
    flow_id: int = 0
    on_delivery: Optional[Callable] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("transfer src == dst")
        if self.nbytes <= 0:
            raise ValueError("transfer must carry at least one byte")
        if self.flow_id == 0:
            self.flow_id = next_flow_id()

    @property
    def n_packets(self) -> int:
        """MTU-sized packet count (last packet may be short)."""
        return max(1, -(-int(self.nbytes) // MTU_BYTES))


@dataclass(frozen=True)
class PacketTrain:
    """A batch of consecutive packets of one transfer in flight.

    Attributes
    ----------
    transfer:
        The owning transfer.
    count:
        Packets in this train.
    nbytes:
        Bytes in this train.
    last:
        True for the final train of the transfer (triggers delivery hooks).
    """

    transfer: Transfer
    count: int
    nbytes: float
    last: bool

    @property
    def src(self) -> int:
        return self.transfer.src

    @property
    def dst(self) -> int:
        return self.transfer.dst

    @property
    def flow_id(self) -> int:
        return self.transfer.flow_id


def packetize(transfer: Transfer, train_packets: int) -> list[PacketTrain]:
    """Split a transfer into MTU packets grouped into trains."""
    if train_packets < 1:
        raise ValueError("train_packets must be >= 1")
    total = transfer.n_packets
    trains: list[PacketTrain] = []
    remaining_bytes = float(transfer.nbytes)
    done = 0
    while done < total:
        count = min(train_packets, total - done)
        if done + count >= total:
            nbytes = remaining_bytes
        else:
            nbytes = count * MTU_BYTES
        remaining_bytes -= nbytes
        done += count
        trains.append(
            PacketTrain(
                transfer=transfer, count=count, nbytes=nbytes,
                last=(done >= total),
            )
        )
    return trains
