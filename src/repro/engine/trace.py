"""Event traces: the kernel's compact record of everything it executed.

An :class:`EventTrace` stores one row per kernel event in parallel numpy
arrays — virtual time, node, forwarding target, packet count, flow id — plus
the realized transfers.  Mapping evaluation, profiling aggregation, replay,
and the fine-grained load plots are all vectorized queries over these
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EventTrace", "TraceRecorder", "DELIVERED", "INJECTED"]

# Sentinels for the next_node column.
DELIVERED = -1  # event delivered the train at its destination host
INJECTED = -2   # event is an application injection (request arriving at the
                # emulator from the live application)


@dataclass
class EventTrace:
    """Immutable columnar event log of one emulation run.

    Attributes
    ----------
    time:
        ``float64[E]`` virtual timestamps (non-decreasing).
    node:
        ``int32[E]`` node executing the event.
    next_node:
        ``int32[E]`` forwarding target, or :data:`DELIVERED` /
        :data:`INJECTED`.
    packets:
        ``int32[E]`` packets accounted to the event (kernel events are
        per-packet in MaSSF; trains carry their packet count).
    flow:
        ``int32[E]`` flow id.
    span:
        ``float64[E]`` serialization span of the event's train on its
        outgoing link — the virtual interval over which the per-packet work
        actually occurs.  0 for deliveries/injections.
    duration:
        Virtual end time of the run.
    n_nodes:
        Size of the emulated network.
    """

    time: np.ndarray
    node: np.ndarray
    next_node: np.ndarray
    packets: np.ndarray
    flow: np.ndarray
    span: np.ndarray
    duration: float
    n_nodes: int

    # ------------------------------------------------------------------ #
    @property
    def n_events(self) -> int:
        return len(self.time)

    @property
    def total_packets(self) -> int:
        return int(self.packets.sum())

    def node_loads(self) -> np.ndarray:
        """Packets processed per node, shape ``(n_nodes,)``."""
        out = np.zeros(self.n_nodes, dtype=np.float64)
        np.add.at(out, self.node, self.packets)
        return out

    def link_loads(self) -> dict[tuple[int, int], int]:
        """Packets forwarded over each directed adjacency ``(u, v)``."""
        mask = self.next_node >= 0
        out: dict[tuple[int, int], int] = {}
        for u, v, p in zip(
            self.node[mask], self.next_node[mask], self.packets[mask]
        ):
            key = (int(u), int(v))
            out[key] = out.get(key, 0) + int(p)
        return out

    def interval_series(self, interval: float) -> np.ndarray:
        """Per-node packet counts binned by virtual time.

        Returns ``float64[n_nodes, n_bins]`` with
        ``n_bins = ceil(duration / interval)``.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        n_bins = max(1, int(np.ceil(self.duration / interval)))
        bins = np.minimum((self.time / interval).astype(np.int64), n_bins - 1)
        out = np.zeros((self.n_nodes, n_bins), dtype=np.float64)
        np.add.at(out, (self.node, bins), self.packets)
        return out

    def slice(self, t0: float, t1: float) -> "EventTrace":
        """Sub-trace of events with ``t0 <= time < t1``.

        Times are rebased to start at 0 and the duration becomes
        ``t1 - t0`` — the shape epoch-by-epoch evaluation (dynamic
        remapping) needs.
        """
        if not 0.0 <= t0 < t1:
            raise ValueError("need 0 <= t0 < t1")
        mask = (self.time >= t0) & (self.time < t1)
        return EventTrace(
            time=self.time[mask] - t0,
            node=self.node[mask],
            next_node=self.next_node[mask],
            packets=self.packets[mask],
            flow=self.flow[mask],
            span=self.span[mask],
            duration=float(t1 - t0),
            n_nodes=self.n_nodes,
        )

    def validate(self) -> None:
        """Check columnar invariants (sorted times, ranges, lengths)."""
        arrays = (self.time, self.node, self.next_node, self.packets,
                  self.flow, self.span)
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise ValueError("trace columns have differing lengths")
        if self.n_events and np.any(np.diff(self.time) < 0):
            raise ValueError("trace times must be non-decreasing")
        if self.n_events and (
            self.node.min() < 0 or self.node.max() >= self.n_nodes
        ):
            raise ValueError("trace node id out of range")
        if self.n_events and self.packets.min() < 0:
            raise ValueError("negative packet count")

    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Persist to an ``.npz`` file."""
        np.savez_compressed(
            path,
            time=self.time, node=self.node, next_node=self.next_node,
            packets=self.packets, flow=self.flow, span=self.span,
            meta=np.array([self.duration, float(self.n_nodes)]),
        )

    @classmethod
    def load(cls, path) -> "EventTrace":
        """Load from an ``.npz`` file produced by :meth:`save`."""
        data = np.load(path)
        return cls(
            time=data["time"], node=data["node"],
            next_node=data["next_node"], packets=data["packets"],
            flow=data["flow"], span=data["span"],
            duration=float(data["meta"][0]),
            n_nodes=int(data["meta"][1]),
        )


class TraceRecorder:
    """Append-only builder the kernel writes into.

    Rows arrive either one at a time (:meth:`record`) or as whole array
    chunks (:meth:`record_batch`, the batched kernel's path).  Append
    order is preserved across both — :meth:`finish` stable-sorts by time,
    so rows recorded at equal virtual times keep their execution order.
    That ordering is part of the engines' bit-identity contract.
    """

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self._chunks: list[tuple[np.ndarray, ...]] = []
        self._chunk_rows = 0
        self._time: list[float] = []
        self._node: list[int] = []
        self._next: list[int] = []
        self._packets: list[int] = []
        self._flow: list[int] = []
        self._span: list[float] = []

    def record(
        self,
        time: float,
        node: int,
        next_node: int,
        packets: int,
        flow: int,
        span: float = 0.0,
    ) -> None:
        self._time.append(time)
        self._node.append(node)
        self._next.append(next_node)
        self._packets.append(packets)
        self._flow.append(flow)
        self._span.append(span)

    def record_batch(
        self,
        time: np.ndarray,
        node: np.ndarray,
        next_node: np.ndarray,
        packets: np.ndarray,
        flow: np.ndarray,
        span: np.ndarray,
    ) -> None:
        """Append a chunk of rows in execution order (arrays not copied)."""
        if len(time) == 0:
            return
        self._flush_pending()
        self._chunks.append((time, node, next_node, packets, flow, span))
        self._chunk_rows += len(time)

    def _flush_pending(self) -> None:
        if self._time:
            self._chunks.append((
                np.asarray(self._time, dtype=np.float64),
                np.asarray(self._node, dtype=np.int64),
                np.asarray(self._next, dtype=np.int64),
                np.asarray(self._packets, dtype=np.int64),
                np.asarray(self._flow, dtype=np.int64),
                np.asarray(self._span, dtype=np.float64),
            ))
            self._chunk_rows += len(self._time)
            self._time, self._node, self._next = [], [], []
            self._packets, self._flow, self._span = [], [], []

    def __len__(self) -> int:
        return self._chunk_rows + len(self._time)

    def finish(self, duration: float) -> EventTrace:
        """Freeze into an :class:`EventTrace` sorted by time."""
        self._flush_pending()
        cols: list[np.ndarray] = []
        for i in range(6):
            cols.append(
                np.concatenate([c[i] for c in self._chunks])
                if self._chunks else np.zeros(0)
            )
        time = np.asarray(cols[0], dtype=np.float64)
        order = np.argsort(time, kind="stable")
        trace = EventTrace(
            time=time[order],
            node=np.asarray(cols[1], dtype=np.int32)[order],
            next_node=np.asarray(cols[2], dtype=np.int32)[order],
            packets=np.asarray(cols[3], dtype=np.int32)[order],
            flow=np.asarray(cols[4], dtype=np.int32)[order],
            span=np.asarray(cols[5], dtype=np.float64)[order],
            duration=float(duration),
            n_nodes=self.n_nodes,
        )
        trace.validate()
        return trace
