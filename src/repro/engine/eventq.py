"""Deterministic event queue.

A thin binary-heap wrapper ordering events by ``(time, sequence)``: ties in
virtual time resolve by insertion order, so two runs that schedule events in
the same order execute them in the same order — the determinism contract the
whole experiment harness leans on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of ``(time, seq, callback, args)`` entries."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = itertools.count()
        self._popped = 0

    def push(self, time: float, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` at ``time``."""
        if time < 0:
            raise ValueError("cannot schedule before time 0")
        heapq.heappush(self._heap, (time, next(self._seq), callback, args))

    def pop(self) -> tuple[float, Callable, tuple]:
        """Remove and return the earliest event."""
        time, _, callback, args = heapq.heappop(self._heap)
        self._popped += 1
        return time, callback, args

    def peek_time(self) -> float:
        """Timestamp of the earliest event (IndexError when empty)."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def processed(self) -> int:
        """Number of events popped so far."""
        return self._popped
