"""Deterministic event queues.

Two implementations share one ordering contract — events execute in
``(time, sequence)`` order, ties in virtual time resolving by insertion
order — so two runs that schedule events in the same order execute them in
the same order.  That is the determinism contract the whole experiment
harness leans on.

- :class:`EventQueue` — the original binary heap of python callbacks.  The
  batched kernel still uses it for *control* events (traffic-generator
  callbacks); the reference kernel uses it for everything.
- :class:`BatchEventQueue` — a struct-of-arrays calendar for *train*
  events, bucketed by conservative lookahead window.  Events carry only
  numeric fields (no callbacks), so a whole window can be popped as sorted
  numpy arrays and processed vectorized.  Buckets are approximate
  partitions — correctness comes from the kernel's window march (the
  minimum occupied bucket is always drained before later ones), not from
  bucket boundaries.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = ["EventQueue", "BatchEventQueue", "EventBatch", "merge_newer"]


class EventQueue:
    """Min-heap of ``(time, seq, callback, args)`` entries."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = itertools.count()
        self._popped = 0

    def push(self, time: float, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` at ``time``."""
        if time < 0:
            raise ValueError("cannot schedule before time 0")
        heapq.heappush(self._heap, (time, next(self._seq), callback, args))

    def pop(self) -> tuple[float, Callable, tuple]:
        """Remove and return the earliest event."""
        time, _, callback, args = heapq.heappop(self._heap)
        self._popped += 1
        return time, callback, args

    def peek_time(self) -> float:
        """Timestamp of the earliest event (IndexError when empty)."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def processed(self) -> int:
        """Number of events popped so far."""
        return self._popped


# --------------------------------------------------------------------- #
# Struct-of-arrays calendar queue (batched kernel)
# --------------------------------------------------------------------- #
#: Parallel array fields of one train-event batch, in push order.
_BATCH_FIELDS = (
    "time", "seq", "node", "dst", "count", "nbytes", "flow", "last",
    "hook", "train",
)


@dataclass
class EventBatch:
    """A group of train events as parallel arrays.

    ``time``/``nbytes`` are float64; ``last``/``hook`` are bool; every
    other field is int64.  ``train`` indexes the kernel's train list;
    ``hook`` marks trains whose transfer carries an ``on_delivery``
    callback; ``seq`` is the global tie-break sequence shared with the
    control-event heap.
    """

    time: np.ndarray
    seq: np.ndarray
    node: np.ndarray
    dst: np.ndarray
    count: np.ndarray
    nbytes: np.ndarray
    flow: np.ndarray
    last: np.ndarray
    hook: np.ndarray
    train: np.ndarray

    def __len__(self) -> int:
        return len(self.time)

    def arrays(self) -> tuple[np.ndarray, ...]:
        return (self.time, self.seq, self.node, self.dst, self.count,
                self.nbytes, self.flow, self.last, self.hook, self.train)

    def take(self, index) -> "EventBatch":
        """New batch of the rows selected by ``index`` (slice or array)."""
        return EventBatch(
            self.time[index], self.seq[index], self.node[index],
            self.dst[index], self.count[index], self.nbytes[index],
            self.flow[index], self.last[index], self.hook[index],
            self.train[index],
        )

    def sorted_by_key(self) -> "EventBatch":
        """Rows reordered into ``(time, seq)`` execution order."""
        order = np.lexsort((self.seq, self.time))
        return self.take(order)

    @staticmethod
    def concatenate(batches: list["EventBatch"]) -> "EventBatch":
        if len(batches) == 1:
            return batches[0]
        return EventBatch(
            np.concatenate([b.time for b in batches]),
            np.concatenate([b.seq for b in batches]),
            np.concatenate([b.node for b in batches]),
            np.concatenate([b.dst for b in batches]),
            np.concatenate([b.count for b in batches]),
            np.concatenate([b.nbytes for b in batches]),
            np.concatenate([b.flow for b in batches]),
            np.concatenate([b.last for b in batches]),
            np.concatenate([b.hook for b in batches]),
            np.concatenate([b.train for b in batches]),
        )


def merge_newer(rem: EventBatch, inj: EventBatch) -> EventBatch:
    """Merge ``inj`` into ``rem``, both already in ``(time, seq)`` order,
    where every ``inj`` seq exceeds every ``rem`` seq.

    That seq dominance holds for any events pushed *after* a bucket was
    popped (the kernel's sequence counter is monotonic), and it reduces the
    (time, seq) merge to a single ``searchsorted(..., side="right")`` on
    time: an injected event ties after every remaining event at the same
    timestamp.  O(n) with no lexsort — the kernel uses this to splice
    callback-injected events into the window it is currently draining.
    """
    n_rem, n_inj = len(rem), len(inj)
    if n_rem == 0:
        return inj
    if n_inj == 0:
        return rem
    at = np.searchsorted(rem.time, inj.time, side="right")
    inj_pos = at + np.arange(n_inj)
    mask = np.zeros(n_rem + n_inj, dtype=bool)
    mask[inj_pos] = True
    out = []
    for a, b in zip(rem.arrays(), inj.arrays()):
        col = np.empty(n_rem + n_inj, dtype=a.dtype)
        col[~mask] = a
        col[mask] = b
        out.append(col)
    return EventBatch(*out)


class BatchEventQueue:
    """Window-bucketed calendar of train events.

    Events land in bucket ``floor(time / window_s)``; the kernel drains the
    minimum occupied bucket, sorted by ``(time, seq)``, one conservative
    window at a time.  Pushes append chunks; sorting is deferred to
    :meth:`pop_bucket` so the common path (push a segment's successors,
    pop the next window) costs one lexsort per window.
    """

    def __init__(self, window_s: float) -> None:
        if not window_s > 0:
            raise ValueError("window_s must be positive")
        self.window_s = float(window_s)
        # bucket -> list of (batch, start, end) row ranges.  Ranges stay
        # views into the pushed batches until the bucket is popped, so a
        # push costs one bucket sort — no per-bucket array copies.
        self._chunks: dict[int, list[tuple[EventBatch, int, int]]] = {}
        self._heap: list[int] = []
        self._pending = 0

    def __len__(self) -> int:
        return self._pending

    def __bool__(self) -> bool:
        return self._pending > 0

    def has_bucket(self, bucket: int) -> bool:
        """Whether any pending event currently lands in ``bucket``."""
        return bucket in self._chunks

    def push_batch(self, batch: EventBatch) -> None:
        """Add a batch of events (any time order; negative times rejected)."""
        n = len(batch)
        if n == 0:
            return
        if float(batch.time.min()) < 0:
            raise ValueError("cannot schedule before time 0")
        buckets = np.floor_divide(batch.time, self.window_s).astype(np.int64)
        if n == 1 or (buckets == buckets[0]).all():
            self._add_chunk(int(buckets[0]), batch, 0, n)
        else:
            # One stable sort groups each bucket's rows contiguously.
            order = np.argsort(buckets, kind="stable")
            sorted_batch = batch.take(order)
            bs = buckets[order]
            edges = np.nonzero(bs[1:] != bs[:-1])[0] + 1
            start = 0
            for end in list(edges) + [n]:
                self._add_chunk(int(bs[start]), sorted_batch, start, end)
                start = end
        self._pending += n

    def _add_chunk(
        self, key: int, batch: EventBatch, start: int, end: int
    ) -> None:
        existing = self._chunks.get(key)
        if existing is None:
            self._chunks[key] = [(batch, start, end)]
            heapq.heappush(self._heap, key)
        else:
            existing.append((batch, start, end))

    def min_bucket(self) -> int | None:
        """Lowest occupied bucket id, or None when empty."""
        while self._heap and self._heap[0] not in self._chunks:
            heapq.heappop(self._heap)  # stale entry (already drained)
        return self._heap[0] if self._heap else None

    def pop_bucket(self, bucket: int) -> EventBatch | None:
        """Remove and return bucket ``bucket`` sorted by ``(time, seq)``."""
        chunks = self._chunks.pop(bucket, None)
        if chunks is None:
            return None
        if len(chunks) == 1:
            batch, start, end = chunks[0]
            merged = batch if start == 0 and end == len(batch) else (
                batch.take(slice(start, end))
            )
        else:
            merged = EventBatch(
                np.concatenate([b.time[s:e] for b, s, e in chunks]),
                np.concatenate([b.seq[s:e] for b, s, e in chunks]),
                np.concatenate([b.node[s:e] for b, s, e in chunks]),
                np.concatenate([b.dst[s:e] for b, s, e in chunks]),
                np.concatenate([b.count[s:e] for b, s, e in chunks]),
                np.concatenate([b.nbytes[s:e] for b, s, e in chunks]),
                np.concatenate([b.flow[s:e] for b, s, e in chunks]),
                np.concatenate([b.last[s:e] for b, s, e in chunks]),
                np.concatenate([b.hook[s:e] for b, s, e in chunks]),
                np.concatenate([b.train[s:e] for b, s, e in chunks]),
            )
        merged = merged.sorted_by_key()
        self._pending -= len(merged)
        return merged
