"""Conservative-window evaluation of a mapping against an event trace.

The parallel engine is a conservative PDES: virtual time advances in windows
of length equal to the *lookahead* — the minimum latency over links cut by
the mapping — and the engine nodes barrier between windows.  Within a window
they run concurrently, so the window's wall time is the maximum per-node
work; across windows wall times add.  Shipping a train across a cut link
costs extra.  This module computes, fully vectorized over the trace arrays:

- per-engine-node kernel event loads → the paper's *load imbalance* metric,
- network emulation wall time (the replay/Fig 9–10 quantity),
- application emulation wall time (network wall combined window-by-window
  with the application's compute demand — Fig 6–7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.compute import ComputeProfile
from repro.engine.costmodel import CostModel
from repro.engine.trace import EventTrace
from repro.topology.network import Network

__all__ = ["EmulationMetrics", "evaluate_mapping", "lookahead_of"]


def lookahead_of(
    net: Network, parts: np.ndarray, min_lookahead: float = 50e-6
) -> float:
    """Conservative lookahead of a mapping.

    The minimum one-way latency over cut links (links whose endpoints map to
    different engine nodes), floored at ``min_lookahead``.  With no cut
    links the emulation never synchronizes; ``inf`` is returned.
    """
    parts = np.asarray(parts)
    u, v, lat, _ = net.link_endpoint_arrays()
    if len(u) == 0:
        return np.inf
    cut = parts[u] != parts[v]
    if not cut.any():
        return np.inf
    return max(float(lat[cut].min()), min_lookahead)


@dataclass
class EmulationMetrics:
    """Everything measured for one (trace, mapping) pair.

    ``load_imbalance`` is the paper's metric: the standard deviation of the
    per-engine-node kernel event rates normalized by their mean.
    """

    k: int
    loads: np.ndarray
    lookahead: float
    n_windows: int
    n_active_windows: int
    remote_trains: int
    remote_packets: int
    total_events: int
    total_packets: int
    wall_network: float
    wall_app: float
    compute_total: float
    serial_work: float = 0.0

    @property
    def load_imbalance(self) -> float:
        """Normalized std-dev of per-engine-node loads (0 = perfect)."""
        mean = self.loads.mean()
        if mean <= 0:
            return 0.0
        return float(self.loads.std() / mean)

    @property
    def parallel_efficiency(self) -> float:
        """Serial emulation work (seconds) / (k × network wall time)."""
        if self.wall_network <= 0:
            return 1.0
        return self.serial_work / (self.k * self.wall_network)

    def summary(self) -> str:
        return (
            f"k={self.k} imbalance={self.load_imbalance:.3f} "
            f"wall_net={self.wall_network:.2f}s wall_app={self.wall_app:.2f}s "
            f"remote={self.remote_packets}pkts "
            f"windows={self.n_active_windows}/{self.n_windows}"
        )


def evaluate_mapping(
    trace: EventTrace,
    net: Network,
    parts: np.ndarray,
    cost: CostModel | None = None,
    compute: ComputeProfile | None = None,
    engine_speeds: np.ndarray | None = None,
    telemetry=None,
    timeline_label: dict | None = None,
) -> EmulationMetrics:
    """Score a mapping: loads, imbalance, and wall-clock times.

    Parameters
    ----------
    trace:
        Event trace from one kernel run (mapping-independent).
    net, parts:
        The network and the node → engine-node assignment.
    cost:
        Wall-clock cost model (defaults to :class:`CostModel`).
    compute:
        Application compute-demand profile; omit for network-only replay.
    engine_speeds:
        Optional relative speed per engine node (heterogeneous cluster);
        an engine node with speed 2 processes events twice as fast.  Loads
        stay in raw packets; wall-clock costs divide by the speed.
    telemetry:
        Optional :class:`repro.obs.telemetry.Telemetry`; records an
        ``evaluate_mapping`` span, lookahead / window / queue gauges, and
        an ``engine.load`` per-engine-node load timeline (binned packet
        loads over virtual time — the substrate of the paper's Figure 2/8
        and of :func:`repro.metrics.imbalance.fine_grained_imbalance`).
    timeline_label:
        Labels (setup / seed / approach) attached to the recorded
        timeline so multi-cell sweeps stay distinguishable.
    """
    from repro.obs.telemetry import ensure_telemetry

    tel = ensure_telemetry(telemetry)
    with tel.span("evaluate_mapping"):
        metrics = _evaluate_mapping(
            trace, net, parts, cost=cost, compute=compute,
            engine_speeds=engine_speeds,
        )
    if tel.enabled:
        tel.count("engine.evaluations")
        tel.count("engine.remote_packets", metrics.remote_packets)
        tel.gauge("engine.lookahead_s", metrics.lookahead
                  if np.isfinite(metrics.lookahead) else -1.0)
        tel.gauge("engine.n_windows", metrics.n_windows)
        tel.gauge("engine.n_active_windows", metrics.n_active_windows)
        # Per-engine-node load timeline: one bin per conservative window,
        # re-binned to at most 200 columns so huge traces stay exportable.
        n_bins = int(min(200, max(1, metrics.n_windows)))
        interval = trace.duration / n_bins if trace.duration > 0 else 1.0
        loads_t = np.zeros((metrics.k, n_bins), dtype=np.float64)
        if trace.n_events:
            bins = np.minimum(
                (trace.time / interval).astype(np.int64), n_bins - 1
            )
            np.add.at(
                loads_t,
                (np.asarray(parts, dtype=np.int64)[trace.node], bins),
                trace.packets,
            )
        tel.timeline("engine.load", loads_t, interval,
                     **(timeline_label or {}))
    return metrics


def _evaluate_mapping(
    trace: EventTrace,
    net: Network,
    parts: np.ndarray,
    cost: CostModel | None = None,
    compute: ComputeProfile | None = None,
    engine_speeds: np.ndarray | None = None,
) -> EmulationMetrics:
    cost = cost or CostModel()
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (net.n_nodes,):
        raise ValueError("parts must assign every network node")
    k = int(parts.max()) + 1 if len(parts) else 1
    if engine_speeds is not None:
        engine_speeds = np.asarray(engine_speeds, dtype=np.float64)
        if engine_speeds.shape != (k,) or np.any(engine_speeds <= 0):
            raise ValueError(
                f"engine_speeds must be positive with shape ({k},)"
            )

    # Per-engine-node kernel event loads (packets).
    loads = np.zeros(k, dtype=np.float64)
    ev_lp = parts[trace.node]
    np.add.at(loads, ev_lp, trace.packets)

    lookahead = lookahead_of(net, parts, cost.min_lookahead)
    if not np.isfinite(lookahead):
        window_len = max(trace.duration, 1e-9)
    else:
        window_len = lookahead
    n_windows = max(1, int(np.ceil(trace.duration / window_len)))

    # Event costs.
    forwarding = trace.next_node >= 0
    remote = forwarding & (parts[np.maximum(trace.next_node, 0)] != ev_lp)
    ev_cost = (
        trace.packets * cost.per_packet_cost
        + cost.per_event_cost
        + remote * cost.remote_event_cost
    )
    if engine_speeds is not None:
        ev_cost = ev_cost / engine_speeds[ev_lp]
    # What a single engine node would spend (no remote events, no sync):
    # the baseline for parallel-efficiency reporting.
    serial_work = float(
        trace.packets.sum() * cost.per_packet_cost
        + trace.n_events * cost.per_event_cost
    )

    if trace.n_events == 0:
        comp_total = compute.total if compute is not None else 0.0
        return EmulationMetrics(
            k=k, loads=loads, lookahead=lookahead, n_windows=n_windows,
            n_active_windows=0, remote_trains=0, remote_packets=0,
            total_events=0, total_packets=0, wall_network=0.0,
            wall_app=comp_total, compute_total=comp_total, serial_work=0.0,
        )

    # A train's per-packet work is not an impulse: it occurs over the
    # train's serialization span on the outgoing link.  Spread each event's
    # cost uniformly over the windows its span covers (capped so a long
    # span on a tiny window cannot explode the expansion).
    MAX_SPREAD = 32
    win0 = np.minimum((trace.time / window_len).astype(np.int64), n_windows - 1)
    win1 = np.minimum(
        ((trace.time + trace.span) / window_len).astype(np.int64),
        n_windows - 1,
    )
    n_span = np.minimum(win1 - win0 + 1, MAX_SPREAD)
    total_rows = int(n_span.sum())
    starts = np.cumsum(n_span) - n_span
    pos = np.arange(total_rows) - np.repeat(starts, n_span)
    # Evenly-spaced sampling of the covered window range keeps capped
    # spans statistically uniform.
    full_span = np.repeat(win1 - win0 + 1, n_span)
    win = np.repeat(win0, n_span) + (
        pos * full_span // np.repeat(n_span, n_span)
    )
    piece_cost = np.repeat(ev_cost / n_span, n_span)
    piece_lp = np.repeat(ev_lp, n_span)

    # Synchronization is charged per window in which a simulation event
    # actually crosses an engine-node boundary: a null-message-style
    # conservative engine only exchanges messages on channels that carry
    # traffic, so local-only windows cost no synchronization.  This is what
    # ties wall time to the paper's second objective (minimize cut
    # traffic) while the window *length* (lookahead) still controls how
    # many such windows a given cross-flow spreads over.
    remote_pieces = np.repeat(remote, n_span)
    n_active = len(np.unique(win[remote_pieces])) if remote.any() else 0

    # Work parallelism is assessed per skew-horizon chunk: engine nodes may
    # drift up to `skew_windows` windows apart, so the wall time of a chunk
    # is the maximum per-node work within it.  Group piece costs by
    # (chunk, lp): sort once, segment-sum, then per-chunk maximum.
    skew = max(1, int(cost.skew_windows))
    chunk = win // skew
    chunk_len = window_len * skew
    key = chunk * k + piece_lp
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    sorted_cost = piece_cost[order]
    group_starts = np.concatenate(
        ([0], np.nonzero(np.diff(sorted_key))[0] + 1)
    )
    group_cost = np.add.reduceat(sorted_cost, group_starts)
    group_chunk = sorted_key[group_starts] // k

    chunk_starts = np.concatenate(
        ([0], np.nonzero(np.diff(group_chunk))[0] + 1)
    )
    chunk_max = np.maximum.reduceat(group_cost, chunk_starts)
    active_chunks = group_chunk[chunk_starts]

    sync = cost.sync_cost(k)
    wall_network = float(chunk_max.sum()) + n_active * sync

    if compute is None:
        comp_total = 0.0
        wall_app = wall_network
    else:
        comp_total = compute.total
        c_lo = active_chunks * chunk_len
        c_hi = np.minimum(c_lo + chunk_len, trace.duration)
        comp_c = compute.cumulative(c_hi) - compute.cumulative(c_lo)
        # Spread the sync charge across active chunks proportionally.
        sync_per_chunk = (
            n_active * sync / len(active_chunks) if len(active_chunks) else 0.0
        )
        emu_c = chunk_max + sync_per_chunk
        wall_app = float(np.maximum(emu_c, comp_c).sum())
        # Chunks with compute demand but no emulation events pass at the
        # application's own speed.
        wall_app += max(0.0, comp_total - float(comp_c.sum()))

    return EmulationMetrics(
        k=k,
        loads=loads,
        lookahead=lookahead,
        n_windows=n_windows,
        n_active_windows=n_active,
        remote_trains=int(remote.sum()),
        remote_packets=int(trace.packets[remote].sum()),
        total_events=trace.n_events,
        total_packets=trace.total_packets,
        wall_network=wall_network,
        wall_app=wall_app,
        compute_total=comp_total,
        serial_work=serial_work,
    )
