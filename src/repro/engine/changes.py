"""Mid-run link-cost changes, serviced at conservative-window barriers.

Long emulations meet topology change streams (diurnal traffic
engineering, scheduled capacity shifts); re-running the whole emulation
per change defeats the point of emulating.  This module installs a
barrier hook that drains a ``(time, changes)`` schedule: whenever virtual
time passes an entry, the incremental engine
(:func:`repro.routing.delta.update_routing`) repairs the routing tables
in place and the kernel's :class:`~repro.engine.lp.ShardContext` arrays
are refreshed — all between windows, where no segment is in flight, so
both engines apply each change at the identical point in the event
stream and stay trace-identical to each other.

Two hard restrictions keep mid-run changes sound:

- **Only** :class:`~repro.routing.delta.SetLinkCost` — link up/down and
  link addition change the link-id universe (per-link accounting arrays,
  pair-lookup sizes) that every LP snapshotted at fork time.
- A new latency must stay **at or above the conservative window**
  (:func:`repro.engine.sync.conservative_window` is the minimum link
  latency at kernel construction): the calendar's window bucketing is
  derived from it, and a link faster than the lookahead would let an
  event schedule a successor inside its own window.

With forked LP workers the spliced arrays must live in shared memory
(:class:`repro.runtime.shm.ShmArena` — ``MAP_SHARED`` mappings survive
the fork) or the workers would keep their copy-on-write snapshots;
:func:`repro.engine.kernel.run_kernel` arranges that before the pool
starts.
"""

from __future__ import annotations

import numpy as np

from repro.routing.delta import RoutingState, SetLinkCost, update_routing
from repro.routing.perf import RoutingStats

__all__ = [
    "normalize_link_changes",
    "install_link_changes",
    "privatize_shared",
]


def normalize_link_changes(link_changes) -> list[tuple[float, list]]:
    """Validate a ``(time, change-or-list)`` schedule into sorted batches.

    Each entry pairs a virtual time with one :class:`SetLinkCost` or a
    list of them; entries sort by time (stable, so same-time batches
    keep their given order).
    """
    schedule: list[tuple[float, list]] = []
    for entry in link_changes:
        try:
            when, changes = entry
        except (TypeError, ValueError):
            raise TypeError(
                f"link_changes entries must be (time, changes) pairs; "
                f"got {entry!r}"
            ) from None
        when = float(when)
        if when < 0:
            raise ValueError(f"change time {when!r} is before time 0")
        if isinstance(changes, (list, tuple)):
            changes = list(changes)
        else:
            changes = [changes]
        for change in changes:
            if not isinstance(change, SetLinkCost):
                raise TypeError(
                    f"mid-run changes support SetLinkCost only (link "
                    f"up/down and AddLink change the per-link arrays "
                    f"every LP snapshotted at fork time); got "
                    f"{change!r} — apply structural changes between "
                    f"runs via repro.routing.delta.update_routing"
                )
        schedule.append((when, changes))
    schedule.sort(key=lambda item: item[0])
    return schedule


def _refresh_context(kernel) -> None:
    """Re-fill the shard context's link arrays after a routing repair.

    ``ctx.next_hop`` aliases ``tables.next_hop`` and was already spliced
    in place; the latency/bandwidth/pair-lookup arrays snapshot state
    that ``Network.set_link`` rebuilt, so their values are copied back
    into the existing (possibly shared-memory) buffers — shapes never
    change under :class:`SetLinkCost`.
    """
    ctx = kernel._ctx
    _, _, lat, bw = kernel.net.link_endpoint_arrays()
    ctx.link_lat[...] = lat
    ctx.link_bw[...] = bw
    keys, lids = kernel.tables._lookup_arrays()
    ctx.pair_keys[...] = keys
    ctx.pair_lids[...] = lids


def install_link_changes(
    kernel, state: RoutingState, link_changes, *, cache=None
) -> None:
    """Attach a link-change schedule to a constructed kernel.

    ``state`` must wrap the very tables the kernel was built on (its
    context aliases their ``next_hop``).  Raises at install time — not
    mid-run — when a scheduled latency undercuts the conservative
    window.  Progress lands on ``kernel.link_change_log`` (``(time,
    n_changes, n_touched)`` per applied batch) and
    ``kernel.routing_stats`` (a :class:`~repro.routing.perf.RoutingStats`
    filling ``delta_updates`` / ``affected_sources`` /
    ``touched_sources``).
    """
    if state.tables is not kernel.tables:
        raise ValueError(
            "the RoutingState must wrap the kernel's own tables (build "
            "the kernel on state.tables, or use run_kernel(link_changes=)"
        )
    schedule = normalize_link_changes(link_changes)
    for when, changes in schedule:
        for change in changes:
            if (change.latency_s is not None
                    and change.latency_s < kernel.window_s):
                raise ValueError(
                    f"link {change.link_id} latency "
                    f"{change.latency_s!r}s at t={when} undercuts the "
                    f"conservative window ({kernel.window_s!r}s): the "
                    f"calendar's lookahead was fixed at kernel "
                    f"construction and a faster link would break window "
                    f"bucketing; keep mid-run latencies >= the minimum "
                    f"construction-time link latency"
                )
    kernel.link_change_log = []
    kernel.routing_stats = RoutingStats()
    pending = list(schedule)

    def _service(now: float) -> None:
        while pending and pending[0][0] <= now:
            when, changes = pending.pop(0)
            touched = update_routing(
                state, changes, cache=cache, stats=kernel.routing_stats,
            )
            _refresh_context(kernel)
            kernel.link_change_log.append(
                (when, len(changes), int(len(touched)))
            )
            kernel.telemetry.count("kernel.link_changes", len(changes))

    kernel.barrier_hooks.append(_service)


def privatize_shared(kernel) -> None:
    """Copy arena-backed arrays into private memory before unmapping.

    Closing a shared segment unmaps it even while ndarray views exist —
    a later read through such a view is a hard crash, not an exception.
    The kernel's tables and :class:`~repro.engine.lp.ShardContext` are
    the only long-lived holders (shards read through the one shared
    context object), so rebinding them to private copies makes
    ``ShmArena.close`` safe while keeping the returned tables usable.
    """
    tables = kernel.tables
    tables.dist = np.array(tables.dist)
    tables.next_hop = np.array(tables.next_hop)
    ctx = kernel._ctx
    object.__setattr__(ctx, "next_hop", tables.next_hop)
    for field in ("pair_keys", "pair_lids", "link_bw", "link_lat"):
        object.__setattr__(ctx, field, np.array(getattr(ctx, field)))
