"""Wall-clock cost model for the parallel emulation engine.

The paper's hardware (a 24-node Pentium-II cluster on switched 100 Mbps
Ethernet) is replaced by an explicit cost model.  Defaults are calibrated to
that era: tens of microseconds of kernel work per packet event, ~100 µs to
ship a simulation event across the cluster network, and a fraction of a
millisecond for a barrier among the engine nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Knobs of the wall-clock model.

    Attributes
    ----------
    per_packet_cost:
        Seconds of engine-node CPU per emulated packet (the dominant term:
        "the real load in the emulator depends on the number of packets it
        processes").
    per_event_cost:
        Fixed overhead per kernel event (train), independent of size.
    remote_event_cost:
        Extra cost when a train crosses an engine-node boundary
        (serialization + cluster-network send; §2.2.3's "expensive to
        transfer a simulation event across physical nodes").
    sync_cost_base, sync_cost_per_lp:
        Synchronization cost per conservative window in which any engine
        node had work: ``base + per_lp * n_lps``.
    min_lookahead:
        Floor on the conservative window so a pathological partition cannot
        produce a zero-length window.
    skew_windows:
        Bounded-skew horizon, in windows.  A strict barrier-per-window
        engine (skew 1) serializes engine nodes that are active in
        *different* windows of the same burst; real conservative engines
        (null messages / channel scanning) let nodes drift apart when
        dependencies permit.  Work is treated as parallelizable within a
        horizon of ``skew_windows`` consecutive windows; the per-window
        synchronization cost is charged regardless.
    """

    per_packet_cost: float = 30e-6
    per_event_cost: float = 5e-6
    remote_event_cost: float = 120e-6
    sync_cost_base: float = 40e-6
    sync_cost_per_lp: float = 8e-6
    min_lookahead: float = 50e-6
    skew_windows: int = 48

    def __post_init__(self) -> None:
        for name in (
            "per_packet_cost", "per_event_cost", "remote_event_cost",
            "sync_cost_base", "sync_cost_per_lp", "min_lookahead",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def sync_cost(self, n_lps: int) -> float:
        """Barrier cost for one window among ``n_lps`` engine nodes."""
        if n_lps <= 1:
            return 0.0
        return self.sync_cost_base + self.sync_cost_per_lp * n_lps
