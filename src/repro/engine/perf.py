"""Operation counters for the emulation kernels.

:class:`KernelStats` carries two families of counters.  The *semantic*
counters (transfers, trains, packets) describe the virtual traffic and must
be identical across every engine — the reference heap kernel
(:mod:`repro.engine._reference`), the batched sequential kernel
(:mod:`repro.engine.kernel`) and the multi-process LP engine
(:mod:`repro.engine.lp`); the differential parity suite compares them
bit-for-bit via :meth:`KernelStats.semantic`.

The *operation* counters describe how the batched engines did the work:
how many conservative windows were advanced, how many events went through
the vectorized fast path versus the ordered python fallback (multi-event
FIFO groups, RED admission, NetFlow collection), and how often a segment
had to be cut for a control event or a delivery hook.  The perf-guard test
(``tests/engine/test_perf_guard.py``) asserts bounds on these so the build
fails if someone quietly reintroduces per-event python dispatch on the
fast path.  The reference kernel leaves them at zero.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelStats"]


@dataclass
class KernelStats:
    """Aggregate counters accumulated during a run.

    Attributes
    ----------
    transfers_submitted, transfers_delivered, trains_forwarded,
    trains_dropped, packets_delivered:
        Semantic traffic counters — engine-independent (see
        :meth:`semantic`).
    windows:
        Conservative lookahead windows advanced by the batched main loop.
    segments:
        Vectorized dispatches — at least one per non-empty window, plus
        one per control-event or delivery-hook cut inside a window.
    vector_events:
        Train events processed entirely through the numpy fast path
        (deliveries, and forwards whose (link, direction) FIFO group was a
        singleton within the segment).
    python_loop_events:
        Train events that took the ordered python fallback: multi-event
        FIFO groups (the busy-time recurrence is order-sensitive), RED
        admission, or NetFlow collection.
    control_events:
        Scheduled callbacks (traffic generators, delivery hooks) popped
        from the control heap.
    hook_cuts:
        Segments cut short because a delivery hook had to run before the
        remaining events could be batched.
    window_merges:
        Same-window event batches re-merged after a control event or hook
        injected new events into the window being processed.
    """

    transfers_submitted: int = 0
    transfers_delivered: int = 0
    trains_forwarded: int = 0
    trains_dropped: int = 0
    packets_delivered: int = 0
    windows: int = 0
    segments: int = 0
    vector_events: int = 0
    python_loop_events: int = 0
    control_events: int = 0
    hook_cuts: int = 0
    window_merges: int = 0

    def semantic(self) -> tuple[int, int, int, int, int]:
        """The engine-independent counters, for differential comparison."""
        return (
            self.transfers_submitted,
            self.transfers_delivered,
            self.trains_forwarded,
            self.trains_dropped,
            self.packets_delivered,
        )

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another stats object into this one (the LP engine
        aggregates per-shard deltas)."""
        self.transfers_submitted += other.transfers_submitted
        self.transfers_delivered += other.transfers_delivered
        self.trains_forwarded += other.trains_forwarded
        self.trains_dropped += other.trains_dropped
        self.packets_delivered += other.packets_delivered
        self.windows += other.windows
        self.segments += other.segments
        self.vector_events += other.vector_events
        self.python_loop_events += other.python_loop_events
        self.control_events += other.control_events
        self.hook_cuts += other.hook_cuts
        self.window_merges += other.window_merges
