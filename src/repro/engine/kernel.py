"""The batched discrete-event emulation kernel.

Simulates the virtual network in virtual time: packet trains traverse
store-and-forward FIFO links with per-direction transmission queueing and
propagation delay; routers forward via the routing tables; hosts deliver and
fire closed-loop callbacks.  Every executed event is recorded into an
:class:`~repro.engine.trace.EventTrace` (one row per train-at-node, packet
counts preserved), which downstream code scores under any partition.

Unlike the original per-event heap kernel (preserved verbatim as
:class:`repro.engine._reference.ReferenceKernel`, the parity oracle), the
hot path here is *batched*: train events live in a struct-of-arrays
calendar (:class:`~repro.engine.eventq.BatchEventQueue`) bucketed by the
conservative lookahead window (:func:`~repro.engine.sync.conservative_window`
— the minimum link latency, so no event can schedule a successor inside its
own window), and whole windows are popped and processed as sorted numpy
arrays.  Only the order-coupled parts fall back to python loops: control
callbacks, delivery hooks, multi-event FIFO groups on one (link, direction),
RED admission, and NetFlow collection.

The produced traces are **bit-identical** to the reference kernel's — same
:class:`~repro.engine.trace.EventTrace` arrays byte for byte, same semantic
:class:`~repro.engine.perf.KernelStats`, same per-link accounting arrays.
Three facts make that work:

- rows enter the recorder in execution order and ``finish()`` sorts stably
  by time, so equal-time rows keep pop order;
- successor events of one vectorized segment are pushed in segment order
  with consecutive sequence numbers — exactly the values the reference's
  pop/push interleave would have assigned (deliveries push nothing, each
  admitted forward pushes exactly one successor);
- the per-(link, direction) busy-time recurrence ``depart = max(t, busy) +
  tx`` is float-order-sensitive, so only singleton FIFO groups take the
  elementwise path (``np.maximum`` is bit-identical to scalar ``max``);
  multi-event groups replay the scalar loop.

One theoretical caveat: window bucketing relies on ``t + tx + latency``
not rounding below ``t + latency``'s window; since ``tx`` is at least tens
of picoseconds and the rounding margin is ~2 ulp, this holds for any
realistic horizon, and even a straggler only lands in an already-drained
bucket *after* every event that must precede it (the parity suite enforces
the ordering empirically).

The kernel deliberately knows nothing about partitions or wall-clock cost —
see :mod:`repro.engine.parallel` for the analytic model and
:mod:`repro.engine.lp` for the multi-process LP engine built on top of this
class.
"""

from __future__ import annotations

import heapq
import warnings
from typing import Callable, Optional

import numpy as np

from repro.engine.eventq import EventBatch, merge_newer
from repro.engine.packet import (
    MTU_BYTES, Transfer, packetize, reset_flow_ids,
)
from repro.engine.perf import KernelStats
from repro.engine.queues import DropTail
from repro.engine.sync import conservative_window, cut_before, first_true
from repro.engine.trace import DELIVERED, INJECTED, EventTrace, TraceRecorder
from repro.routing.tables import RoutingTables
from repro.topology.network import Network

__all__ = ["EmulationKernel", "KernelStats", "run_kernel"]

#: Constructor options, in their historical positional order (the
#: deprecation shim maps stray positional arguments onto these).
_OPTION_NAMES = ("train_packets", "collector", "queue_limit_s", "queue",
                 "telemetry")
_UNSET = object()


class EmulationKernel:
    """One emulation run over a routed network (batched sequential engine).

    Parameters
    ----------
    net, tables:
        The virtual network and its routing tables.
    train_packets:
        Packets per train (fidelity knob; 1 = per-packet simulation).
    collector:
        Optional NetFlow-like collector with a
        ``record(time, router, out_link, train)`` method, invoked at every
        router hop (see :mod:`repro.profiling.netflow`).  Forces the
        ordered per-event path (collection order is part of its contract).
    queue_limit_s:
        Drop-tail horizon: a train is dropped when the link backlog it would
        join exceeds this many seconds of transmission (None = no drops).
        Shorthand for ``queue=DropTail(queue_limit_s)``.
    queue:
        Explicit queue discipline (e.g. :class:`repro.engine.queues.RED`);
        takes precedence over ``queue_limit_s``.  Anything other than a
        plain :class:`~repro.engine.queues.DropTail` forces the ordered
        per-event path (RED admission consumes an RNG in arrival order).
    telemetry:
        Optional :class:`repro.obs.telemetry.Telemetry`; :meth:`run`
        records a ``kernel/run`` span plus aggregate event / packet / drop
        counters and queue-depth gauges.  Nothing is recorded per event —
        the hot loop stays untouched.

    All options are keyword-only; passing them positionally still works for
    one release but emits a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        net: Network,
        tables: RoutingTables,
        *args,
        train_packets=_UNSET,
        collector=_UNSET,
        queue_limit_s=_UNSET,
        queue=_UNSET,
        telemetry=_UNSET,
        arena=None,
    ) -> None:
        from repro.obs.telemetry import ensure_telemetry

        opts = {"train_packets": 32, "collector": None, "queue_limit_s": None,
                "queue": None, "telemetry": None}
        if args:
            if len(args) > len(_OPTION_NAMES):
                raise TypeError(
                    f"EmulationKernel() takes at most "
                    f"{2 + len(_OPTION_NAMES)} positional arguments "
                    f"({2 + len(args)} given)"
                )
            warnings.warn(
                "passing EmulationKernel options positionally is deprecated "
                "and will stop working in the next release; use keyword "
                "arguments (train_packets=, collector=, queue_limit_s=, "
                "queue=, telemetry=)",
                DeprecationWarning,
                stacklevel=2,
            )
            opts.update(zip(_OPTION_NAMES, args))
        for name, value in zip(
            _OPTION_NAMES,
            (train_packets, collector, queue_limit_s, queue, telemetry),
        ):
            if value is not _UNSET:
                if len(args) > _OPTION_NAMES.index(name):
                    raise TypeError(
                        f"EmulationKernel() got multiple values for "
                        f"argument {name!r}"
                    )
                opts[name] = value

        if tables.net is not net:
            raise ValueError("routing tables were built for another network")
        self.net = net
        self.tables = tables
        self.train_packets = int(opts["train_packets"])
        self.collector = opts["collector"]
        self.telemetry = ensure_telemetry(opts["telemetry"])
        queue = opts["queue"]
        if queue is None and opts["queue_limit_s"] is not None:
            queue = DropTail(opts["queue_limit_s"])
        self.queue_disc = queue
        # Order-coupled state forces the per-event path for whole segments.
        self._ordered = self.collector is not None or (
            self.queue_disc is not None
            and type(self.queue_disc) is not DropTail
        )

        from repro.engine.eventq import BatchEventQueue
        from repro.engine.lp import LPShard, shard_context

        self.window_s = conservative_window(net)
        self.calendar = BatchEventQueue(self.window_s)
        self._ctrl: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._events = 0
        self._trains: list = []
        # Successor batches produced while draining the current window,
        # pushed to the calendar in one batch per window (_flush_staged).
        self._staged: list[EventBatch] = []

        #: Callbacks ``hook(now)`` run at every conservative-window barrier
        #: (after the window's successors are flushed, before the next
        #: bucket pops) — the only points where cross-window state such as
        #: the LP engine's channel ownership may change mid-run.  The
        #: online rebalancer (:mod:`repro.rebalance`) and forced migration
        #: schedules install themselves here.
        self.barrier_hooks: list[Callable[[float], None]] = []
        #: Observers ``observe(seg, next_col)`` of every vectorized
        #: dispatched segment (load monitoring; never called on the
        #: ordered per-event path).
        self.segment_observers: list[Callable[[EventBatch, np.ndarray],
                                              None]] = []

        self.recorder = TraceRecorder(net.n_nodes)
        self.stats = KernelStats()
        # (time, src, dst, nbytes, flow_id, tag) per submitted transfer —
        # the "network traffic trace" MaSSF records for replay.
        self.transfer_log: list[tuple[float, int, int, float, int, str]] = []
        self.now = 0.0
        self._end_time: float = float("inf")

        # All numeric per-link state lives in a single LP shard covering
        # the whole network; the public accounting arrays alias its.
        # An arena (repro.runtime.shm.ShmArena) rehomes the context
        # arrays in shared memory so mid-run routing repairs reach
        # forked LP workers — see repro.engine.changes.
        self.arena = arena
        self._ctx = shard_context(net, tables, self.queue_disc, arena)
        self._shard = LPShard(self._ctx)
        # Per-link, per-direction busy-until times (FIFO transmission).
        self._busy = self._shard.busy
        # Per-link accounting: packets carried, bytes carried, busy seconds,
        # worst backlog seen (both directions summed / maxed).
        self.link_packets = self._shard.link_packets
        self.link_bytes = self._shard.link_bytes
        self.link_busy_s = self._shard.link_busy_s
        self.link_max_backlog_s = self._shard.link_max_backlog_s
        self._is_router = np.array(
            [node.is_router for node in net.nodes], dtype=bool
        )

    # ------------------------------------------------------------------ #
    # Scheduling API (used by traffic generators)
    # ------------------------------------------------------------------ #
    def _next_seq(self) -> int:
        s = self._seq
        self._seq = s + 1
        return s

    def schedule(self, time: float, callback: Callable, *args) -> None:
        """Run ``callback(kernel, time, *args)`` at virtual ``time``."""
        if time < 0:
            raise ValueError("cannot schedule before time 0")
        heapq.heappush(self._ctrl, (time, self._next_seq(), callback, args))

    def submit_transfer(self, transfer: Transfer, time: float) -> None:
        """Inject a transfer at its source host at virtual ``time``.

        The source paces trains at its access-link rate (the first link on
        the path), mirroring a host NIC draining a socket buffer.  The
        injection itself is recorded as one kernel event (the paper counts
        "requests coming from the application" as live-injection overhead).
        """
        if transfer.nbytes <= 0:
            raise ValueError(
                f"transfer {transfer.src} -> {transfer.dst} carries "
                f"nbytes={transfer.nbytes!r}; a transfer must carry at "
                f"least one byte (was the Transfer mutated after "
                f"construction?)"
            )
        if transfer.src == transfer.dst:
            raise ValueError(
                f"transfer src == dst == {transfer.src}; a transfer must "
                f"cross the network — pick two distinct hosts"
            )
        if time < self.now:
            raise ValueError("cannot submit a transfer in the past")
        self.stats.transfers_submitted += 1
        first_hop = self.tables.hop(transfer.src, transfer.dst)
        if first_hop < 0:
            raise ValueError(
                f"no route {transfer.src} -> {transfer.dst}"
            )
        access = self.tables.link_between(transfer.src, first_hop)
        self.transfer_log.append(
            (time, transfer.src, transfer.dst, transfer.nbytes,
             transfer.flow_id, transfer.tag)
        )
        self.recorder.record(time, transfer.src, INJECTED, 1, transfer.flow_id)
        trains = packetize(transfer, self.train_packets)
        k = len(trains)
        base = len(self._trains)
        self._trains.extend(trains)
        times = np.empty(k, dtype=np.float64)
        seqs = np.empty(k, dtype=np.int64)
        offset = 0.0
        for i, train in enumerate(trains):
            times[i] = time + offset
            seqs[i] = self._next_seq()
            offset += access.tx_time(train.nbytes)
        self.calendar.push_batch(EventBatch(
            time=times,
            seq=seqs,
            node=np.full(k, transfer.src, dtype=np.int64),
            dst=np.full(k, transfer.dst, dtype=np.int64),
            count=np.array([t.count for t in trains], dtype=np.int64),
            nbytes=np.array([t.nbytes for t in trains], dtype=np.float64),
            flow=np.full(k, transfer.flow_id, dtype=np.int64),
            last=np.array([t.last for t in trains], dtype=bool),
            hook=np.full(k, transfer.on_delivery is not None, dtype=bool),
            train=np.arange(base, base + k, dtype=np.int64),
        ))

    def submit_transfers(self, transfers, times) -> None:
        """Inject many transfers at once (bulk :meth:`submit_transfer`).

        Exactly equivalent to ``for tr, t in zip(transfers, times):
        kernel.submit_transfer(tr, t)`` — same trace rows, same sequence
        numbers, same transfer log, same error behaviour — but all train
        events are built in one vectorized pass and one calendar push.
        ``times`` is a scalar or one timestamp per transfer.  Transfers
        carrying delivery hooks, kernels on the ordered path (RED /
        NetFlow), and invalid submissions take the per-transfer loop (the
        loop reproduces partial effects before an error bit-for-bit).
        """
        transfers = list(transfers)
        n = len(transfers)
        if n == 0:
            return
        t_arr = np.ascontiguousarray(np.broadcast_to(
            np.asarray(times, dtype=np.float64), (n,)
        ))
        src = np.array([tr.src for tr in transfers], dtype=np.int64)
        dst = np.array([tr.dst for tr in transfers], dtype=np.int64)
        nb = np.array([tr.nbytes for tr in transfers], dtype=np.int64)
        hooked = any(tr.on_delivery is not None for tr in transfers)
        valid = (
            bool((nb > 0).all()) and bool((src != dst).all())
            and bool((t_arr >= self.now).all())
        )
        hop = (
            self.tables.next_hop[src, dst].astype(np.int64) if valid else None
        )
        if self._ordered or hooked or not valid or (hop < 0).any():
            for tr, t in zip(transfers, t_arr.tolist()):
                self.submit_transfer(tr, t)
            return
        self.stats.transfers_submitted += n
        lids = self._shard._link_ids(src, hop)
        bw = self._ctx.link_bw[lids]
        flow = np.array([tr.flow_id for tr in transfers], dtype=np.int64)
        self.transfer_log.extend(
            (t, int(s), int(d), int(b), int(fl), tr.tag)
            for t, s, d, b, fl, tr in zip(
                t_arr.tolist(), src.tolist(), dst.tolist(), nb.tolist(),
                flow.tolist(), transfers,
            )
        )
        self.recorder.record_batch(
            t_arr, src, np.full(n, INJECTED, dtype=np.int64),
            np.ones(n, dtype=np.int64), flow, np.zeros(n, dtype=np.float64),
        )
        # Mirror packetize() arithmetic: full trains carry
        # ``train_packets * MTU`` bytes, the last train the exact integer
        # remainder (< 2**53, so the reference's float subtractions are
        # exact and this integer math reproduces them bit-for-bit).
        tp = self.train_packets
        total = np.maximum(1, -(-nb // MTU_BYTES))
        k_arr = -(-total // tp)
        K = int(k_arr.sum())
        bounds = np.concatenate(([0], np.cumsum(k_arr)))
        seg0 = bounds[:-1]
        tidx = np.repeat(np.arange(n), k_arr)
        j = np.arange(K) - seg0[tidx]
        is_last = j == k_arr[tidx] - 1
        counts = np.full(K, tp, dtype=np.int64)
        counts[is_last] = total - (k_arr - 1) * tp
        tnb = np.full(K, float(tp * MTU_BYTES), dtype=np.float64)
        tnb[is_last] = (nb - (k_arr - 1) * (tp * MTU_BYTES)).astype(
            np.float64
        )
        # Source pacing at the access link: offsets accumulate one
        # full-train tx per round, elementwise across transfers — the same
        # float addition chain as the per-transfer loop.
        txf = float(tp * MTU_BYTES) * 8.0 / bw
        ev_times = np.empty(K, dtype=np.float64)
        ev_times[seg0] = t_arr
        run = np.zeros(n, dtype=np.float64)
        for r in range(1, int(k_arr.max())):
            act = np.nonzero(k_arr > r)[0]
            run[act] = run[act] + txf[act]
            ev_times[seg0[act] + r] = t_arr[act] + run[act]
        base = self._seq
        self._seq = base + K
        self.calendar.push_batch(EventBatch(
            time=ev_times,
            seq=np.arange(base, base + K, dtype=np.int64),
            node=src[tidx],
            dst=dst[tidx],
            count=counts,
            nbytes=tnb,
            flow=flow[tidx],
            last=is_last,
            hook=np.zeros(K, dtype=bool),
            train=np.full(K, -1, dtype=np.int64),
        ))

    # ------------------------------------------------------------------ #
    # Batched dispatch
    # ------------------------------------------------------------------ #
    def _dispatch(self, batch: EventBatch, start: int, end: int) -> None:
        """Execute events ``batch[start:end]`` (already in (time, seq)
        order, no control event or delivery hook strictly inside)."""
        self._events += end - start
        if self._ordered:
            self._dispatch_ordered(batch, start, end)
            return
        seg = batch.take(slice(start, end))
        next_col, span_col, succ_pos, succ_time = self._process_segment(seg)
        self.recorder.record_batch(
            seg.time, seg.node, next_col, seg.count, seg.flow, span_col
        )
        for observe in self.segment_observers:
            observe(seg, next_col)
        s = len(succ_pos)
        if s:
            base = self._seq
            self._seq = base + s
            # Staged, not pushed: successors always land beyond the window
            # being drained (succ_time > event time + lookahead), so they
            # can be batched into one calendar push per window — see
            # :meth:`_flush_staged`.
            self._staged.append(EventBatch(
                time=succ_time,
                seq=np.arange(base, base + s, dtype=np.int64),
                node=next_col[succ_pos],
                dst=seg.dst[succ_pos],
                count=seg.count[succ_pos],
                nbytes=seg.nbytes[succ_pos],
                flow=seg.flow[succ_pos],
                last=seg.last[succ_pos],
                hook=seg.hook[succ_pos],
                train=seg.train[succ_pos],
            ))

    def _process_segment(self, seg: EventBatch):
        """Run one segment through the (single, whole-network) LP shard."""
        res = self._shard.process(
            seg.time, seg.node, seg.dst, seg.count, seg.nbytes, seg.last
        )
        self._absorb(res)
        return res.next, res.span, res.succ_pos, res.succ_time

    def _absorb(self, res) -> None:
        """Fold one shard result's counter deltas into the kernel stats."""
        st = self.stats
        st.packets_delivered += res.packets_delivered
        st.transfers_delivered += res.transfers_delivered
        st.trains_forwarded += res.trains_forwarded
        st.trains_dropped += res.trains_dropped
        st.vector_events += res.vector_events
        st.python_loop_events += res.python_loop_events
        if res.trains_dropped and self.queue_disc is not None:
            self.queue_disc.drops += res.trains_dropped

    def _dispatch_ordered(self, batch: EventBatch, start: int, end: int) -> None:
        """Per-event fallback replicating the reference kernel's
        ``_arrive`` exactly (RED admission / NetFlow collection are coupled
        to arrival order across the whole network)."""
        rec = self.recorder
        st = self.stats
        s_idx: list[int] = []
        s_nxt: list[int] = []
        s_time: list[float] = []
        s_seq: list[int] = []
        for i in range(start, end):
            time = float(batch.time[i])
            node = int(batch.node[i])
            dst = int(batch.dst[i])
            count = int(batch.count[i])
            flow = int(batch.flow[i])
            if node == dst:
                rec.record(time, node, DELIVERED, count, flow)
                st.packets_delivered += count
                if batch.last[i]:
                    st.transfers_delivered += 1
                continue
            nbytes = float(batch.nbytes[i])
            nxt = self.tables.hop(node, dst)
            if nxt < 0:
                raise RuntimeError(f"no route from {node} to {dst}")
            link = self.tables.link_between(node, nxt)
            direction = 0 if node == link.u else 1
            backlog = self._busy[link.link_id, direction] - time
            if self.queue_disc is not None and not self.queue_disc.admit(
                link.link_id, direction, max(backlog, 0.0)
            ):
                # Dropped: record the processing work, forward nothing.
                rec.record(time, node, DELIVERED, count, flow)
                st.trains_dropped += 1
                continue
            rec.record(
                time, node, nxt, count, flow, span=link.tx_time(nbytes)
            )
            st.trains_forwarded += 1
            if self._is_router[node] and self.collector is not None:
                self.collector.record(
                    time, node, link.link_id, self._trains[int(batch.train[i])]
                )
            tx = link.tx_time(nbytes)
            depart = max(time, self._busy[link.link_id, direction]) + tx
            self._busy[link.link_id, direction] = depart
            self.link_packets[link.link_id] += count
            self.link_bytes[link.link_id] += nbytes
            self.link_busy_s[link.link_id] += tx
            if backlog > self.link_max_backlog_s[link.link_id]:
                self.link_max_backlog_s[link.link_id] = backlog
            s_idx.append(i)
            s_nxt.append(nxt)
            s_time.append(depart + link.latency_s)
            s_seq.append(self._next_seq())
        st.python_loop_events += end - start
        if s_idx:
            sel = np.asarray(s_idx, dtype=np.int64)
            self._staged.append(EventBatch(
                time=np.asarray(s_time, dtype=np.float64),
                seq=np.asarray(s_seq, dtype=np.int64),
                node=np.asarray(s_nxt, dtype=np.int64),
                dst=batch.dst[sel],
                count=batch.count[sel],
                nbytes=batch.nbytes[sel],
                flow=batch.flow[sel],
                last=batch.last[sel],
                hook=batch.hook[sel],
                train=batch.train[sel],
            ))

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def _run_control(self) -> None:
        time, _, callback, args = heapq.heappop(self._ctrl)
        self.now = time
        self.stats.control_events += 1
        self._events += 1
        callback(self, time, *args)

    def _run_hook(self, batch: EventBatch, i: int) -> None:
        """Fire the delivery hook of the (already executed) event ``i``."""
        train = self._trains[int(batch.train[i])]
        hook = train.transfer.on_delivery
        if hook is not None:
            hook(self, float(batch.time[i]), train.transfer)
        self.stats.hook_cuts += 1

    def _merge_into_window(self, bucket: int, batch: EventBatch,
                           pos: int) -> tuple[EventBatch, int, np.ndarray]:
        """Splice freshly injected same-bucket events into the remainder.

        Everything pushed since the bucket was popped carries a larger seq
        than anything in ``batch`` (the sequence counter is monotonic), so
        :func:`~repro.engine.eventq.merge_newer` reproduces the exact
        (time, seq) order a full re-sort would — without re-pushing and
        re-sorting the remainder.  Returns the merged batch, its horizon
        cut, and its hook-cut mask; the caller restarts its scan at 0.
        """
        injected = self.calendar.pop_bucket(bucket)
        merged = merge_newer(batch.take(slice(pos, len(batch))), injected)
        self.stats.window_merges += 1
        h_end = int(np.searchsorted(merged.time, self._end_time,
                                    side="right"))
        cut_mask = merged.hook & merged.last & (merged.node == merged.dst)
        return merged, h_end, cut_mask

    def _process_window(self, bucket: int, batch: EventBatch,
                        end: float) -> bool:
        """Drain one popped window; returns False when the horizon ends
        the whole run."""
        n = len(batch)
        h_end = int(np.searchsorted(batch.time, end, side="right"))
        # Deliveries of a hooked transfer's last train cut the segment.
        cut_mask = batch.hook & batch.last & (batch.node == batch.dst)
        pos = 0
        while pos < n:
            ctrl_key = (
                (self._ctrl[0][0], self._ctrl[0][1]) if self._ctrl else None
            )
            if ctrl_key is not None and ctrl_key < (
                float(batch.time[pos]), int(batch.seq[pos])
            ):
                if ctrl_key[0] > end:
                    return False
                self._run_control()
                mb = self.calendar.min_bucket()
                if mb is not None and mb < bucket:
                    # The callback injected events into an EARLIER window
                    # (possible when this bucket's predecessors were
                    # empty): hand the remainder back so the outer loop
                    # pops buckets in order.
                    self.calendar.push_batch(batch.take(slice(pos, n)))
                    self.stats.window_merges += 1
                    return True
                if mb == bucket:
                    # The callback injected events into this very window.
                    batch, h_end, cut_mask = self._merge_into_window(
                        bucket, batch, pos
                    )
                    n = len(batch)
                    pos = 0
                continue
            if pos >= h_end:
                return False
            seg_end = h_end if ctrl_key is None else min(
                h_end, cut_before(batch.time, batch.seq, pos, ctrl_key)
            )
            hook_at = first_true(cut_mask, pos, seg_end)
            if hook_at >= 0:
                seg_end = hook_at + 1
            self._dispatch(batch, pos, seg_end)
            self.now = float(batch.time[seg_end - 1])
            self.stats.segments += 1
            pos = seg_end
            if hook_at >= 0:
                self._run_hook(batch, hook_at)
                if pos < n and self.calendar.has_bucket(bucket):
                    batch, h_end, cut_mask = self._merge_into_window(
                        bucket, batch, pos
                    )
                    n = len(batch)
                    pos = 0
        return True

    def _flush_staged(self) -> None:
        """Push the window's staged successor batches in one calendar op.

        Successors land strictly beyond the window that produced them
        (``depart + latency > t + lookahead``), so deferring their push to
        the window boundary changes nothing the drain loop can observe —
        it only collapses per-segment pushes into one, keeping calendar
        buckets coarse-grained.
        """
        if not self._staged:
            return
        staged = self._staged
        self._staged = []
        self.calendar.push_batch(
            staged[0] if len(staged) == 1 else EventBatch.concatenate(staged)
        )

    def _drain(self, end: float) -> None:
        while True:
            bucket = self.calendar.min_bucket()
            if bucket is None:
                # Calendar empty: control events alone drive time forward
                # (each may inject new train events, re-entering the loop).
                if not self._ctrl or self._ctrl[0][0] > end:
                    return
                self._run_control()
                continue
            # Pop first, order later: control events preceding this
            # window's trains are run (and merged) by _process_window,
            # which compares keys event by event.
            batch = self.calendar.pop_bucket(bucket)
            self.stats.windows += 1
            done = not self._process_window(bucket, batch, end)
            self._flush_staged()
            if done:
                return
            for hook in self.barrier_hooks:
                hook(self.now)

    def _finalize_run(self) -> None:
        """Post-drain hook (the LP engine gathers shard partials here)."""

    def run(self, until: float) -> EventTrace:
        """Process events up to virtual time ``until`` and freeze the trace.

        Events scheduled beyond ``until`` are discarded (the emulation has a
        fixed horizon, like the paper's fixed-duration application runs).
        """
        if until <= 0:
            raise ValueError("horizon must be positive")
        self._end_time = float(until)
        with self.telemetry.span("kernel/run"):
            self._drain(self._end_time)
        self._finalize_run()
        tel = self.telemetry
        if tel.enabled:
            tel.count("kernel.events", self._events)
            tel.count("kernel.trains_forwarded", self.stats.trains_forwarded)
            tel.count("kernel.trains_dropped", self.stats.trains_dropped)
            tel.count("kernel.packets_delivered",
                      self.stats.packets_delivered)
            tel.count("kernel.transfers", self.stats.transfers_submitted)
            tel.count("kernel.windows", self.stats.windows)
            tel.count("kernel.segments", self.stats.segments)
            tel.count("kernel.vector_events", self.stats.vector_events)
            tel.count("kernel.python_loop_events",
                      self.stats.python_loop_events)
            tel.gauge("kernel.horizon_s", self._end_time)
            if self.net.n_links:
                tel.gauge("kernel.max_backlog_s",
                          float(self.link_max_backlog_s.max()))
        return self.recorder.finish(self._end_time)

    @property
    def events_processed(self) -> int:
        return self._events

    def link_utilization(self, duration: float | None = None) -> np.ndarray:
        """Per-link busy fraction over the run (both directions pooled).

        ``duration`` defaults to the run horizon; utilization can exceed
        1.0 on links whose two directions were both saturated.
        """
        horizon = duration if duration is not None else self._end_time
        if not np.isfinite(horizon) or horizon <= 0:
            raise ValueError(
                f"cannot compute link utilization over horizon {horizon!r}: "
                f"this EmulationKernel has not completed a run() (its end "
                f"time is still unset) — call run(until=...) first or pass "
                f"an explicit positive duration"
            )
        return self.link_busy_s / horizon


def run_kernel(
    net: Network,
    tables: RoutingTables,
    workload,
    *,
    seed: int = 0,
    until: float | None = None,
    train_packets: int = 32,
    queue=None,
    queue_limit_s: float | None = None,
    collector=None,
    telemetry=None,
    engine: str = "sequential",
    parts=None,
    processes: bool = True,
    rebalance=None,
    link_changes=None,
    cache=None,
) -> tuple[EventTrace, EmulationKernel]:
    """Run one workload through a batched kernel — the production side of
    the engine parity pair (:func:`repro.engine._reference.run_kernel_reference`
    is the oracle).

    ``workload`` is anything with ``install(kernel, rng)`` (and a
    ``duration`` attribute used when ``until`` is omitted).  Flow ids are
    reset first so two runs of the same (seed, workload) are comparable
    train by train.  ``engine="parallel"`` shards the run across one
    logical process per partition in ``parts`` (see
    :class:`repro.engine.lp.ParallelEmulationKernel`; ``processes=False``
    keeps the shards in-process for testing).  ``rebalance`` attaches an
    online rebalancer to the parallel engine — a policy name, a
    :class:`repro.rebalance.RebalanceConfig`, or a prebuilt
    :class:`repro.rebalance.OnlineRebalancer`; the resulting
    :class:`~repro.rebalance.log.MigrationLog` is available as
    ``kernel.rebalancer.log``.

    ``link_changes`` schedules mid-run :class:`repro.routing.delta.SetLinkCost`
    batches as ``(time, changes)`` pairs (see
    :func:`repro.engine.changes.install_link_changes`): routing tables are
    repaired incrementally at the first window barrier past each time.
    With forked LP workers (``engine='parallel'``, ``processes=True``) the
    routing/link arrays are rehomed into a
    :class:`repro.runtime.shm.ShmArena` so the in-place repairs reach the
    workers through the shared mapping.
    """
    if rebalance is not None and engine != "parallel":
        raise ValueError(
            "rebalance= requires engine='parallel': the online rebalancer "
            "migrates routers between logical processes, which the "
            "sequential engine does not have"
        )
    reset_flow_ids()
    arena = None
    state = None
    if link_changes is not None:
        from repro.routing.delta import routing_state

        if engine == "parallel" and processes:
            from repro.runtime.shm import ShmArena

            arena = ShmArena()
        # The kernel must be built on the very tables the delta engine
        # splices; routing_state copies, so rebind before construction.
        state = routing_state(tables, arena=arena)
        tables = state.tables
    try:
        if engine == "sequential":
            kernel = EmulationKernel(
                net, tables, train_packets=train_packets,
                collector=collector, queue_limit_s=queue_limit_s,
                queue=queue, telemetry=telemetry, arena=arena,
            )
        elif engine == "parallel":
            from repro.engine.lp import ParallelEmulationKernel

            if parts is None:
                raise ValueError(
                    "engine='parallel' needs a parts array (one partition "
                    "id per node); build one with repro.partition.Mapper "
                    "or call repro.api.emulate(engine='parallel', k=...) "
                    "which derives it for you"
                )
            kernel = ParallelEmulationKernel(
                net, tables, parts=parts, processes=processes,
                train_packets=train_packets, collector=collector,
                queue_limit_s=queue_limit_s, queue=queue,
                telemetry=telemetry, arena=arena,
            )
            if rebalance is not None:
                from repro.rebalance import attach_rebalancer

                attach_rebalancer(kernel, rebalance)
        else:
            raise ValueError(
                f"unknown engine {engine!r}; choose 'sequential' or "
                f"'parallel'"
            )
    except BaseException:
        if arena is not None:
            arena.close()
        raise
    try:
        if link_changes is not None:
            from repro.engine.changes import install_link_changes

            install_link_changes(kernel, state, link_changes, cache=cache)
        workload.install(kernel, np.random.default_rng(seed))
        horizon = float(until if until is not None else workload.duration)
        trace = kernel.run(until=horizon)
    finally:
        close = getattr(kernel, "close", None)
        if close is not None:
            close()
        if arena is not None:
            from repro.engine.changes import privatize_shared

            privatize_shared(kernel)
            arena.close()
    return trace, kernel
