"""repro — reproduction of *Traffic-based Load Balance for Scalable Network
Emulation* (Xin Liu and Andrew A. Chien, SC 2003).

The package implements, from scratch:

- :mod:`repro.partition` — a multilevel, multi-constraint graph partitioning
  substrate standing in for METIS, plus the baseline partitioners the paper
  discusses (random, hierarchical/linear, greedy k-cluster, spectral).
- :mod:`repro.topology` — the emulated-network model and the three topology
  families of the paper (Campus, TeraGrid, BRITE-like).
- :mod:`repro.routing` — shortest-path routing tables, the routing-table
  memory model, and an ICMP/traceroute implementation used by PLACE.
- :mod:`repro.engine` — a conservative parallel discrete-event network
  emulator (the MaSSF stand-in) with a wall-clock cost model.
- :mod:`repro.traffic` — HTTP/CBR/Poisson background generators and the
  ScaLapack / GridNPB foreground application traffic models.
- :mod:`repro.profiling` — NetFlow-like per-router flow profiling with dump
  files, used by PROFILE.
- :mod:`repro.replay` — trace recording and causality-preserving replay
  ("network emulation time in isolation").
- :mod:`repro.core` — the paper's contribution: the TOP / PLACE / PROFILE
  mapping approaches, the multi-objective weight combination of §2.3 and the
  profile segment clustering of §3.3.
- :mod:`repro.experiments` — end-to-end experiment harness regenerating every
  table and figure of the evaluation section.

Quickstart::

    from repro.experiments.setups import campus_setup
    from repro.experiments.runner import evaluate_setup

    results = evaluate_setup(campus_setup("scalapack"), seed=1)
    for name, ev in results.items():
        print(name, ev.outcome.load_imbalance)

See ``examples/quickstart.py`` for a complete runnable walk-through.
"""

from repro._version import __version__

__all__ = ["__version__"]
