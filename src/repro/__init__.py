"""repro — reproduction of *Traffic-based Load Balance for Scalable Network
Emulation* (Xin Liu and Andrew A. Chien, SC 2003).

The package implements, from scratch:

- :mod:`repro.partition` — a multilevel, multi-constraint graph partitioning
  substrate standing in for METIS, plus the baseline partitioners the paper
  discusses (random, hierarchical/linear, greedy k-cluster, spectral).
- :mod:`repro.topology` — the emulated-network model and the three topology
  families of the paper (Campus, TeraGrid, BRITE-like).
- :mod:`repro.routing` — shortest-path routing tables, the routing-table
  memory model, and an ICMP/traceroute implementation used by PLACE.
- :mod:`repro.engine` — a conservative parallel discrete-event network
  emulator (the MaSSF stand-in) with a wall-clock cost model.
- :mod:`repro.traffic` — HTTP/CBR/Poisson background generators and the
  ScaLapack / GridNPB foreground application traffic models.
- :mod:`repro.profiling` — NetFlow-like per-router flow profiling with dump
  files, used by PROFILE.
- :mod:`repro.replay` — trace recording and causality-preserving replay
  ("network emulation time in isolation").
- :mod:`repro.core` — the paper's contribution: the TOP / PLACE / PROFILE
  mapping approaches, the multi-objective weight combination of §2.3 and the
  profile segment clustering of §3.3.
- :mod:`repro.experiments` — end-to-end experiment harness regenerating every
  table and figure of the evaluation section.

- :mod:`repro.runtime` — the parallel experiment runtime: a process-pool
  grid executor and a content-addressed artifact cache.
- :mod:`repro.obs` — structured runtime telemetry (spans / counters /
  load timelines) threaded through the whole pipeline, with JSON/CSV
  export and the ``massf stats`` report.
- :mod:`repro.api` — the facade re-exported here: :func:`load_topology`,
  :func:`build_mapping`, :func:`emulate`, :func:`run_experiment`,
  :func:`sweep`.

Quickstart::

    import repro

    results = repro.run_experiment("campus", seed=1)
    for name, ev in results.items():
        print(name, ev.outcome.load_imbalance)

See ``examples/quickstart.py`` for a complete runnable walk-through.
"""

from repro._version import __version__

__all__ = [
    "__version__",
    "load_topology",
    "build_mapping",
    "emulate",
    "EmulationResult",
    "apply_changes",
    "run_experiment",
    "sweep",
    "Telemetry",
]

_API_NAMES = ("load_topology", "build_mapping", "emulate",
              "EmulationResult", "apply_changes", "run_experiment", "sweep")


def __getattr__(name):
    # PEP 562 lazy re-export: keeps `import repro` light while making the
    # facade available as repro.run_experiment(...) etc.
    if name in _API_NAMES:
        import repro.api as _api

        return getattr(_api, name)
    if name == "Telemetry":
        from repro.obs import Telemetry

        return Telemetry
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_API_NAMES) | {"Telemetry"})
