"""The ``repro.api`` facade: the whole pipeline in five calls.

Quickstart::

    import repro

    net = repro.load_topology("campus")
    results = repro.run_experiment("campus", seed=1)
    stats = repro.sweep("campus", seeds=(1, 2, 3, 4), workers=4)
    run = repro.emulate("campus", workload=wl, engine="parallel", k=3)

The facade wraps the experiment harness (:mod:`repro.experiments`), the
mapper (:mod:`repro.core`), the emulation engines (:mod:`repro.engine`)
and the parallel runtime (:mod:`repro.runtime`) behind five functions:

- :func:`load_topology` — a built-in topology by name, or a DML file.
- :func:`build_mapping` — one TOP / PLACE / PROFILE mapping.
- :func:`emulate` — one emulation run (sequential or multi-process LP
  engine), returning an :class:`EmulationResult`.
- :func:`run_experiment` — the full profile → map → evaluate pipeline.
- :func:`sweep` — repeat :func:`run_experiment` across seeds, optionally
  fanned out over worker processes with artifact caching.

All are re-exported from the top-level :mod:`repro` package.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable

import numpy as np

__all__ = [
    "load_topology",
    "build_mapping",
    "emulate",
    "EmulationResult",
    "apply_changes",
    "run_experiment",
    "sweep",
    "TOPOLOGIES",
]

#: Built-in topology names accepted by :func:`load_topology`.
TOPOLOGIES = ("campus", "teragrid", "brite", "brite-large")

#: Engine-node counts of the paper's Table 1 (and §4.2.3) setups.
_DEFAULT_K = {"campus": 3, "teragrid": 5, "brite": 8, "brite-large": 20}


def load_topology(source: str, **kwargs):
    """Build a virtual network.

    Parameters
    ----------
    source:
        A built-in topology name (:data:`TOPOLOGIES`, case-insensitive) or
        a path to a DML network description file.
    kwargs:
        Extra factory arguments (e.g. ``seed=...`` / ``n_routers=...`` for
        the BRITE-like generators).  Rejected for DML files.

    Returns
    -------
    repro.topology.network.Network
    """
    from repro.topology.brite import brite_network
    from repro.topology.campus import campus_network
    from repro.topology.teragrid import teragrid_network

    name = str(source).strip().lower()
    factories: dict[str, Callable] = {
        "campus": campus_network,
        "teragrid": teragrid_network,
        "brite": lambda **kw: brite_network(
            **{"n_routers": 160, "n_hosts": 132, **kw}
        ),
        "brite-large": lambda **kw: brite_network(
            **{"n_routers": 200, "n_hosts": 364, **kw}
        ),
    }
    if name in factories:
        return factories[name](**kwargs)
    if os.path.exists(source):
        if kwargs:
            raise TypeError(
                "keyword arguments are not accepted when loading a DML "
                f"file ({sorted(kwargs)})"
            )
        from repro.topology import dml

        return dml.load(source)
    raise ValueError(
        f"unknown topology {source!r}: not one of {', '.join(TOPOLOGIES)} "
        "and not an existing DML file"
    )


def build_mapping(
    net,
    k: int,
    approach: str = "top",
    *,
    workload=None,
    profile=None,
    tables=None,
    config=None,
    runner_config=None,
    seed: int = 0,
    cache=None,
):
    """Build one node → engine-node mapping.

    Parameters
    ----------
    net, k:
        The virtual network and the engine-node count.
    approach:
        ``"top"`` (topology only), ``"place"`` (needs ``workload`` for its
        traffic predictions), or ``"profile"`` (needs ``profile`` data, or
        a ``workload`` to run the profiling emulation with).
    workload:
        A :class:`repro.experiments.workloads.Workload`; prepared here if
        its populations are not fixed yet.
    profile:
        Pre-aggregated :class:`repro.profiling.aggregate.ProfileData`; when
        omitted for PROFILE, a profiling emulation runs under the TOP
        partition (the paper's initial experiment).
    tables, config, runner_config, seed, cache:
        Routing tables (built on demand), a
        :class:`repro.core.mapper.MapperConfig`, the
        :class:`repro.experiments.runner.RunnerConfig` for the profiling
        emulation, the seed for preparation/profiling, and an optional
        artifact cache.

    Returns
    -------
    repro.core.mapper.MappingResult
    """
    from repro.core.mapper import Mapper
    from repro.experiments.runner import (
        PROFILE_SEED_OFFSET,
        RunnerConfig,
        run_emulation,
    )
    from repro.routing.spf import build_routing
    from repro.runtime.cache import resolve_cache

    cache = resolve_cache(cache)
    approach = str(approach).strip().lower()
    if approach not in ("top", "place", "profile"):
        raise ValueError(
            f"unknown approach {approach!r}; choose from top, place, "
            "profile"
        )
    if tables is None:
        tables = build_routing(net, cache=cache)
    mapper = Mapper(net, n_parts=k, tables=tables, config=config)
    if workload is not None:
        workload.prepare(net, np.random.default_rng(seed))
    if approach == "top":
        return mapper.map_top()
    if approach == "place":
        if workload is None:
            raise ValueError("PLACE needs a workload (traffic predictions)")
        return mapper.map_place(workload.background, workload.apps)
    if profile is None:
        if workload is None:
            raise ValueError(
                "PROFILE needs profile data or a workload to profile"
            )
        run = run_emulation(
            net, tables, workload, seed + PROFILE_SEED_OFFSET,
            config=runner_config or RunnerConfig(), collect_netflow=True,
            cache=cache,
        )
        profile = run.profile
    return mapper.map_profile(
        profile, initial_parts=mapper.map_top().parts
    )


@dataclass
class EmulationResult:
    """Everything one :func:`emulate` call produced.

    Attributes
    ----------
    trace:
        The :class:`~repro.engine.trace.EventTrace` (bit-identical across
        engines for the same seed and workload).
    stats:
        The kernel's :class:`~repro.engine.perf.KernelStats` operation
        counters.
    engine:
        ``"sequential"`` or ``"parallel"``.
    wall_s:
        Wall-clock seconds spent inside the kernel run.
    link_packets, link_bytes, link_busy_s, link_max_backlog_s:
        Per-link accounting arrays (indexed by link id).
    transfer_log:
        ``(time, src, dst, nbytes, flow, tag)`` tuples, submission order.
    lp_events:
        Train events dispatched per logical process (parallel engine
        only; ``None`` for sequential runs).
    migration_log:
        The online rebalancer's
        :class:`~repro.rebalance.log.MigrationLog` (``None`` unless the
        run was started with ``rebalance=``).
    link_change_log:
        ``(time, n_changes, n_touched)`` per mid-run change batch applied
        (empty unless the run was started with ``link_changes=``).
    final_tables:
        The routing tables as repaired by the last mid-run change
        (``None`` unless ``link_changes=`` was given; the tables passed
        in are never mutated — the kernel runs on a private copy).
    """

    trace: "object"
    stats: "object"
    engine: str
    wall_s: float
    link_packets: np.ndarray
    link_bytes: np.ndarray
    link_busy_s: np.ndarray
    link_max_backlog_s: np.ndarray
    transfer_log: list = field(default_factory=list)
    lp_events: np.ndarray | None = None
    migration_log: "object | None" = None
    link_change_log: list = field(default_factory=list)
    final_tables: "object | None" = None

    @property
    def events_per_second(self) -> float:
        """Trace events executed per wall-clock second."""
        if self.wall_s <= 0:
            return float("inf")
        return self.trace.n_events / self.wall_s

    @property
    def lp_imbalance(self) -> float:
        """Max/mean ratio of per-LP event counts (1.0 when sequential)."""
        if self.lp_events is None or not len(self.lp_events):
            return 1.0
        mean = float(self.lp_events.mean())
        if mean == 0:
            return 1.0
        return float(self.lp_events.max()) / mean


def emulate(
    net,
    tables=None,
    workload=None,
    *,
    until: float | None = None,
    engine: str = "sequential",
    k: int | None = None,
    parts=None,
    train_packets: int = 32,
    seed: int = 0,
    telemetry=None,
    cache=None,
    rebalance=None,
    link_changes=None,
    processes: bool = True,
) -> EmulationResult:
    """Run one emulation and return its artifacts — the engine-level
    sibling of :func:`run_experiment` (which scores mappings; this just
    emulates).

    Parameters
    ----------
    net:
        A built-in topology name (:data:`TOPOLOGIES`), a DML path, or a
        prebuilt :class:`~repro.topology.network.Network`.
    tables:
        Routing tables; built on demand (cache-aware) when omitted.
    workload:
        Anything with ``install(kernel, rng)`` and a ``duration``
        attribute — e.g. a :class:`repro.experiments.workloads.Workload`
        (its ``prepare`` hook runs first when present).
    until:
        Virtual horizon (defaults to ``workload.duration``).
    engine:
        ``"sequential"`` (batched single-process kernel) or
        ``"parallel"`` (one logical process per partition).  Traces are
        bit-identical either way.
    k, parts:
        Sharding for the parallel engine: an explicit per-node partition
        array, or an engine-node count ``k`` from which a TOP partition
        is derived via :func:`build_mapping`.  Ignored when sequential.
    train_packets, seed:
        Fidelity knob and the workload RNG seed.
    telemetry, cache:
        Optional :class:`repro.obs.Telemetry` and artifact-cache spec
        (used for routing tables and the derived partition).
    rebalance:
        Attach an online rebalancer (parallel engine only): ``True``, a
        policy name (``static`` / ``hysteresis`` / ``kurve`` / ``rsz``),
        a :class:`repro.rebalance.RebalanceConfig`, or a prebuilt
        :class:`repro.rebalance.OnlineRebalancer`.  The run's
        :class:`~repro.rebalance.log.MigrationLog` lands on
        ``result.migration_log``.
    link_changes:
        Mid-run link-cost schedule: ``(time, SetLinkCost-or-list)``
        pairs, applied at window barriers through the incremental
        routing engine (see :func:`repro.engine.changes.install_link_changes`).
        The batches applied land on ``result.link_change_log`` and the
        repaired tables on ``result.final_tables``.
    processes:
        Parallel engine only: ``False`` keeps every logical process
        in-process (same results, no forked workers).

    Returns
    -------
    EmulationResult
    """
    from repro.engine.kernel import run_kernel
    from repro.routing.spf import build_routing
    from repro.runtime.cache import resolve_cache
    from repro.topology.network import Network

    if workload is None:
        raise TypeError("emulate() needs a workload (install + duration)")
    if engine not in ("sequential", "parallel"):
        raise ValueError(
            f"unknown engine {engine!r}; choose 'sequential' or 'parallel'"
        )
    cache = resolve_cache(cache)
    if not isinstance(net, Network):
        net = load_topology(net)
    if tables is None:
        tables = build_routing(net, cache=cache)
    if engine == "parallel" and parts is None:
        if k is None:
            raise ValueError(
                "engine='parallel' needs parts= (a per-node partition "
                "array) or k= (an engine-node count to derive a TOP "
                "partition from)"
            )
        parts = build_mapping(
            net, k, "top", tables=tables, cache=cache
        ).parts
    prepare = getattr(workload, "prepare", None)
    if prepare is not None:
        prepare(net, np.random.default_rng(seed))
    start = time.perf_counter()
    trace, kernel = run_kernel(
        net, tables, workload, seed=seed, until=until,
        train_packets=train_packets, telemetry=telemetry, engine=engine,
        parts=parts, processes=processes, rebalance=rebalance,
        link_changes=link_changes, cache=cache,
    )
    wall = time.perf_counter() - start
    rebalancer = getattr(kernel, "rebalancer", None)
    return EmulationResult(
        trace=trace,
        stats=kernel.stats,
        engine=engine,
        wall_s=wall,
        link_packets=kernel.link_packets,
        link_bytes=kernel.link_bytes,
        link_busy_s=kernel.link_busy_s,
        link_max_backlog_s=kernel.link_max_backlog_s,
        transfer_log=list(kernel.transfer_log),
        lp_events=getattr(kernel, "lp_events", None),
        migration_log=rebalancer.log if rebalancer is not None else None,
        link_change_log=list(getattr(kernel, "link_change_log", ())),
        final_tables=kernel.tables if link_changes is not None else None,
    )


def apply_changes(
    net,
    tables,
    changes,
    *,
    workers: int = 0,
    cache=None,
    telemetry=None,
):
    """Apply topology changes and incrementally repair routing tables.

    The facade over :func:`repro.routing.delta.update_routing` for
    one-shot use: ``net`` is mutated in place (link costs, up/down state,
    added links), ``tables`` is **not** — the repaired tables are a
    private copy, bit-identical to a from-scratch
    :func:`~repro.routing.spf.build_routing` on the mutated network.

    Parameters
    ----------
    net, tables:
        The network to mutate and the routing tables built on it.
    changes:
        An iterable of :class:`repro.routing.delta.SetLinkCost` /
        :class:`~repro.routing.delta.LinkUp` /
        :class:`~repro.routing.delta.LinkDown` /
        :class:`~repro.routing.delta.AddLink`.
    workers:
        Process the recomputed source blocks in parallel (``0`` = serial).
    cache, telemetry:
        Optional artifact-cache spec and telemetry sink.

    Returns
    -------
    (RoutingTables, ndarray)
        The repaired tables and the (sorted) recomputed source ids.
        For repeated change streams keep a
        :class:`repro.routing.delta.RoutingState` and call
        :func:`~repro.routing.delta.update_routing` directly instead of
        paying the wrap cost per call.
    """
    from repro.routing.delta import routing_state, update_routing
    from repro.runtime.cache import resolve_cache

    if tables.net is not net:
        raise ValueError("routing tables were built for another network")
    state = routing_state(tables)
    touched = update_routing(
        state, changes, workers=workers, cache=resolve_cache(cache),
        telemetry=telemetry,
    )
    return state.tables, touched


def _identity(net):
    """Picklable network "factory" for prebuilt networks."""
    return net


def _as_setup(topology, *, app, intensity, duration, k, workload_kwargs):
    """Normalize ``topology`` into an ExperimentSetup."""
    from repro.experiments.setups import (
        ExperimentSetup,
        brite_setup,
        campus_setup,
        large_brite_setup,
        teragrid_setup,
    )
    from repro.topology.network import Network

    if isinstance(topology, ExperimentSetup):
        return topology
    kwargs = dict(workload_kwargs=dict(workload_kwargs or {}))
    if intensity is not None:
        kwargs["intensity"] = intensity
    if duration is not None:
        kwargs.setdefault("workload_kwargs", {})["duration"] = duration
    if isinstance(topology, Network):
        if k is None:
            raise ValueError("k is required with a prebuilt Network")
        net = topology
        # partial keeps the setup picklable for the parallel runtime (the
        # network ships by value to the workers).
        setup = ExperimentSetup(
            name=net.name, network_factory=partial(_identity, net),
            n_engine_nodes=k, app_name=app, **kwargs,
        )
        setup._network = net
        return setup
    name = str(topology).strip().lower()
    factories = {
        "campus": campus_setup,
        "teragrid": teragrid_setup,
        "brite": brite_setup,
        "brite-large": large_brite_setup,
    }
    if name not in factories:
        raise ValueError(
            f"unknown topology {topology!r}; choose from "
            f"{', '.join(TOPOLOGIES)} or pass a Network / ExperimentSetup"
        )
    setup = factories[name](app, **kwargs)
    if k is not None:
        setup.n_engine_nodes = k
    return setup


def run_experiment(
    topology,
    *,
    app: str = "scalapack",
    k: int | None = None,
    approaches: tuple[str, ...] = ("top", "place", "profile"),
    seed: int = 1,
    intensity: str | None = None,
    duration: float | None = None,
    workload_kwargs=None,
    config=None,
    engine: str | None = None,
    cache=None,
    telemetry=None,
):
    """Run the full profile → map → evaluate pipeline once.

    Parameters
    ----------
    topology:
        A built-in name (:data:`TOPOLOGIES`), a prebuilt
        :class:`~repro.topology.network.Network` (requires ``k``), or an
        :class:`~repro.experiments.setups.ExperimentSetup`.
    app, intensity, duration, workload_kwargs:
        Workload selection (ignored when an ExperimentSetup is given,
        except that they default from it).
    k:
        Engine-node count override (defaults to the setup's Table 1 value).
    approaches, seed, config:
        Forwarded to :func:`repro.experiments.runner.evaluate_setup`.
    engine:
        Execution engine for the evaluation emulation — ``"sequential"``
        or ``"parallel"`` (bit-identical traces; see :func:`emulate`).
        Overrides ``config.engine`` when given.
    cache:
        Artifact cache spec — ``True``/``"default"`` for the default disk
        cache, a path, an :class:`~repro.runtime.cache.ArtifactCache`, or
        ``None`` for no caching.
    telemetry:
        Optional :class:`repro.obs.Telemetry` collecting the run's phase
        breakdown, counters and load timelines.

    Returns
    -------
    dict[str, repro.experiments.runner.ApproachEvaluation]
    """
    from repro.experiments.runner import evaluate_setup
    from repro.runtime.cache import resolve_cache

    setup = _as_setup(
        topology, app=app, intensity=intensity, duration=duration, k=k,
        workload_kwargs=workload_kwargs,
    )
    config = _with_engine(config, engine)
    return evaluate_setup(
        setup, approaches=tuple(approaches), seed=seed, config=config,
        cache=resolve_cache(cache), telemetry=telemetry,
    )


def _with_engine(config, engine):
    """Overlay an ``engine=`` override onto a RunnerConfig (or build one)."""
    if engine is None:
        return config
    from dataclasses import replace

    from repro.experiments.runner import RunnerConfig

    return replace(config or RunnerConfig(), engine=engine)


def sweep(
    topology,
    *,
    seeds=(1, 2, 3, 4),
    app: str = "scalapack",
    k: int | None = None,
    approaches: tuple[str, ...] = ("top", "place", "profile"),
    intensity: str | None = None,
    duration: float | None = None,
    workload_kwargs=None,
    config=None,
    engine: str | None = None,
    workers: int | None = None,
    runtime=None,
    cache=None,
    progress=None,
    telemetry=None,
):
    """Sweep :func:`run_experiment` across seeds.

    By default the (seed × approach) grid fans out over worker processes
    (auto-sized to the machine) through :func:`repro.runtime.executor.run_grid`
    with deterministic per-cell seeding — results are bit-for-bit identical
    to the serial path.  ``workers=0`` forces in-process serial execution.

    Parameters
    ----------
    engine:
        Execution engine for the evaluation emulations (see
        :func:`run_experiment`); overrides ``config.engine``.
    workers:
        Worker process count (``None`` = auto, ``0`` = serial in-process).
        Ignored when an explicit ``runtime``
        (:class:`~repro.runtime.executor.RuntimeConfig`) is given.
    cache:
        Artifact cache spec (see :func:`run_experiment`); a repeated sweep
        with a disk cache reuses routing tables and emulation runs instead
        of re-simulating.
    progress:
        ``progress(cell_result, done, total)`` callback.
    telemetry:
        Optional :class:`repro.obs.Telemetry`.  Collects phase spans,
        executor/cache counters, per-cell records (worker processes
        included) and per-engine-node load timelines; export the snapshot
        with :func:`repro.obs.write_json` or render it with
        :func:`repro.obs.render_report` (``massf stats``).

    Returns
    -------
    repro.experiments.sweep.SweepResult
    """
    from repro.experiments.sweep import sweep_setup
    from repro.runtime.cache import resolve_cache
    from repro.runtime.executor import RuntimeConfig

    setup = _as_setup(
        topology, app=app, intensity=intensity, duration=duration, k=k,
        workload_kwargs=workload_kwargs,
    )
    if runtime is None:
        runtime = RuntimeConfig(workers=workers)
    config = _with_engine(config, engine)
    return sweep_setup(
        setup, seeds=tuple(seeds), approaches=tuple(approaches),
        config=config, runtime=runtime, cache=resolve_cache(cache),
        progress=progress, telemetry=telemetry,
    )
