"""Graph partitioning substrate (METIS stand-in).

The paper maps emulated networks onto engine nodes with METIS.  METIS is not
available in this environment, so this package provides a from-scratch
multilevel k-way partitioner with multi-constraint vertex weights, plus the
baseline partitioners discussed in the paper's related work:

- :func:`repro.partition.api.part_graph` — the facade; ``algorithm=`` selects
  ``"multilevel"`` (default), ``"recursive"``, ``"spectral"``, ``"random"``,
  ``"linear"`` or ``"greedy-kcluster"``.
- :class:`repro.partition.csr.CSRGraph` — the shared graph representation.
- :mod:`repro.partition.metrics` — edge cut / balance diagnostics.
- :class:`repro.partition.perf.RefineStats` — operation counters proving the
  refinement kernels stay incremental (one gain/connectivity-table build per
  call); the pre-optimization kernels live on in
  :mod:`repro.partition._reference` as differential-test oracles.
"""

from repro.partition.api import PartitionResult, part_graph
from repro.partition.csr import CSRGraph
from repro.partition.perf import RefineStats
from repro.partition.metrics import (
    edge_cut,
    max_imbalance,
    part_weights,
    weighted_edge_cut,
)

__all__ = [
    "CSRGraph",
    "PartitionResult",
    "part_graph",
    "edge_cut",
    "weighted_edge_cut",
    "part_weights",
    "max_imbalance",
    "RefineStats",
]
