"""Graph coarsening by heavy-edge matching (HEM).

The multilevel scheme repeatedly contracts a matching of the graph until the
coarsest graph is small enough to partition directly.  Heavy-edge matching
visits vertices in random order and matches each unmatched vertex with the
unmatched neighbour connected by the heaviest edge, which tends to hide heavy
edges inside coarse vertices so they can never be cut.

The per-vertex inner loops (candidate selection, two-hop leaf pairing) and
the whole contraction step run vectorized over the CSR arrays, so one
coarsening level costs O(m) numpy work plus an O(n) python visit loop —
the shape that keeps 10k-router topologies inside the wall-time budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.csr import CSRGraph

__all__ = ["CoarseLevel", "heavy_edge_matching", "contract", "coarsen_level"]

UNMATCHED = -1


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy.

    ``cmap[v]`` gives the coarse-vertex id of fine vertex ``v``; ``coarse``
    is the contracted graph.  Projecting a coarse partition back to the fine
    graph is ``fine_parts = coarse_parts[cmap]``.
    """

    fine: CSRGraph
    coarse: CSRGraph
    cmap: np.ndarray


def heavy_edge_matching(
    graph: CSRGraph, rng: np.random.Generator, two_hop: bool = True
) -> np.ndarray:
    """Compute a heavy-edge matching.

    Returns ``match`` with ``match[v]`` the partner of ``v`` (or ``v`` itself
    when unmatched).  Matching respects edge weight: each vertex prefers its
    heaviest unmatched neighbour (first such neighbour in CSR order on ties).

    With ``two_hop`` (default), a second pass pairs still-unmatched vertices
    that share a common neighbour.  Pure 1-hop matching stalls on star
    subgraphs — e.g. 15 hosts behind one switch match one per level — which
    is exactly the shape access networks have; two-hop matching collapses
    such stars geometrically (the METIS ``-minconn``-era refinement).
    """
    n = graph.n
    match = np.full(n, UNMATCHED, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        if match[v] != UNMATCHED:
            continue
        nbrs = graph.neighbors(v)
        avail = np.flatnonzero(match[nbrs] == UNMATCHED)
        if len(avail):
            weights = graph.neighbor_weights(v)[avail]
            best = int(nbrs[avail[np.argmax(weights)]])
            match[v] = best
            match[best] = v

    if two_hop:
        # Pair unmatched leaves that hang off the same centre, preferring
        # heavier leaf edges first so heavy stars collapse first.
        for center in order:
            nbrs = graph.neighbors(int(center))
            avail = np.flatnonzero(match[nbrs] == UNMATCHED)
            if len(avail) < 2:
                continue
            leaves = nbrs[avail]
            weights = graph.neighbor_weights(int(center))[avail]
            # Descending weight, ties broken by descending leaf id — the
            # same order as sorting (weight, id) tuples in reverse.
            ranked = leaves[np.lexsort((-leaves, -weights))]
            for a, b in zip(ranked[0::2], ranked[1::2]):
                if match[a] == UNMATCHED and match[b] == UNMATCHED:
                    match[a] = b
                    match[b] = a

    unset = match == UNMATCHED
    match[unset] = np.nonzero(unset)[0]
    return match


def matching_to_cmap(match: np.ndarray) -> np.ndarray:
    """Number the coarse vertices: each matched pair (and each singleton)
    becomes one coarse vertex, numbered in fine-vertex order."""
    n = len(match)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    # Each pair's representative is its smaller member, so first-visit
    # order over fine vertices is ascending representative order.
    rep = np.minimum(np.arange(n, dtype=np.int64), match)
    _, cmap = np.unique(rep, return_inverse=True)
    return cmap.astype(np.int64, copy=False)


def contract(graph: CSRGraph, cmap: np.ndarray) -> CSRGraph:
    """Contract ``graph`` along ``cmap``.

    Coarse vertex weights are sums of their constituents' weights (per
    constraint); parallel coarse edges merge by summing weights; edges
    internal to a coarse vertex vanish.  Fully vectorized: map both CSR
    endpoints through ``cmap``, drop internal slots, merge duplicates by
    sorting the packed coarse edge keys.
    """
    cmap = np.asarray(cmap, dtype=np.int64)
    n_coarse = int(cmap.max()) + 1 if len(cmap) else 0
    vwgt = np.zeros((n_coarse, graph.ncon), dtype=np.float64)
    np.add.at(vwgt, cmap, graph.vwgt)

    if len(graph.adjncy) == 0:
        return CSRGraph(
            xadj=np.zeros(n_coarse + 1, dtype=np.int64),
            adjncy=np.zeros(0, dtype=np.int64),
            adjwgt=np.zeros(0, dtype=np.float64),
            vwgt=vwgt,
        )

    src = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.xadj))
    cu = cmap[src]
    cv = cmap[graph.adjncy]
    keep = cu < cv  # drop internal edges; count each pair once
    cu, cv, w = cu[keep], cv[keep], graph.adjwgt[keep]

    # Merge parallel coarse edges (summing weights) and lay out the coarse
    # adjacency in first-appearance order, bit-identical to the dict-based
    # contraction this replaced (refinement tie-breaks read CSR order).
    return CSRGraph.from_edge_arrays(
        n_coarse, cu, cv, w, vwgt=vwgt, first_appearance=True
    )


def coarsen_level(graph: CSRGraph, rng: np.random.Generator) -> CoarseLevel:
    """One coarsening step: match, then contract."""
    match = heavy_edge_matching(graph, rng)
    cmap = matching_to_cmap(match)
    return CoarseLevel(fine=graph, coarse=contract(graph, cmap), cmap=cmap)


def coarsen_to(
    graph: CSRGraph,
    target_n: int,
    rng: np.random.Generator,
    max_levels: int = 40,
    shrink_floor: float = 0.95,
) -> list[CoarseLevel]:
    """Coarsen until at most ``target_n`` vertices remain.

    Stops early when a level shrinks the graph by less than
    ``1 - shrink_floor`` (matching has stalled, e.g. on a star graph).
    Returns the hierarchy from finest to coarsest; empty when ``graph`` is
    already small enough.
    """
    levels: list[CoarseLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.n <= target_n:
            break
        level = coarsen_level(current, rng)
        if level.coarse.n >= int(current.n * shrink_floor):
            break
        levels.append(level)
        current = level.coarse
    return levels
