"""Graph coarsening by heavy-edge matching (HEM).

The multilevel scheme repeatedly contracts a matching of the graph until the
coarsest graph is small enough to partition directly.  Heavy-edge matching
visits vertices in random order and matches each unmatched vertex with the
unmatched neighbour connected by the heaviest edge, which tends to hide heavy
edges inside coarse vertices so they can never be cut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.csr import CSRGraph

__all__ = ["CoarseLevel", "heavy_edge_matching", "contract", "coarsen_level"]

UNMATCHED = -1


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy.

    ``cmap[v]`` gives the coarse-vertex id of fine vertex ``v``; ``coarse``
    is the contracted graph.  Projecting a coarse partition back to the fine
    graph is ``fine_parts = coarse_parts[cmap]``.
    """

    fine: CSRGraph
    coarse: CSRGraph
    cmap: np.ndarray


def heavy_edge_matching(
    graph: CSRGraph, rng: np.random.Generator, two_hop: bool = True
) -> np.ndarray:
    """Compute a heavy-edge matching.

    Returns ``match`` with ``match[v]`` the partner of ``v`` (or ``v`` itself
    when unmatched).  Matching respects edge weight: each vertex prefers its
    heaviest unmatched neighbour.

    With ``two_hop`` (default), a second pass pairs still-unmatched vertices
    that share a common neighbour.  Pure 1-hop matching stalls on star
    subgraphs — e.g. 15 hosts behind one switch match one per level — which
    is exactly the shape access networks have; two-hop matching collapses
    such stars geometrically (the METIS ``-minconn``-era refinement).
    """
    n = graph.n
    match = np.full(n, UNMATCHED, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        if match[v] != UNMATCHED:
            continue
        best = -1
        best_w = -np.inf
        for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
            if match[u] == UNMATCHED and u != v and w > best_w:
                best, best_w = int(u), float(w)
        if best >= 0:
            match[v] = best
            match[best] = v

    if two_hop:
        # Pair unmatched leaves that hang off the same centre, preferring
        # heavier leaf edges first so heavy stars collapse first.
        for center in order:
            leaves = [
                (float(w), int(u))
                for u, w in zip(
                    graph.neighbors(int(center)),
                    graph.neighbor_weights(int(center)),
                )
                if match[u] == UNMATCHED
            ]
            leaves.sort(reverse=True)
            for (_, a), (_, b) in zip(leaves[0::2], leaves[1::2]):
                if match[a] == UNMATCHED and match[b] == UNMATCHED:
                    match[a] = b
                    match[b] = a

    unset = match == UNMATCHED
    match[unset] = np.nonzero(unset)[0]
    return match


def matching_to_cmap(match: np.ndarray) -> np.ndarray:
    """Number the coarse vertices: each matched pair (and each singleton)
    becomes one coarse vertex, numbered in fine-vertex order."""
    n = len(match)
    cmap = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for v in range(n):
        if cmap[v] >= 0:
            continue
        cmap[v] = nxt
        partner = match[v]
        if partner != v:
            cmap[partner] = nxt
        nxt += 1
    return cmap


def contract(graph: CSRGraph, cmap: np.ndarray) -> CSRGraph:
    """Contract ``graph`` along ``cmap``.

    Coarse vertex weights are sums of their constituents' weights (per
    constraint); parallel coarse edges merge by summing weights; edges
    internal to a coarse vertex vanish.
    """
    n_coarse = int(cmap.max()) + 1 if len(cmap) else 0
    vwgt = np.zeros((n_coarse, graph.ncon), dtype=np.float64)
    np.add.at(vwgt, cmap, graph.vwgt)

    edges: dict[tuple[int, int], float] = {}
    for v in range(graph.n):
        cv = int(cmap[v])
        for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
            cu = int(cmap[u])
            if cv == cu or cv > cu:
                continue  # drop internal edges; count each pair once
            key = (cv, cu)
            edges[key] = edges.get(key, 0.0) + float(w)
    return CSRGraph.from_edges(
        n_coarse, [(u, v, w) for (u, v), w in edges.items()], vwgt=vwgt
    )


def coarsen_level(graph: CSRGraph, rng: np.random.Generator) -> CoarseLevel:
    """One coarsening step: match, then contract."""
    match = heavy_edge_matching(graph, rng)
    cmap = matching_to_cmap(match)
    return CoarseLevel(fine=graph, coarse=contract(graph, cmap), cmap=cmap)


def coarsen_to(
    graph: CSRGraph,
    target_n: int,
    rng: np.random.Generator,
    max_levels: int = 40,
    shrink_floor: float = 0.95,
) -> list[CoarseLevel]:
    """Coarsen until at most ``target_n`` vertices remain.

    Stops early when a level shrinks the graph by less than
    ``1 - shrink_floor`` (matching has stalled, e.g. on a star graph).
    Returns the hierarchy from finest to coarsest; empty when ``graph`` is
    already small enough.
    """
    levels: list[CoarseLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.n <= target_n:
            break
        level = coarsen_level(current, rng)
        if level.coarse.n >= int(current.n * shrink_floor):
            break
        levels.append(level)
        current = level.coarse
    return levels
