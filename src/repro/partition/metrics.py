"""Partition quality diagnostics: edge cut, part weights, imbalance.

These are the quantities the multilevel driver optimizes and the quantities
the experiment harness reports when comparing partitioners.
"""

from __future__ import annotations

import numpy as np

from repro.partition.csr import CSRGraph

__all__ = [
    "edge_cut",
    "weighted_edge_cut",
    "part_weights",
    "max_imbalance",
    "imbalance_vector",
    "is_balanced",
    "cut_edges",
]


def _check_parts(graph: CSRGraph, parts: np.ndarray) -> np.ndarray:
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (graph.n,):
        raise ValueError(f"parts must have shape ({graph.n},), got {parts.shape}")
    return parts


def edge_cut(graph: CSRGraph, parts: np.ndarray) -> int:
    """Number of undirected edges whose endpoints lie in different parts."""
    parts = _check_parts(graph, parts)
    src = np.repeat(np.arange(graph.n), np.diff(graph.xadj))
    crossing = parts[src] != parts[graph.adjncy]
    return int(crossing.sum()) // 2


def weighted_edge_cut(graph: CSRGraph, parts: np.ndarray) -> float:
    """Total weight of undirected edges straddling parts.

    This is the objective the paper minimizes (with edge weights set per
    mapping approach — latency, predicted traffic, or profiled traffic).
    """
    parts = _check_parts(graph, parts)
    src = np.repeat(np.arange(graph.n), np.diff(graph.xadj))
    crossing = parts[src] != parts[graph.adjncy]
    return float(graph.adjwgt[crossing].sum()) / 2.0


def cut_edges(graph: CSRGraph, parts: np.ndarray) -> list[tuple[int, int, float]]:
    """The straddling edges themselves, each once with ``u < v``."""
    parts = _check_parts(graph, parts)
    out = []
    for u, v, w in graph.edge_list():
        if parts[u] != parts[v]:
            out.append((u, v, w))
    return out


def part_weights(graph: CSRGraph, parts: np.ndarray, k: int) -> np.ndarray:
    """Per-part vertex-weight sums, shape ``(k, ncon)``."""
    parts = _check_parts(graph, parts)
    out = np.zeros((k, graph.ncon), dtype=np.float64)
    np.add.at(out, parts, graph.vwgt)
    return out


def imbalance_vector(
    graph: CSRGraph,
    parts: np.ndarray,
    k: int,
    target_fracs: np.ndarray | None = None,
) -> np.ndarray:
    """Per-constraint load imbalance: worst ratio of a part's weight to its
    target share (``total[i] / k`` for uniform targets).

    A perfectly balanced partition scores 1.0 in every constraint.
    Constraints whose total weight is zero score 1.0 by convention.
    ``target_fracs`` supports uneven (heterogeneous-capacity) targets.
    """
    weights = part_weights(graph, parts, k)
    totals = graph.total_vwgt()
    if target_fracs is None:
        fracs = np.full(k, 1.0 / k)
    else:
        fracs = np.asarray(target_fracs, dtype=np.float64)
        fracs = fracs / fracs.sum()
    out = np.ones(graph.ncon, dtype=np.float64)
    for i in range(graph.ncon):
        if totals[i] > 0:
            ratios = weights[:, i] / (totals[i] * fracs)
            out[i] = float(ratios.max())
    return out


def max_imbalance(
    graph: CSRGraph,
    parts: np.ndarray,
    k: int,
    target_fracs: np.ndarray | None = None,
) -> float:
    """Worst imbalance across all constraints (1.0 = perfect)."""
    return float(imbalance_vector(graph, parts, k, target_fracs).max())


def is_balanced(
    graph: CSRGraph, parts: np.ndarray, k: int, tolerance: float = 1.05
) -> bool:
    """Whether every constraint is within the multiplicative tolerance."""
    return max_imbalance(graph, parts, k) <= tolerance + 1e-12
