"""Reference (pre-optimization) refinement implementations — test oracles.

These are the original pure-Python FM and greedy k-way refinement kernels,
kept verbatim so the differential parity suite can prove the optimized
implementations in :mod:`repro.partition.fm` and
:mod:`repro.partition.kwayrefine` produce cuts no worse — and, under fixed
seeds on graphs with exactly-representable weights, *identical*
assignments.  They recompute gains / connectivity from scratch (O(n) and
O(n·k) per pass respectively), which is exactly the scaling behaviour the
optimized kernels exist to avoid; never call them from production code.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.csr import CSRGraph

__all__ = ["fm_refine_reference", "kway_refine_reference"]


# --------------------------------------------------------------------- #
# FM bisection refinement (original)
# --------------------------------------------------------------------- #
def _bisection_gains_reference(graph: CSRGraph, parts: np.ndarray) -> np.ndarray:
    """Per-vertex flip gains, recomputed from scratch (O(n) python loop)."""
    n = graph.n
    gains = np.zeros(n, dtype=np.float64)
    for v in range(n):
        weights = graph.neighbor_weights(v)
        same = parts[graph.neighbors(v)] == parts[v]
        gains[v] = float(weights[~same].sum() - weights[same].sum())
    return gains


def _part_weights(graph: CSRGraph, parts: np.ndarray) -> np.ndarray:
    pw = np.zeros((2, graph.ncon), dtype=np.float64)
    np.add.at(pw, parts, graph.vwgt)
    return pw


def fm_refine_reference(
    graph: CSRGraph,
    parts: np.ndarray,
    target_frac: float = 0.5,
    tolerance: float = 1.05,
    max_passes: int = 8,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Original FM refinement — full gain rescan at every pass start."""
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n
    if n == 0:
        return parts
    rng = rng or np.random.default_rng(0)

    totals = graph.total_vwgt()
    share = np.array([target_frac, 1.0 - target_frac])
    cap = (
        tolerance * share[:, None] * totals[None, :]
        + graph.vwgt.max(axis=0)[None, :]
    )

    pw = _part_weights(graph, parts)
    counts = np.bincount(parts, minlength=2)

    def admissible(v: int, dest: int) -> bool:
        if counts[1 - dest] <= 1:  # never empty a side
            return False
        new = pw[dest] + graph.vwgt[v]
        return bool(np.all(new <= cap[dest] + 1e-9))

    def apply_move(v: int, dest: int) -> None:
        src = parts[v]
        pw[src] -= graph.vwgt[v]
        pw[dest] += graph.vwgt[v]
        counts[src] -= 1
        counts[dest] += 1
        parts[v] = dest

    # Balance repair pre-pass (recomputes all gains per repaired vertex).
    for _ in range(n):
        over = [
            p for p in (0, 1) if np.any(pw[p] > cap[p] + 1e-9)
        ]
        if not over:
            break
        src = over[0]
        gains = _bisection_gains_reference(graph, parts)
        candidates = np.nonzero(parts == src)[0]
        if len(candidates) == 0:
            break
        best_v = int(candidates[np.argmax(gains[candidates])])
        if not admissible(best_v, 1 - src):
            break
        apply_move(best_v, 1 - src)

    for _ in range(max_passes):
        gains = _bisection_gains_reference(graph, parts)
        locked = np.zeros(n, dtype=bool)
        heap: list[tuple[float, float, int]] = []
        for v in range(n):
            heapq.heappush(heap, (-gains[v], rng.random(), v))

        moves: list[tuple[int, int]] = []  # (vertex, previous part)
        cum = 0.0
        best_cum = 0.0
        best_len = 0
        stale_limit = n  # whole pass

        while heap and len(moves) < stale_limit:
            neg_gain, _, v = heapq.heappop(heap)
            if locked[v]:
                continue
            if -neg_gain != gains[v]:  # stale entry
                heapq.heappush(heap, (-gains[v], rng.random(), v))
                continue
            dest = 1 - parts[v]
            if not admissible(v, dest):
                locked[v] = True
                continue
            prev = parts[v]
            apply_move(v, dest)
            locked[v] = True
            moves.append((v, prev))
            cum += gains[v]
            if cum > best_cum + 1e-12:
                best_cum = cum
                best_len = len(moves)
            for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
                u = int(u)
                if locked[u]:
                    continue
                delta = 2.0 * float(w) if parts[u] == prev else -2.0 * float(w)
                gains[u] += delta
                heapq.heappush(heap, (-gains[u], rng.random(), u))
            gains[v] = -gains[v]

        for v, prev in reversed(moves[best_len:]):
            apply_move(v, prev)
        if best_len == 0:
            break
    return parts


# --------------------------------------------------------------------- #
# Greedy k-way refinement (original)
# --------------------------------------------------------------------- #
def _part_connectivity_reference(
    graph: CSRGraph, parts: np.ndarray, v: int, k: int
) -> np.ndarray:
    conn = np.zeros(k, dtype=np.float64)
    np.add.at(conn, parts[graph.neighbors(v)], graph.neighbor_weights(v))
    return conn


def kway_refine_reference(
    graph: CSRGraph,
    parts: np.ndarray,
    k: int,
    target_fracs: np.ndarray | None = None,
    tolerance: float = 1.05,
    max_passes: int = 8,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Original greedy k-way refinement — per-vertex connectivity rescan."""
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n
    if n == 0 or k <= 1:
        return parts
    rng = rng or np.random.default_rng(0)
    if target_fracs is None:
        target_fracs = np.full(k, 1.0 / k)
    target_fracs = np.asarray(target_fracs, dtype=np.float64)

    totals = graph.total_vwgt()
    cap = tolerance * target_fracs[:, None] * totals[None, :]
    if graph.n:
        cap = np.maximum(cap, graph.vwgt.max(axis=0)[None, :])
    pw = np.zeros((k, graph.ncon), dtype=np.float64)
    np.add.at(pw, parts, graph.vwgt)
    counts = np.bincount(parts, minlength=k)
    safe_totals = np.where(totals > 0, totals, 1.0)

    def admissible(v: int, dest: int) -> bool:
        if counts[parts[v]] <= 1:  # never empty a part
            return False
        return bool(np.all(pw[dest] + graph.vwgt[v] <= cap[dest] + 1e-9))

    def norm_load(weights: np.ndarray) -> float:
        return float((weights / safe_totals).max())

    def move(v: int, dest: int) -> None:
        pw[parts[v]] -= graph.vwgt[v]
        pw[dest] += graph.vwgt[v]
        counts[parts[v]] -= 1
        counts[dest] += 1
        parts[v] = dest

    # Balance repair.
    for _ in range(n):
        over = np.nonzero(np.any(pw > cap + 1e-9, axis=1))[0]
        if len(over) == 0:
            break
        src = int(over[0])
        members = np.nonzero(parts == src)[0]
        best_key: tuple[float, float] | None = None
        best_move: tuple[int, int] | None = None
        for v in members:
            conn = _part_connectivity_reference(graph, parts, int(v), k)
            for dest in range(k):
                if dest == src or not admissible(int(v), dest):
                    continue
                gain = conn[dest] - conn[src]
                key = (-gain, rng.random())
                if best_key is None or key < best_key:
                    best_key = key
                    best_move = (int(v), dest)
        if best_move is None:
            break
        move(*best_move)

    # Gain passes.
    for _ in range(max_passes):
        moved = 0
        order = rng.permutation(n)
        for v in order:
            v = int(v)
            conn = _part_connectivity_reference(graph, parts, v, k)
            src = parts[v]
            if np.all(conn[np.arange(k) != src] == 0):
                continue  # interior vertex
            best_dest = -1
            best_gain = 0.0
            best_load = norm_load(pw[src])
            for dest in range(k):
                if dest == src or conn[dest] <= 0.0:
                    continue
                if not admissible(v, dest):
                    continue
                gain = conn[dest] - conn[src]
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_dest = dest
                elif (
                    abs(gain - best_gain) <= 1e-12
                    and gain >= -1e-12
                    and norm_load(pw[dest] + graph.vwgt[v]) < best_load - 1e-12
                ):
                    best_dest = dest
                    best_load = norm_load(pw[dest] + graph.vwgt[v])
            if best_dest >= 0 and (best_gain > 1e-12 or best_dest != src):
                if best_gain > 1e-12 or norm_load(
                    pw[best_dest] + graph.vwgt[v]
                ) < norm_load(pw[src]):
                    move(v, best_dest)
                    moved += 1
        if moved == 0:
            break
    return parts
