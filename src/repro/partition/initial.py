"""Initial bisection by greedy graph growing (GGG).

Used on the coarsest graph of the multilevel hierarchy and as the splitter
inside recursive bisection.  Starting from a random seed, part 0 is grown one
frontier vertex at a time — preferring the vertex with the highest cut gain —
until its share of the vertex weight reaches the target fraction.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.csr import CSRGraph

__all__ = ["greedy_graph_growing", "grow_bisection"]


def _norm_weights(graph: CSRGraph) -> np.ndarray:
    """Vertex weights normalized so each constraint column sums to 1.

    Zero-total constraints contribute zero (they can never be unbalanced).
    """
    totals = graph.total_vwgt()
    safe = np.where(totals > 0, totals, 1.0)
    return graph.vwgt / safe


def grow_bisection(
    graph: CSRGraph,
    target_frac: float,
    rng: np.random.Generator,
    seed_vertex: int | None = None,
) -> np.ndarray:
    """Grow a single bisection from one seed.

    Returns a 0/1 part array in which part 0 holds roughly ``target_frac``
    of every vertex-weight constraint.  Growth stops when the *mean*
    normalized weight of part 0 across constraints reaches the target, which
    keeps multi-constraint weights jointly near the target without favouring
    any single column.
    """
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if not 0.0 < target_frac < 1.0:
        raise ValueError("target_frac must be in (0, 1)")

    norm = _norm_weights(graph)
    parts = np.ones(n, dtype=np.int64)
    grown = np.zeros(graph.ncon, dtype=np.float64)

    seed = int(seed_vertex) if seed_vertex is not None else int(rng.integers(n))
    counter = 0
    # Max-heap on gain (stored negated).  Gain of adding v to part 0 is
    # (edge weight to part 0) - (edge weight to part 1): classic GGG.
    heap: list[tuple[float, int, int]] = [(0.0, counter, seed)]
    in_heap = np.zeros(n, dtype=bool)
    in_heap[seed] = True

    def gain(v: int) -> float:
        weights = graph.neighbor_weights(v)
        to_zero = parts[graph.neighbors(v)] == 0
        return float(weights[to_zero].sum() - weights[~to_zero].sum())

    while heap and grown.mean() < target_frac - 1e-9:
        _, _, v = heapq.heappop(heap)
        if parts[v] == 0:
            continue
        parts[v] = 0
        grown += norm[v]
        for u in graph.neighbors(v):
            u = int(u)
            if parts[u] == 1 and not in_heap[u]:
                in_heap[u] = True
                counter += 1
                heapq.heappush(heap, (-gain(u), counter, u))
        # A disconnected graph can exhaust the frontier early; restart the
        # growth from a fresh unassigned seed.
        if not heap and grown.mean() < target_frac - 1e-9:
            remaining = np.nonzero(parts == 1)[0]
            if len(remaining) == 0:
                break
            seed = int(rng.choice(remaining))
            counter += 1
            heapq.heappush(heap, (0.0, counter, seed))
            in_heap[seed] = True
    return parts


def greedy_graph_growing(
    graph: CSRGraph,
    target_frac: float,
    rng: np.random.Generator,
    n_tries: int = 4,
) -> np.ndarray:
    """Best-of-``n_tries`` greedy graph growing bisection.

    Each try grows from a different random seed; the bisection with the
    smallest weighted cut (breaking ties toward better balance) wins.
    """
    from repro.partition.metrics import weighted_edge_cut

    best: np.ndarray | None = None
    best_key: tuple[float, float] | None = None
    norm = _norm_weights(graph)
    for _ in range(max(1, n_tries)):
        parts = grow_bisection(graph, target_frac, rng)
        cut = weighted_edge_cut(graph, parts)
        share = norm[parts == 0].sum(axis=0)
        balance_err = float(np.abs(share - target_frac).max()) if graph.n else 0.0
        key = (cut, balance_err)
        if best_key is None or key < best_key:
            best, best_key = parts, key
    assert best is not None
    return best
