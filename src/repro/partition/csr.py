"""Compressed-sparse-row graph representation for partitioning.

All partitioning algorithms in :mod:`repro.partition` operate on
:class:`CSRGraph`, an undirected weighted graph in CSR (adjacency-array)
form, the same layout METIS uses:

- ``xadj``   — ``int64[n + 1]``; the neighbours of vertex ``v`` are
  ``adjncy[xadj[v]:xadj[v + 1]]``.
- ``adjncy`` — ``int64[2m]``; each undirected edge appears twice.
- ``adjwgt`` — ``float64[2m]``; symmetric edge weights.
- ``vwgt``   — ``float64[n, ncon]``; one column per balance constraint.

Vertex and edge weights are floats (the emulation weights are bandwidth and
latency figures, not counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["CSRGraph"]


@dataclass
class CSRGraph:
    """Undirected weighted graph in CSR form.

    Instances are conceptually immutable: algorithms build new graphs rather
    than mutating ``xadj``/``adjncy`` in place.
    """

    xadj: np.ndarray
    adjncy: np.ndarray
    adjwgt: np.ndarray
    vwgt: np.ndarray

    def __post_init__(self) -> None:
        self.xadj = np.ascontiguousarray(self.xadj, dtype=np.int64)
        self.adjncy = np.ascontiguousarray(self.adjncy, dtype=np.int64)
        self.adjwgt = np.ascontiguousarray(self.adjwgt, dtype=np.float64)
        vwgt = np.ascontiguousarray(self.vwgt, dtype=np.float64)
        if vwgt.ndim == 1:
            vwgt = vwgt[:, None]
        self.vwgt = vwgt

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.xadj) - 1

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.adjncy) // 2

    @property
    def ncon(self) -> int:
        """Number of balance constraints (vertex-weight columns)."""
        return self.vwgt.shape[1]

    def degree(self, v: int) -> int:
        """Number of neighbours of ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    def neighbors(self, v: int) -> np.ndarray:
        """View of the neighbour ids of ``v``."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """View of the edge weights incident to ``v`` (parallel to
        :meth:`neighbors`)."""
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def total_vwgt(self) -> np.ndarray:
        """Column sums of the vertex weights, shape ``(ncon,)``."""
        return self.vwgt.sum(axis=0)

    def total_adjwgt(self) -> float:
        """Total undirected edge weight (each edge counted once)."""
        return float(self.adjwgt.sum()) / 2.0

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ValueError` on failure.

        Invariants: monotone ``xadj``; neighbour ids in range; no self
        loops; symmetric adjacency with symmetric weights; ``vwgt`` has one
        row per vertex and is non-negative.
        """
        if self.xadj[0] != 0 or self.xadj[-1] != len(self.adjncy):
            raise ValueError("xadj does not span adjncy")
        if np.any(np.diff(self.xadj) < 0):
            raise ValueError("xadj must be non-decreasing")
        if len(self.adjwgt) != len(self.adjncy):
            raise ValueError("adjwgt length mismatch")
        if self.vwgt.shape[0] != self.n:
            raise ValueError("vwgt must have one row per vertex")
        if np.any(self.vwgt < 0):
            raise ValueError("vertex weights must be non-negative")
        n = self.n
        if len(self.adjncy) and (self.adjncy.min() < 0 or self.adjncy.max() >= n):
            raise ValueError("neighbour id out of range")
        for v in range(n):
            nbrs = self.neighbors(v)
            if np.any(nbrs == v):
                raise ValueError(f"self loop at vertex {v}")
        # Symmetry: every (u, v, w) must have a matching (v, u, w).
        fwd: dict[tuple[int, int], float] = {}
        for v in range(n):
            for u, w in zip(self.neighbors(v), self.neighbor_weights(v)):
                key = (v, int(u))
                if key in fwd:
                    raise ValueError(f"duplicate edge {key}")
                fwd[key] = float(w)
        for (v, u), w in fwd.items():
            back = fwd.get((u, v))
            if back is None:
                raise ValueError(f"edge ({v},{u}) missing reverse")
            if not np.isclose(back, w):
                raise ValueError(f"asymmetric weight on edge ({v},{u})")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int, float]],
        vwgt: np.ndarray | Sequence[float] | None = None,
    ) -> "CSRGraph":
        """Build a graph from an undirected edge list.

        Parameters
        ----------
        n:
            Number of vertices (ids ``0..n-1``).
        edges:
            ``(u, v, weight)`` triples; each undirected edge listed once.
            Parallel edges are merged by summing weights; self loops are
            dropped.
        vwgt:
            Vertex weights, shape ``(n,)`` or ``(n, ncon)``; defaults to
            all-ones.
        """
        merged: dict[tuple[int, int], float] = {}
        for u, v, w in edges:
            u, v = int(u), int(v)
            if u == v:
                continue
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u},{v}) out of range for n={n}")
            key = (u, v) if u < v else (v, u)
            merged[key] = merged.get(key, 0.0) + float(w)

        deg = np.zeros(n, dtype=np.int64)
        for u, v in merged:
            deg[u] += 1
            deg[v] += 1
        xadj = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=xadj[1:])
        adjncy = np.zeros(xadj[-1], dtype=np.int64)
        adjwgt = np.zeros(xadj[-1], dtype=np.float64)
        cursor = xadj[:-1].copy()
        for (u, v), w in merged.items():
            adjncy[cursor[u]] = v
            adjwgt[cursor[u]] = w
            cursor[u] += 1
            adjncy[cursor[v]] = u
            adjwgt[cursor[v]] = w
            cursor[v] += 1

        if vwgt is None:
            vw = np.ones((n, 1), dtype=np.float64)
        else:
            vw = np.asarray(vwgt, dtype=np.float64)
            if vw.ndim == 1:
                vw = vw[:, None]
            if vw.shape[0] != n:
                raise ValueError("vwgt must have one row per vertex")
        return cls(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vw)

    @classmethod
    def from_networkx(
        cls,
        graph,
        weight: str = "weight",
        vwgt_attr: str | None = None,
    ) -> tuple["CSRGraph", list]:
        """Convert a :mod:`networkx` graph.

        Returns the CSR graph and the node list giving CSR-id → node mapping.
        Edge weights default to 1.0 when the attribute is absent; vertex
        weights come from ``vwgt_attr`` when given.
        """
        nodes = list(graph.nodes())
        index: Mapping = {node: i for i, node in enumerate(nodes)}
        edges = [
            (index[u], index[v], float(data.get(weight, 1.0)))
            for u, v, data in graph.edges(data=True)
        ]
        vwgt = None
        if vwgt_attr is not None:
            vwgt = np.array(
                [float(graph.nodes[node].get(vwgt_attr, 1.0)) for node in nodes]
            )
        return cls.from_edges(len(nodes), edges, vwgt=vwgt), nodes

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def with_vwgt(self, vwgt: np.ndarray) -> "CSRGraph":
        """Copy of this graph with replaced vertex weights."""
        vw = np.asarray(vwgt, dtype=np.float64)
        if vw.ndim == 1:
            vw = vw[:, None]
        if vw.shape[0] != self.n:
            raise ValueError("vwgt must have one row per vertex")
        return CSRGraph(self.xadj, self.adjncy, self.adjwgt, vw)

    def with_adjwgt(self, adjwgt: np.ndarray) -> "CSRGraph":
        """Copy of this graph with replaced edge weights (CSR-parallel)."""
        aw = np.asarray(adjwgt, dtype=np.float64)
        if aw.shape != self.adjncy.shape:
            raise ValueError("adjwgt must be parallel to adjncy")
        return CSRGraph(self.xadj, self.adjncy, aw, self.vwgt)

    def edge_list(self) -> list[tuple[int, int, float]]:
        """Undirected edge list, each edge once with ``u < v``."""
        out: list[tuple[int, int, float]] = []
        for v in range(self.n):
            for u, w in zip(self.neighbors(v), self.neighbor_weights(v)):
                if v < u:
                    out.append((v, int(u), float(w)))
        return out

    def connected_components(self) -> list[np.ndarray]:
        """Connected components as arrays of vertex ids (BFS)."""
        seen = np.zeros(self.n, dtype=bool)
        comps: list[np.ndarray] = []
        for start in range(self.n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            comp = [start]
            while stack:
                v = stack.pop()
                for u in self.neighbors(v):
                    if not seen[u]:
                        seen[u] = True
                        comp.append(int(u))
                        stack.append(int(u))
            comps.append(np.array(sorted(comp), dtype=np.int64))
        return comps

    def is_connected(self) -> bool:
        """True when the graph has a single connected component."""
        return self.n <= 1 or len(self.connected_components()) == 1
