"""Compressed-sparse-row graph representation for partitioning.

All partitioning algorithms in :mod:`repro.partition` operate on
:class:`CSRGraph`, an undirected weighted graph in CSR (adjacency-array)
form, the same layout METIS uses:

- ``xadj``   — ``int64[n + 1]``; the neighbours of vertex ``v`` are
  ``adjncy[xadj[v]:xadj[v + 1]]``.
- ``adjncy`` — ``int64[2m]``; each undirected edge appears twice.
- ``adjwgt`` — ``float64[2m]``; symmetric edge weights.
- ``vwgt``   — ``float64[n, ncon]``; one column per balance constraint.

Vertex and edge weights are floats (the emulation weights are bandwidth and
latency figures, not counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["CSRGraph"]


@dataclass
class CSRGraph:
    """Undirected weighted graph in CSR form.

    Instances are conceptually immutable: algorithms build new graphs rather
    than mutating ``xadj``/``adjncy`` in place.
    """

    xadj: np.ndarray
    adjncy: np.ndarray
    adjwgt: np.ndarray
    vwgt: np.ndarray

    def __post_init__(self) -> None:
        self.xadj = np.ascontiguousarray(self.xadj, dtype=np.int64)
        self.adjncy = np.ascontiguousarray(self.adjncy, dtype=np.int64)
        self.adjwgt = np.ascontiguousarray(self.adjwgt, dtype=np.float64)
        vwgt = np.ascontiguousarray(self.vwgt, dtype=np.float64)
        if vwgt.ndim == 1:
            vwgt = vwgt[:, None]
        self.vwgt = vwgt

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.xadj) - 1

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.adjncy) // 2

    @property
    def ncon(self) -> int:
        """Number of balance constraints (vertex-weight columns)."""
        return self.vwgt.shape[1]

    def degree(self, v: int) -> int:
        """Number of neighbours of ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    def neighbors(self, v: int) -> np.ndarray:
        """View of the neighbour ids of ``v``."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """View of the edge weights incident to ``v`` (parallel to
        :meth:`neighbors`)."""
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def total_vwgt(self) -> np.ndarray:
        """Column sums of the vertex weights, shape ``(ncon,)``."""
        return self.vwgt.sum(axis=0)

    def total_adjwgt(self) -> float:
        """Total undirected edge weight (each edge counted once)."""
        return float(self.adjwgt.sum()) / 2.0

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ValueError` on failure.

        Invariants: monotone ``xadj``; neighbour ids in range; no self
        loops; symmetric adjacency with symmetric weights; ``vwgt`` has one
        row per vertex and is non-negative.  Runs vectorized (sort-based
        symmetry check), so validating 10k-vertex graphs is cheap.
        """
        if self.xadj[0] != 0 or self.xadj[-1] != len(self.adjncy):
            raise ValueError("xadj does not span adjncy")
        if np.any(np.diff(self.xadj) < 0):
            raise ValueError("xadj must be non-decreasing")
        if len(self.adjwgt) != len(self.adjncy):
            raise ValueError("adjwgt length mismatch")
        if self.vwgt.shape[0] != self.n:
            raise ValueError("vwgt must have one row per vertex")
        if np.any(self.vwgt < 0):
            raise ValueError("vertex weights must be non-negative")
        n = self.n
        if len(self.adjncy) == 0:
            return
        if self.adjncy.min() < 0 or self.adjncy.max() >= n:
            raise ValueError("neighbour id out of range")
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.xadj))
        loops = np.nonzero(src == self.adjncy)[0]
        if len(loops):
            raise ValueError(f"self loop at vertex {int(src[loops[0]])}")
        # Symmetry: the multiset of directed slots must equal its reverse,
        # with matching weights.  Sort both key sets and compare.
        fwd_keys = src * n + self.adjncy
        order_f = np.argsort(fwd_keys, kind="stable")
        sorted_f = fwd_keys[order_f]
        dup = np.nonzero(np.diff(sorted_f) == 0)[0]
        if len(dup):
            key = int(sorted_f[dup[0]])
            raise ValueError(f"duplicate edge {(key // n, key % n)}")
        bwd_keys = self.adjncy * n + src
        order_b = np.argsort(bwd_keys, kind="stable")
        sorted_b = bwd_keys[order_b]
        mismatch = np.nonzero(sorted_f != sorted_b)[0]
        if len(mismatch):
            key = int(sorted_f[mismatch[0]])
            raise ValueError(f"edge ({key // n},{key % n}) missing reverse")
        w_f = self.adjwgt[order_f]
        w_b = self.adjwgt[order_b]
        bad = np.nonzero(~np.isclose(w_f, w_b))[0]
        if len(bad):
            key = int(sorted_f[bad[0]])
            raise ValueError(f"asymmetric weight on edge ({key // n},{key % n})")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edge_arrays(
        cls,
        n: int,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
        vwgt: np.ndarray | Sequence[float] | None = None,
        first_appearance: bool = False,
    ) -> "CSRGraph":
        """Build a graph from parallel endpoint/weight arrays, vectorized.

        Same semantics as :meth:`from_edges` — each undirected edge listed
        once, parallel edges merged by summing weights, self loops dropped —
        but O(m log m) numpy work with no python-level edge loop, which is
        what keeps contraction cheap on 10k-router topologies.

        ``first_appearance`` selects the adjacency slot order.  The default
        is canonical sorted order.  With ``first_appearance=True`` the slots
        replicate :meth:`from_edges` exactly: merged edges rank by first
        occurrence in the input, and both directions of edge ``i`` enqueue
        at step ``i`` (the dict-plus-cursor construction).  Seed-dependent
        algorithms tie-break through CSR order, so the coarsening and
        subgraph paths use this mode to stay bit-identical with the
        python-loop constructors they replaced.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = np.asarray(w, dtype=np.float64)
        if not (len(u) == len(v) == len(w)):
            raise ValueError("edge arrays must be parallel")
        if len(u):
            lo = min(int(u.min()), int(v.min()))
            hi = max(int(u.max()), int(v.max()))
            if lo < 0 or hi >= n:
                bad = np.nonzero((u < 0) | (u >= n) | (v < 0) | (v >= n))[0][0]
                raise ValueError(
                    f"edge ({int(u[bad])},{int(v[bad])}) out of range for n={n}"
                )
        keep = u != v  # drop self loops
        a = np.minimum(u[keep], v[keep])
        b = np.maximum(u[keep], v[keep])
        w = w[keep]

        # Merge parallel edges: sum weights per packed undirected key.
        keys = a * n + b
        uniq, first_idx, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        merged_w = np.bincount(inverse, weights=w, minlength=len(uniq))
        a = uniq // n
        b = uniq % n

        if first_appearance:
            rank = np.argsort(first_idx, kind="stable")
            a, b, merged_w = a[rank], b[rank], merged_w[rank]
            seq = np.arange(len(a), dtype=np.int64)
            all_u = np.concatenate([a, b])
            all_v = np.concatenate([b, a])
            all_w = np.concatenate([merged_w, merged_w])
            # Per-source slots in global insertion-step order.
            order = np.lexsort((np.concatenate([seq, seq]), all_u))
        else:
            all_u = np.concatenate([a, b])
            all_v = np.concatenate([b, a])
            all_w = np.concatenate([merged_w, merged_w])
            order = np.lexsort((all_v, all_u))
        adjncy = all_v[order]
        adjwgt = all_w[order]
        deg = np.bincount(all_u, minlength=n)
        xadj = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=xadj[1:])

        if vwgt is None:
            vw = np.ones((n, 1), dtype=np.float64)
        else:
            vw = np.asarray(vwgt, dtype=np.float64)
            if vw.ndim == 1:
                vw = vw[:, None]
            if vw.shape[0] != n:
                raise ValueError("vwgt must have one row per vertex")
        return cls(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vw)

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int, float]],
        vwgt: np.ndarray | Sequence[float] | None = None,
    ) -> "CSRGraph":
        """Build a graph from an undirected edge list.

        Parameters
        ----------
        n:
            Number of vertices (ids ``0..n-1``).
        edges:
            ``(u, v, weight)`` triples; each undirected edge listed once.
            Parallel edges are merged by summing weights; self loops are
            dropped.
        vwgt:
            Vertex weights, shape ``(n,)`` or ``(n, ncon)``; defaults to
            all-ones.
        """
        # Note: adjacency slots keep first-appearance order (dict insertion
        # order of the merged edge keys), NOT sorted order.  Seed-dependent
        # algorithms tie-break through CSR order, so this ordering is part
        # of the constructor's observable behaviour; the vectorized
        # :meth:`from_edge_arrays` (sorted adjacency) is for internal
        # coarsening/subgraph paths that define their own canonical order.
        merged: dict[tuple[int, int], float] = {}
        for u, v, w in edges:
            u, v = int(u), int(v)
            if u == v:
                continue
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u},{v}) out of range for n={n}")
            key = (u, v) if u < v else (v, u)
            merged[key] = merged.get(key, 0.0) + float(w)

        deg = np.zeros(n, dtype=np.int64)
        for u, v in merged:
            deg[u] += 1
            deg[v] += 1
        xadj = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=xadj[1:])
        adjncy = np.zeros(xadj[-1], dtype=np.int64)
        adjwgt = np.zeros(xadj[-1], dtype=np.float64)
        cursor = xadj[:-1].copy()
        for (u, v), w in merged.items():
            adjncy[cursor[u]] = v
            adjwgt[cursor[u]] = w
            cursor[u] += 1
            adjncy[cursor[v]] = u
            adjwgt[cursor[v]] = w
            cursor[v] += 1

        if vwgt is None:
            vw = np.ones((n, 1), dtype=np.float64)
        else:
            vw = np.asarray(vwgt, dtype=np.float64)
            if vw.ndim == 1:
                vw = vw[:, None]
            if vw.shape[0] != n:
                raise ValueError("vwgt must have one row per vertex")
        return cls(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vw)

    @classmethod
    def from_networkx(
        cls,
        graph,
        weight: str = "weight",
        vwgt_attr: str | None = None,
    ) -> tuple["CSRGraph", list]:
        """Convert a :mod:`networkx` graph.

        Returns the CSR graph and the node list giving CSR-id → node mapping.
        Edge weights default to 1.0 when the attribute is absent; vertex
        weights come from ``vwgt_attr`` when given.
        """
        nodes = list(graph.nodes())
        index: Mapping = {node: i for i, node in enumerate(nodes)}
        edges = [
            (index[u], index[v], float(data.get(weight, 1.0)))
            for u, v, data in graph.edges(data=True)
        ]
        vwgt = None
        if vwgt_attr is not None:
            vwgt = np.array(
                [float(graph.nodes[node].get(vwgt_attr, 1.0)) for node in nodes]
            )
        return cls.from_edges(len(nodes), edges, vwgt=vwgt), nodes

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def with_vwgt(self, vwgt: np.ndarray) -> "CSRGraph":
        """Copy of this graph with replaced vertex weights."""
        vw = np.asarray(vwgt, dtype=np.float64)
        if vw.ndim == 1:
            vw = vw[:, None]
        if vw.shape[0] != self.n:
            raise ValueError("vwgt must have one row per vertex")
        return CSRGraph(self.xadj, self.adjncy, self.adjwgt, vw)

    def with_adjwgt(self, adjwgt: np.ndarray) -> "CSRGraph":
        """Copy of this graph with replaced edge weights (CSR-parallel)."""
        aw = np.asarray(adjwgt, dtype=np.float64)
        if aw.shape != self.adjncy.shape:
            raise ValueError("adjwgt must be parallel to adjncy")
        return CSRGraph(self.xadj, self.adjncy, aw, self.vwgt)

    def edge_list(self) -> list[tuple[int, int, float]]:
        """Undirected edge list, each edge once with ``u < v``."""
        out: list[tuple[int, int, float]] = []
        for v in range(self.n):
            for u, w in zip(self.neighbors(v), self.neighbor_weights(v)):
                if v < u:
                    out.append((v, int(u), float(w)))
        return out

    def connected_components(self) -> list[np.ndarray]:
        """Connected components as arrays of vertex ids (BFS)."""
        seen = np.zeros(self.n, dtype=bool)
        comps: list[np.ndarray] = []
        for start in range(self.n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            comp = [start]
            while stack:
                v = stack.pop()
                for u in self.neighbors(v):
                    if not seen[u]:
                        seen[u] = True
                        comp.append(int(u))
                        stack.append(int(u))
            comps.append(np.array(sorted(comp), dtype=np.int64))
        return comps

    def is_connected(self) -> bool:
        """True when the graph has a single connected component."""
        return self.n <= 1 or len(self.connected_components()) == 1
