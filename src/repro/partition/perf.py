"""Operation counters for the refinement hot paths.

The scalable refinement kernels promise *incremental* gain maintenance:
one full gain-table (or connectivity-table) build per call, then
neighborhood-local updates per move.  :class:`RefineStats` counts the
operations that would betray a regression to per-pass O(n) / O(n·k)
rescanning, and the perf-guard test (``tests/partition/test_perf_guard.py``)
asserts the bounds so the build fails if someone reintroduces a rescan.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RefineStats"]


@dataclass
class RefineStats:
    """Counters filled in by :func:`~repro.partition.fm.fm_refine` and
    :func:`~repro.partition.kwayrefine.kway_refine`.

    Attributes
    ----------
    full_gain_builds:
        Complete gain-table constructions (FM).  The incremental kernel
        performs exactly one per call, regardless of pass count.
    conn_builds:
        Complete (n, k) connectivity-table constructions (k-way).  One per
        call in the incremental kernel.
    passes:
        Refinement passes actually executed.
    moves:
        Vertex moves applied (including moves later rolled back by FM's
        best-prefix rule).
    neighbor_updates:
        Per-neighbor incremental gain/connectivity updates — the work that
        *should* scale with moves × degree, not with n × passes.
    boundary_scans:
        Vertices inspected during gain passes (k-way: boundary vertices
        only; interior vertices are skipped via the cached external-weight
        table).
    """

    full_gain_builds: int = 0
    conn_builds: int = 0
    passes: int = 0
    moves: int = 0
    neighbor_updates: int = 0
    boundary_scans: int = 0

    def merge(self, other: "RefineStats") -> None:
        """Accumulate another stats object into this one (multilevel
        drivers aggregate over refinement calls)."""
        self.full_gain_builds += other.full_gain_builds
        self.conn_builds += other.conn_builds
        self.passes += other.passes
        self.moves += other.moves
        self.neighbor_updates += other.neighbor_updates
        self.boundary_scans += other.boundary_scans
