"""Greedy k-way boundary refinement (multi-constraint aware).

After projecting a coarse k-way partition one level down, boundary vertices
are scanned in random order and moved to the adjacent part with the best cut
gain, subject to a per-constraint balance envelope.  Zero-gain moves are
taken when they reduce the worst normalized part load, which lets refinement
trade cut for balance the way METIS's k-way refinement does.
"""

from __future__ import annotations

import numpy as np

from repro.partition.csr import CSRGraph

__all__ = ["kway_refine", "part_connectivity"]


def part_connectivity(
    graph: CSRGraph, parts: np.ndarray, v: int, k: int
) -> np.ndarray:
    """Edge weight from ``v`` into each part, shape ``(k,)``."""
    conn = np.zeros(k, dtype=np.float64)
    np.add.at(conn, parts[graph.neighbors(v)], graph.neighbor_weights(v))
    return conn


def _caps(
    graph: CSRGraph, k: int, target_fracs: np.ndarray, tolerance: float
) -> np.ndarray:
    totals = graph.total_vwgt()
    cap = tolerance * target_fracs[:, None] * totals[None, :]
    # A part must always be able to hold at least its heaviest single vertex.
    if graph.n:
        cap = np.maximum(cap, graph.vwgt.max(axis=0)[None, :])
    return cap


def kway_refine(
    graph: CSRGraph,
    parts: np.ndarray,
    k: int,
    target_fracs: np.ndarray | None = None,
    tolerance: float = 1.05,
    max_passes: int = 8,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Refine a k-way partition; returns a new assignment array.

    Parameters
    ----------
    target_fracs:
        Desired weight share per part (defaults to uniform ``1/k``).
    tolerance:
        Multiplicative envelope over the target share, per constraint.
    """
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n
    if n == 0 or k <= 1:
        return parts
    rng = rng or np.random.default_rng(0)
    if target_fracs is None:
        target_fracs = np.full(k, 1.0 / k)
    target_fracs = np.asarray(target_fracs, dtype=np.float64)

    cap = _caps(graph, k, target_fracs, tolerance)
    pw = np.zeros((k, graph.ncon), dtype=np.float64)
    np.add.at(pw, parts, graph.vwgt)
    counts = np.bincount(parts, minlength=k)
    totals = graph.total_vwgt()
    safe_totals = np.where(totals > 0, totals, 1.0)

    def admissible(v: int, dest: int) -> bool:
        if counts[parts[v]] <= 1:  # never empty a part
            return False
        return bool(np.all(pw[dest] + graph.vwgt[v] <= cap[dest] + 1e-9))

    def norm_load(weights: np.ndarray) -> float:
        """Worst normalized load of a single part-weight row."""
        return float((weights / safe_totals).max())

    def move(v: int, dest: int) -> None:
        pw[parts[v]] -= graph.vwgt[v]
        pw[dest] += graph.vwgt[v]
        counts[parts[v]] -= 1
        counts[dest] += 1
        parts[v] = dest

    # --- balance repair ------------------------------------------------ #
    for _ in range(n):
        over = np.nonzero(np.any(pw > cap + 1e-9, axis=1))[0]
        if len(over) == 0:
            break
        src = int(over[0])
        members = np.nonzero(parts == src)[0]
        best_key: tuple[float, float] | None = None
        best_move: tuple[int, int] | None = None
        for v in members:
            conn = part_connectivity(graph, parts, int(v), k)
            for dest in range(k):
                if dest == src or not admissible(int(v), dest):
                    continue
                gain = conn[dest] - conn[src]
                key = (-gain, rng.random())
                if best_key is None or key < best_key:
                    best_key = key
                    best_move = (int(v), dest)
        if best_move is None:
            break
        move(*best_move)

    # --- gain passes ----------------------------------------------------#
    for _ in range(max_passes):
        moved = 0
        order = rng.permutation(n)
        for v in order:
            v = int(v)
            conn = part_connectivity(graph, parts, v, k)
            src = parts[v]
            if np.all(conn[np.arange(k) != src] == 0):
                continue  # interior vertex
            best_dest = -1
            best_gain = 0.0
            best_load = norm_load(pw[src])  # load of own part pre-move
            for dest in range(k):
                if dest == src or conn[dest] <= 0.0:
                    continue
                if not admissible(v, dest):
                    continue
                gain = conn[dest] - conn[src]
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_dest = dest
                elif (
                    abs(gain - best_gain) <= 1e-12
                    and gain >= -1e-12
                    and norm_load(pw[dest] + graph.vwgt[v]) < best_load - 1e-12
                ):
                    # Zero-gain balance-improving move.
                    best_dest = dest
                    best_load = norm_load(pw[dest] + graph.vwgt[v])
            if best_dest >= 0 and (best_gain > 1e-12 or best_dest != src):
                if best_gain > 1e-12 or norm_load(
                    pw[best_dest] + graph.vwgt[v]
                ) < norm_load(pw[src]):
                    move(v, best_dest)
                    moved += 1
        if moved == 0:
            break
    return parts
