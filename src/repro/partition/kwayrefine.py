"""Greedy k-way boundary refinement (multi-constraint aware).

After projecting a coarse k-way partition one level down, boundary vertices
are scanned in random order and moved to the adjacent part with the best cut
gain, subject to a per-constraint balance envelope.  Zero-gain moves are
taken when they reduce the worst normalized part load, which lets refinement
trade cut for balance the way METIS's k-way refinement does.

The hot path is incremental: a per-vertex connectivity table (``(n, k)``
edge weight into each part) is built **once** per call with a vectorized
sweep over the CSR arrays, then invalidated only in the neighborhood of
each moved vertex.  A cached external-weight vector makes the interior-
vertex test O(1), so passes cost O(boundary) instead of O(n · k).  The
original rescan-everything kernel survives as
:func:`repro.partition._reference.kway_refine_reference`, the differential
parity suite's oracle.
"""

from __future__ import annotations

import numpy as np

from repro.partition.csr import CSRGraph
from repro.partition.perf import RefineStats

__all__ = ["kway_refine", "part_connectivity", "connectivity_table"]


def part_connectivity(
    graph: CSRGraph, parts: np.ndarray, v: int, k: int
) -> np.ndarray:
    """Edge weight from ``v`` into each part, shape ``(k,)``."""
    conn = np.zeros(k, dtype=np.float64)
    np.add.at(conn, parts[graph.neighbors(v)], graph.neighbor_weights(v))
    return conn


def connectivity_table(
    graph: CSRGraph, parts: np.ndarray, k: int
) -> np.ndarray:
    """Full ``(n, k)`` connectivity table in one vectorized sweep.

    ``table[v, p]`` is the edge weight from ``v`` into part ``p`` — row
    ``v`` equals :func:`part_connectivity` for every vertex at once.
    """
    n = graph.n
    conn = np.zeros((n, k), dtype=np.float64)
    if n == 0 or len(graph.adjncy) == 0:
        return conn
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    np.add.at(conn, (src, parts[graph.adjncy]), graph.adjwgt)
    return conn


def _caps(
    graph: CSRGraph, k: int, target_fracs: np.ndarray, tolerance: float
) -> np.ndarray:
    totals = graph.total_vwgt()
    cap = tolerance * target_fracs[:, None] * totals[None, :]
    # A part must always be able to hold at least its heaviest single vertex.
    if graph.n:
        cap = np.maximum(cap, graph.vwgt.max(axis=0)[None, :])
    return cap


def kway_refine(
    graph: CSRGraph,
    parts: np.ndarray,
    k: int,
    target_fracs: np.ndarray | None = None,
    tolerance: float = 1.05,
    max_passes: int = 8,
    rng: np.random.Generator | None = None,
    stats: RefineStats | None = None,
    max_moves: int | None = None,
) -> np.ndarray:
    """Refine a k-way partition; returns a new assignment array.

    Parameters
    ----------
    target_fracs:
        Desired weight share per part (defaults to uniform ``1/k``).
    tolerance:
        Multiplicative envelope over the target share, per constraint.
    stats:
        Optional :class:`~repro.partition.perf.RefineStats`; the perf-guard
        tests assert exactly one connectivity-table build per call.
    max_moves:
        Optional cap on the total moves this call may make (balance repair
        plus gain passes) — the online rebalancer's incremental-migration
        knob.  ``None`` (the default) leaves behaviour bit-identical to
        the reference kernel.
    """
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n
    if n == 0 or k <= 1:
        return parts
    rng = rng or np.random.default_rng(0)
    stats = stats if stats is not None else RefineStats()
    budget = float("inf") if max_moves is None else int(max_moves)
    if budget <= 0:
        return parts
    if target_fracs is None:
        target_fracs = np.full(k, 1.0 / k)
    target_fracs = np.asarray(target_fracs, dtype=np.float64)

    cap = _caps(graph, k, target_fracs, tolerance)
    vwgt = graph.vwgt
    pw = np.zeros((k, graph.ncon), dtype=np.float64)
    np.add.at(pw, parts, vwgt)
    counts = np.bincount(parts, minlength=k)
    totals = graph.total_vwgt()
    safe_totals = np.where(totals > 0, totals, 1.0)

    # Python-scalar mirrors of the small per-part state.  The admissibility
    # and load tests run per candidate move (hundreds of thousands of times
    # per call); tiny-array numpy reductions dominate wall time there, while
    # python float arithmetic performs the *same IEEE operations* bit-for-
    # bit, so mirrored tests decide identically to the reference kernel.
    ncon = graph.ncon
    rcon = range(ncon)
    vw_list: list[list[float]] = vwgt.tolist()
    pw_list: list[list[float]] = pw.tolist()
    counts_list: list[int] = counts.tolist()
    cap_eps: list[list[float]] = (cap + 1e-9).tolist()
    safe_list: list[float] = safe_totals.tolist()

    # --- incremental state: built once, invalidated per-neighborhood --- #
    conn = connectivity_table(graph, parts, k)
    stats.conn_builds += 1
    # Total incident weight never changes with reassignment, so the
    # external weight (the boundary test) is tot - conn[v, parts[v]].
    tot = conn.sum(axis=1)
    ext = tot - conn[np.arange(n), parts]

    def admissible(v: int, dest: int) -> bool:
        if counts_list[parts[v]] <= 1:  # never empty a part
            return False
        pd = pw_list[dest]
        wv = vw_list[v]
        ce = cap_eps[dest]
        for c in rcon:
            if pd[c] + wv[c] > ce[c]:
                return False
        return True

    def norm_load_part(p: int) -> float:
        """Worst normalized load of part ``p`` as currently weighted."""
        row = pw_list[p]
        return max(row[c] / safe_list[c] for c in rcon)

    def norm_load_with(dest: int, v: int) -> float:
        """Worst normalized load of ``dest`` if ``v`` moved into it."""
        row = pw_list[dest]
        wv = vw_list[v]
        return max((row[c] + wv[c]) / safe_list[c] for c in rcon)

    def move(v: int, dest: int) -> None:
        """Move ``v`` and repair conn/ext in its neighborhood only."""
        src = parts[v]
        pw[src] -= vwgt[v]
        pw[dest] += vwgt[v]
        wv = vw_list[v]
        ps, pd = pw_list[src], pw_list[dest]
        for c in rcon:
            ps[c] -= wv[c]
            pd[c] += wv[c]
        counts[src] -= 1
        counts[dest] += 1
        counts_list[src] -= 1
        counts_list[dest] += 1
        parts[v] = dest
        nbrs = graph.neighbors(v)
        w = graph.neighbor_weights(v)
        np.subtract.at(conn, (nbrs, src), w)
        np.add.at(conn, (nbrs, dest), w)
        ext[nbrs] = tot[nbrs] - conn[nbrs, parts[nbrs]]
        ext[v] = tot[v] - conn[v, dest]
        stats.moves += 1
        stats.neighbor_updates += len(nbrs)

    # --- balance repair ------------------------------------------------ #
    for _ in range(n):
        if budget <= 0:
            break
        over = np.nonzero(np.any(pw > cap + 1e-9, axis=1))[0]
        if len(over) == 0:
            break
        src = int(over[0])
        members = np.nonzero(parts == src)[0]
        best_key: tuple[float, float] | None = None
        best_move: tuple[int, int] | None = None
        for v in members:
            v = int(v)
            conn_v = conn[v]
            for dest in range(k):
                if dest == src or not admissible(v, dest):
                    continue
                gain = conn_v[dest] - conn_v[src]
                key = (-gain, rng.random())
                if best_key is None or key < best_key:
                    best_key = key
                    best_move = (v, dest)
        if best_move is None:
            break
        move(*best_move)
        budget -= 1

    # --- gain passes ----------------------------------------------------#
    for _ in range(max_passes):
        if budget <= 0:
            break
        stats.passes += 1
        moved = 0
        order = rng.permutation(n)
        for v in order:
            if budget <= 0:
                break
            v = int(v)
            if ext[v] <= 0.0:
                continue  # interior vertex: no external connectivity
            stats.boundary_scans += 1
            src = int(parts[v])
            conn_v = conn[v]
            best_dest = -1
            best_gain = 0.0
            best_load = norm_load_part(src)  # load of own part pre-move
            for dest in np.nonzero(conn_v > 0.0)[0]:
                dest = int(dest)
                if dest == src:
                    continue
                if not admissible(v, dest):
                    continue
                gain = conn_v[dest] - conn_v[src]
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_dest = dest
                elif (
                    abs(gain - best_gain) <= 1e-12
                    and gain >= -1e-12
                    and norm_load_with(dest, v) < best_load - 1e-12
                ):
                    # Zero-gain balance-improving move.
                    best_dest = dest
                    best_load = norm_load_with(dest, v)
            if best_dest >= 0 and (best_gain > 1e-12 or best_dest != src):
                if best_gain > 1e-12 or norm_load_with(
                    best_dest, v
                ) < norm_load_part(src):
                    move(v, best_dest)
                    moved += 1
                    budget -= 1
        if moved == 0:
            break
    return parts
