"""Facade for all partitioners: :func:`part_graph`.

This mirrors the METIS entry point the paper calls: one function taking the
input graph (vertex weights = constraints, edge weights = objective), the
part count, and tolerance, and returning an assignment plus quality
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.partition.baselines import (
    greedy_kcluster,
    linear_partition,
    random_partition,
)
from repro.partition.csr import CSRGraph
from repro.partition.metrics import (
    edge_cut,
    imbalance_vector,
    max_imbalance,
    part_weights,
    weighted_edge_cut,
)
from repro.partition.multilevel import multilevel_kway
from repro.partition.recursive import recursive_bisection
from repro.partition.spectral import spectral_partition

__all__ = [
    "PartitionResult",
    "part_graph",
    "resolve_algorithm",
    "ALGORITHMS",
    "ALIASES",
]


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of a partitioning call.

    Attributes
    ----------
    parts:
        ``int64[n]`` assignment in ``0..k-1``.
    k, algorithm, seed:
        Echo of the request.
    edge_cut:
        Unweighted cut (number of crossing edges).
    weighted_cut:
        Weighted cut — the optimization objective.
    imbalance:
        Per-constraint imbalance factors (1.0 = perfect).
    part_weight:
        ``(k, ncon)`` per-part constraint sums.
    """

    parts: np.ndarray
    k: int
    algorithm: str
    seed: int
    edge_cut: int
    weighted_cut: float
    imbalance: np.ndarray
    part_weight: np.ndarray

    @property
    def max_imbalance(self) -> float:
        """Worst imbalance factor across constraints."""
        return float(self.imbalance.max()) if len(self.imbalance) else 1.0

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.algorithm}: k={self.k} cut={self.weighted_cut:.3f} "
            f"(edges={self.edge_cut}) imbalance={self.max_imbalance:.3f}"
        )


def _multilevel(graph, k, tolerance, rng, target_fracs):
    return multilevel_kway(graph, k, tolerance=tolerance, rng=rng,
                           target_fracs=target_fracs)


def _recursive(graph, k, tolerance, rng, target_fracs):
    return recursive_bisection(graph, k, tolerance=tolerance, rng=rng,
                               target_fracs=target_fracs)


def _spectral(graph, k, tolerance, rng, target_fracs):
    if target_fracs is not None:
        raise ValueError("spectral does not support target_fracs")
    return spectral_partition(graph, k, tolerance=tolerance, rng=rng)


def _random(graph, k, tolerance, rng, target_fracs):
    return random_partition(graph, k, rng=rng, target_fracs=target_fracs)


def _linear(graph, k, tolerance, rng, target_fracs):
    return linear_partition(graph, k, rng=rng, target_fracs=target_fracs)


def _kcluster(graph, k, tolerance, rng, target_fracs):
    if target_fracs is not None:
        raise ValueError("greedy-kcluster does not support target_fracs")
    return greedy_kcluster(graph, k, rng=rng)


ALGORITHMS: dict[str, Callable] = {
    "multilevel": _multilevel,
    "recursive": _recursive,
    "spectral": _spectral,
    "random": _random,
    "linear": _linear,
    "greedy-kcluster": _kcluster,
}

#: Accepted shorthands, resolved case-insensitively by :func:`part_graph`.
ALIASES: dict[str, str] = {
    "metis": "multilevel",
    "kway": "multilevel",
    "ml": "multilevel",
    "bisection": "recursive",
    "rb": "recursive",
    "hierarchical": "linear",
    "greedy": "greedy-kcluster",
    "kcluster": "greedy-kcluster",
}


def resolve_algorithm(algorithm: str) -> str:
    """Canonical algorithm name for ``algorithm`` (case-insensitive,
    ``_``/``-`` agnostic, aliases accepted); raises a ValueError listing
    the valid choices otherwise."""
    name = str(algorithm).strip().lower().replace("_", "-")
    name = ALIASES.get(name, name)
    if name not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; valid algorithms: "
            f"{', '.join(sorted(ALGORITHMS))} "
            f"(aliases: {', '.join(sorted(ALIASES))})"
        )
    return name


def part_graph(
    graph: CSRGraph,
    k: int,
    *,
    algorithm: str = "multilevel",
    tolerance: float = 1.05,
    seed: int = 0,
    target_fracs: np.ndarray | None = None,
    telemetry=None,
) -> PartitionResult:
    """Partition ``graph`` into ``k`` parts.

    Everything after the leading ``(graph, k)`` is keyword-only.

    Parameters
    ----------
    graph:
        Input graph; vertex-weight columns are the balance constraints and
        edge weights are the minimized objective.
    k:
        Number of parts (engine nodes in the emulation use case).
    algorithm:
        One of ``multilevel`` (default, METIS-like), ``recursive``,
        ``spectral``, ``random``, ``linear``, ``greedy-kcluster``.
        Matched case-insensitively; common aliases (``metis``, ``kway``,
        ``rb``, ...) are accepted.
    tolerance:
        Multiplicative balance envelope for the quality algorithms.
    seed:
        Seed for the dedicated RNG; identical calls are deterministic.
    target_fracs:
        Optional per-part weight shares (heterogeneous engine capacities);
        supported by ``multilevel``, ``recursive``, ``random`` and
        ``linear``.
    telemetry:
        Optional :class:`repro.obs.telemetry.Telemetry`; records a
        ``partition/<algorithm>`` span plus call/vertex/edge counters.
    """
    from repro.obs.telemetry import ensure_telemetry

    tel = ensure_telemetry(telemetry)
    algorithm = resolve_algorithm(algorithm)
    if k < 1:
        raise ValueError("k must be >= 1")
    if target_fracs is not None:
        target_fracs = np.asarray(target_fracs, dtype=np.float64)
        if target_fracs.shape != (k,):
            raise ValueError(f"target_fracs must have shape ({k},)")
        if np.any(target_fracs <= 0):
            raise ValueError("target fractions must be positive")
        target_fracs = target_fracs / target_fracs.sum()
    with tel.span(f"partition/{algorithm}"):
        if graph.n == 0:
            parts = np.zeros(0, dtype=np.int64)
        elif k == 1:
            parts = np.zeros(graph.n, dtype=np.int64)
        else:
            rng = np.random.default_rng(seed)
            parts = ALGORITHMS[algorithm](
                graph, k, tolerance, rng, target_fracs
            )
    parts = np.asarray(parts, dtype=np.int64)
    tel.count("partition.calls")
    tel.count("partition.vertices", graph.n)
    return PartitionResult(
        parts=parts,
        k=k,
        algorithm=algorithm,
        seed=seed,
        edge_cut=edge_cut(graph, parts) if graph.n else 0,
        weighted_cut=weighted_edge_cut(graph, parts) if graph.n else 0.0,
        imbalance=imbalance_vector(graph, parts, k, target_fracs)
        if graph.n
        else np.ones(graph.ncon),
        part_weight=part_weights(graph, parts, k),
    )
