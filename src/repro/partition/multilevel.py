"""Multilevel k-way partitioning driver.

The standard three-phase scheme (Karypis & Kumar):

1. **Coarsen** with heavy-edge matching until ~``max(30, 15 k)`` vertices.
2. **Initial partition** of the coarsest graph by recursive bisection.
3. **Uncoarsen** — project the partition one level at a time and run greedy
   k-way refinement (multi-constraint aware) at each level.
"""

from __future__ import annotations

import numpy as np

from repro.partition.coarsen import coarsen_to
from repro.partition.csr import CSRGraph
from repro.partition.kwayrefine import kway_refine
from repro.partition.recursive import recursive_bisection

__all__ = ["multilevel_kway"]


def multilevel_kway(
    graph: CSRGraph,
    k: int,
    tolerance: float = 1.05,
    rng: np.random.Generator | None = None,
    coarsen_target: int | None = None,
    n_tries: int = 4,
    refine_passes: int = 8,
    target_fracs: np.ndarray | None = None,
) -> np.ndarray:
    """Partition ``graph`` into ``k`` balanced parts, minimizing weighted cut.

    Parameters
    ----------
    tolerance:
        Multiplicative balance envelope per constraint (1.05 = 5 % slack,
        METIS's default ballpark).
    coarsen_target:
        Stop coarsening at this many vertices (default ``max(30, 15 k)``).
    target_fracs:
        Optional uneven part-size shares (heterogeneous engine nodes);
        shape ``(k,)``, normalized internally.

    Returns
    -------
    ``int64[n]`` part assignment in ``0..k-1``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return np.zeros(graph.n, dtype=np.int64)
    if k > graph.n:
        raise ValueError(f"cannot split {graph.n} vertices into {k} parts")
    rng = rng or np.random.default_rng(0)
    if coarsen_target is None:
        coarsen_target = max(30, 15 * k)

    levels = coarsen_to(graph, coarsen_target, rng)
    coarsest = levels[-1].coarse if levels else graph

    parts = recursive_bisection(
        coarsest, k, tolerance=tolerance, rng=rng, n_tries=n_tries,
        target_fracs=target_fracs,
    )
    parts = kway_refine(
        coarsest, parts, k, target_fracs=target_fracs, tolerance=tolerance,
        max_passes=refine_passes, rng=rng,
    )
    for level in reversed(levels):
        parts = parts[level.cmap]
        parts = kway_refine(
            level.fine, parts, k, target_fracs=target_fracs,
            tolerance=tolerance, max_passes=refine_passes, rng=rng,
        )
    return parts
