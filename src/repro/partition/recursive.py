"""Recursive bisection k-way partitioning.

Splits the graph into ``ceil(k/2) : floor(k/2)`` weight shares with greedy
graph growing + FM, then recurses on the two induced subgraphs.  Used both
as a standalone algorithm and to seed the coarsest level of the multilevel
k-way driver.
"""

from __future__ import annotations

import numpy as np

from repro.partition.csr import CSRGraph
from repro.partition.fm import fm_refine
from repro.partition.initial import greedy_graph_growing

__all__ = ["recursive_bisection", "induced_subgraph"]


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced on ``vertices``.

    Returns the subgraph and the array mapping subgraph ids back to the
    parent graph's vertex ids.  Vectorized: gathers the selected vertices'
    CSR slots with a repeat/cumsum offset trick instead of a per-edge
    python loop, so each bisection level costs O(m') numpy work.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    local = np.full(graph.n, -1, dtype=np.int64)
    local[vertices] = np.arange(len(vertices))
    # Gather all CSR slots belonging to the selected vertices.
    starts = graph.xadj[vertices]
    counts = graph.xadj[vertices + 1] - starts
    if counts.sum() == 0:
        return (
            CSRGraph.from_edge_arrays(
                len(vertices),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.float64),
                vwgt=graph.vwgt[vertices],
            ),
            vertices,
        )
    slot_src = np.repeat(vertices, counts)
    offsets = np.arange(int(counts.sum())) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    slots = np.repeat(starts, counts) + offsets
    nbrs = graph.adjncy[slots]
    lu = local[nbrs]
    lv = local[slot_src]
    keep = (lu >= 0) & (lv < lu)  # inside the set, each edge once
    sub = CSRGraph.from_edge_arrays(
        len(vertices),
        lv[keep],
        lu[keep],
        graph.adjwgt[slots][keep],
        vwgt=graph.vwgt[vertices],
        first_appearance=True,
    )
    return sub, vertices


def recursive_bisection(
    graph: CSRGraph,
    k: int,
    tolerance: float = 1.05,
    rng: np.random.Generator | None = None,
    n_tries: int = 4,
    fm_passes: int = 8,
    target_fracs: np.ndarray | None = None,
) -> np.ndarray:
    """Partition ``graph`` into ``k`` parts by recursive bisection.

    ``target_fracs`` (shape ``(k,)``, summing to 1) requests uneven part
    sizes — the heterogeneous-engine-cluster extension: an engine node with
    twice the capacity gets twice the weight share.  Defaults to uniform.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = rng or np.random.default_rng(0)
    if target_fracs is None:
        fracs = np.full(k, 1.0 / k)
    else:
        fracs = np.asarray(target_fracs, dtype=np.float64)
        if fracs.shape != (k,):
            raise ValueError(f"target_fracs must have shape ({k},)")
        if np.any(fracs <= 0):
            raise ValueError("target fractions must be positive")
        fracs = fracs / fracs.sum()
    parts = np.zeros(graph.n, dtype=np.int64)
    _recurse(graph, np.arange(graph.n, dtype=np.int64), k, 0, parts, tolerance,
             rng, n_tries, fm_passes, fracs)
    return parts


def _recurse(
    graph: CSRGraph,
    vertices: np.ndarray,
    k: int,
    label_base: int,
    parts: np.ndarray,
    tolerance: float,
    rng: np.random.Generator,
    n_tries: int,
    fm_passes: int,
    fracs: np.ndarray,
) -> None:
    if k == 1 or len(vertices) == 0:
        parts[vertices] = label_base
        return
    sub, back = induced_subgraph(graph, vertices)
    k_left = (k + 1) // 2
    frac = float(fracs[:k_left].sum() / fracs.sum())
    if sub.n <= 1:
        parts[back] = label_base
        return
    bisect = greedy_graph_growing(sub, frac, rng, n_tries=n_tries)
    # The full tolerance applies at every bisection.  Tightening it per
    # level (to stop compounding) makes coarse-granularity splits — e.g.
    # five equal sites into 3:2 — infeasible and forces cuts through
    # subnets, which is far worse than a few percent of compounded
    # imbalance; the k-way refinement pass cleans the rest up.
    bisect = fm_refine(
        sub, bisect, target_frac=frac, tolerance=tolerance,
        max_passes=fm_passes, rng=rng,
    )
    left = back[bisect == 0]
    right = back[bisect == 1]
    # Guard: an empty side would lose parts; fall back to a weight split.
    if len(left) == 0 or len(right) == 0:
        order = rng.permutation(back)
        split = max(1, int(round(len(order) * frac)))
        left, right = order[:split], order[split:]
    _recurse(graph, left, k_left, label_base, parts, tolerance, rng,
             n_tries, fm_passes, fracs[:k_left])
    _recurse(graph, right, k - k_left, label_base + k_left, parts, tolerance,
             rng, n_tries, fm_passes, fracs[k_left:])
