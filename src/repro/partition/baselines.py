"""Baseline partitioners from the paper's related-work discussion.

- :func:`random_partition` — uniform random balanced assignment.
- :func:`linear_partition` — BFS ("hierarchical") ordering chopped into k
  weight-balanced chunks; stands in for the simple hierarchical partitioners
  several emulation projects use.
- :func:`greedy_kcluster` — the randomized greedy k-cluster algorithm used
  by ModelNet/Netbed [10]: pick k random seed nodes, then in round-robin
  fashion each cluster greedily claims an unassigned vertex adjacent to its
  current component.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.partition.csr import CSRGraph

__all__ = ["random_partition", "linear_partition", "greedy_kcluster"]


def random_partition(
    graph: CSRGraph,
    k: int,
    rng: np.random.Generator | None = None,
    target_fracs: np.ndarray | None = None,
) -> np.ndarray:
    """Shuffled assignment: balanced in vertex count (or the requested
    count shares), oblivious to weights and edges."""
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(graph.n)
    parts = np.zeros(graph.n, dtype=np.int64)
    if target_fracs is None:
        parts[order] = np.arange(graph.n) % k
        return parts
    fracs = np.asarray(target_fracs, dtype=np.float64)
    fracs = fracs / fracs.sum()
    bounds = np.floor(np.cumsum(fracs) * graph.n + 0.5).astype(np.int64)
    labels = np.searchsorted(bounds, np.arange(graph.n), side="right")
    parts[order] = np.minimum(labels, k - 1)
    return parts


def _bfs_order(graph: CSRGraph, start: int) -> np.ndarray:
    """BFS visitation order covering all components (restarts at the lowest
    unvisited id)."""
    seen = np.zeros(graph.n, dtype=bool)
    order: list[int] = []
    queue: deque[int] = deque()
    for root in [start] + list(range(graph.n)):
        if seen[root]:
            continue
        seen[root] = True
        queue.append(root)
        while queue:
            v = queue.popleft()
            order.append(v)
            for u in sorted(int(x) for x in graph.neighbors(v)):
                if not seen[u]:
                    seen[u] = True
                    queue.append(u)
    return np.array(order, dtype=np.int64)


def linear_partition(
    graph: CSRGraph,
    k: int,
    rng: np.random.Generator | None = None,
    target_fracs: np.ndarray | None = None,
) -> np.ndarray:
    """Chop a BFS ordering into ``k`` chunks of roughly equal vertex weight.

    Uses the mean of the normalized constraint columns as the chunking
    weight, so multi-constraint graphs are handled gracefully.
    """
    rng = rng or np.random.default_rng(0)
    if graph.n == 0:
        return np.zeros(0, dtype=np.int64)
    start = int(rng.integers(graph.n))
    order = _bfs_order(graph, start)
    totals = graph.total_vwgt()
    norm = graph.vwgt / np.where(totals > 0, totals, 1.0)
    weight = norm.mean(axis=1)
    cum = np.cumsum(weight[order])
    total = cum[-1] if len(cum) else 0.0
    parts = np.zeros(graph.n, dtype=np.int64)
    if total <= 0:
        parts[order] = np.arange(graph.n) * k // max(1, graph.n)
        return parts
    if target_fracs is None:
        # Vertex i (in BFS order) goes to the chunk its cumulative weight
        # lands in.
        assignment = np.minimum((cum / total * k).astype(np.int64), k - 1)
    else:
        fracs = np.asarray(target_fracs, dtype=np.float64)
        bounds = np.cumsum(fracs / fracs.sum()) * total
        assignment = np.minimum(
            np.searchsorted(bounds, cum, side="left"), k - 1
        )
    parts[order] = assignment
    return parts


def greedy_kcluster(
    graph: CSRGraph, k: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Randomized greedy k-cluster (ModelNet-style).

    Selects ``k`` random seeds, then grows the clusters round-robin: on its
    turn a cluster claims the unassigned neighbour reached by the heaviest
    frontier edge.  A cluster with an empty frontier steals a random
    unassigned vertex, so every vertex is eventually assigned.
    """
    rng = rng or np.random.default_rng(0)
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if k > n:
        raise ValueError(f"cannot build {k} clusters from {n} vertices")
    parts = np.full(n, -1, dtype=np.int64)
    seeds = rng.choice(n, size=k, replace=False)
    frontiers: list[list[tuple[float, int]]] = [[] for _ in range(k)]
    for c, s in enumerate(seeds):
        parts[s] = c
        for u, w in zip(graph.neighbors(int(s)), graph.neighbor_weights(int(s))):
            frontiers[c].append((float(w), int(u)))
    unassigned = int((parts == -1).sum())
    while unassigned > 0:
        progressed = False
        for c in range(k):
            if unassigned == 0:
                break
            # Pop heaviest frontier edge leading to an unassigned vertex.
            frontier = frontiers[c]
            frontier.sort()  # ascending; take from the back
            claimed = -1
            while frontier:
                _, v = frontier.pop()
                if parts[v] == -1:
                    claimed = v
                    break
            if claimed == -1:
                free = np.nonzero(parts == -1)[0]
                if len(free) == 0:
                    break
                claimed = int(rng.choice(free))
            parts[claimed] = c
            unassigned -= 1
            progressed = True
            for u, w in zip(
                graph.neighbors(claimed), graph.neighbor_weights(claimed)
            ):
                if parts[u] == -1:
                    frontiers[c].append((float(w), int(u)))
        if not progressed:
            break
    # Safety: anything left goes round-robin.
    left = np.nonzero(parts == -1)[0]
    parts[left] = np.arange(len(left)) % k
    return parts
