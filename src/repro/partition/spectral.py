"""Spectral partitioning baseline.

Recursive spectral bisection on the weighted graph Laplacian: the Fiedler
vector orders vertices, and the split point is chosen at the target weight
fraction.  Included because spectral methods are the classic alternative the
graph-partitioning literature (Chaco et al.) compares against.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.partition.csr import CSRGraph
from repro.partition.fm import fm_refine
from repro.partition.recursive import induced_subgraph

__all__ = ["spectral_bisection", "spectral_partition", "fiedler_vector"]

_DENSE_CUTOFF = 800  # use dense eigensolver below this size (more robust)


def _laplacian(graph: CSRGraph) -> sp.csr_matrix:
    n = graph.n
    rows = np.repeat(np.arange(n), np.diff(graph.xadj))
    adj = sp.csr_matrix(
        (graph.adjwgt, (rows, graph.adjncy)), shape=(n, n)
    )
    deg = np.asarray(adj.sum(axis=1)).ravel()
    return sp.diags(deg) - adj


def fiedler_vector(graph: CSRGraph, rng: np.random.Generator) -> np.ndarray:
    """Second-smallest eigenvector of the weighted Laplacian.

    Falls back to a dense solve for small or ill-conditioned cases.
    """
    n = graph.n
    if n < 3:
        return np.arange(n, dtype=np.float64)
    lap = _laplacian(graph)
    if n <= _DENSE_CUTOFF:
        vals, vecs = np.linalg.eigh(lap.toarray())
        order = np.argsort(vals)
        return vecs[:, order[1]]
    v0 = rng.standard_normal(n)
    try:
        vals, vecs = spla.eigsh(lap, k=2, sigma=0, which="LM", v0=v0)
        order = np.argsort(vals)
        return vecs[:, order[1]]
    except Exception:
        vals, vecs = np.linalg.eigh(lap.toarray())
        order = np.argsort(vals)
        return vecs[:, order[1]]


def spectral_bisection(
    graph: CSRGraph,
    target_frac: float,
    rng: np.random.Generator,
    tolerance: float = 1.05,
    fm_passes: int = 4,
) -> np.ndarray:
    """0/1 bisection from the Fiedler ordering, FM-polished."""
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    fiedler = fiedler_vector(graph, rng)
    order = np.argsort(fiedler, kind="stable")
    norm = graph.vwgt / np.where(
        graph.total_vwgt() > 0, graph.total_vwgt(), 1.0
    )
    mean_share = norm.mean(axis=1)
    cum = np.cumsum(mean_share[order])
    split = int(np.searchsorted(cum, target_frac, side="left")) + 1
    split = min(max(split, 1), n - 1) if n > 1 else 0
    parts = np.ones(n, dtype=np.int64)
    parts[order[:split]] = 0
    return fm_refine(
        graph, parts, target_frac=target_frac, tolerance=tolerance,
        max_passes=fm_passes, rng=rng,
    )


def spectral_partition(
    graph: CSRGraph,
    k: int,
    tolerance: float = 1.05,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """k-way partition by recursive spectral bisection."""
    rng = rng or np.random.default_rng(0)
    parts = np.zeros(graph.n, dtype=np.int64)
    _recurse(graph, np.arange(graph.n, dtype=np.int64), k, 0, parts,
             tolerance, rng)
    return parts


def _recurse(graph, vertices, k, base, parts, tolerance, rng) -> None:
    if k == 1 or len(vertices) == 0:
        parts[vertices] = base
        return
    sub, back = induced_subgraph(graph, vertices)
    k_left = (k + 1) // 2
    if sub.n <= 1:
        parts[back] = base
        return
    bisect = spectral_bisection(sub, k_left / k, rng, tolerance=tolerance)
    left, right = back[bisect == 0], back[bisect == 1]
    if len(left) == 0 or len(right) == 0:
        order = rng.permutation(back)
        split = max(1, int(round(len(order) * k_left / k)))
        left, right = order[:split], order[split:]
    _recurse(graph, left, k_left, base, parts, tolerance, rng)
    _recurse(graph, right, k - k_left, base + k_left, parts, tolerance, rng)
