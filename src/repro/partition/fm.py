"""Fiduccia–Mattheyses (FM) bisection refinement.

Given a 0/1 partition, FM performs passes of locked single-vertex moves in
best-gain order, keeping the best prefix of each pass.  Moves must respect a
per-constraint balance envelope; a pre-pass restores balance when the input
partition violates it (which happens after projecting a coarse partition to
a finer level).

The gain table is built **once** per call (a vectorized O(m) sweep over the
CSR arrays) and maintained incrementally from then on: every move — repair
moves, pass moves, and best-prefix rollbacks alike — touches only the moved
vertex's neighborhood.  The original per-pass full-rescan kernel survives as
:func:`repro.partition._reference.fm_refine_reference`, the oracle the
differential parity suite checks this implementation against.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.csr import CSRGraph
from repro.partition.perf import RefineStats

__all__ = ["fm_refine", "bisection_gains"]


def bisection_gains(graph: CSRGraph, parts: np.ndarray) -> np.ndarray:
    """Cut gain of flipping each vertex to the other side.

    ``gain[v] = external(v) - internal(v)`` where external/internal are the
    incident edge weights crossing / not crossing the cut.  Computed in one
    vectorized sweep over the CSR arrays.
    """
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    cross = parts[graph.adjncy] != parts[src]
    signed = np.where(cross, graph.adjwgt, -graph.adjwgt)
    return np.bincount(src, weights=signed, minlength=n)


def _part_weights(graph: CSRGraph, parts: np.ndarray) -> np.ndarray:
    pw = np.zeros((2, graph.ncon), dtype=np.float64)
    np.add.at(pw, parts, graph.vwgt)
    return pw


def fm_refine(
    graph: CSRGraph,
    parts: np.ndarray,
    target_frac: float = 0.5,
    tolerance: float = 1.05,
    max_passes: int = 8,
    rng: np.random.Generator | None = None,
    stats: RefineStats | None = None,
) -> np.ndarray:
    """Refine a bisection in place-free style (returns a new array).

    Parameters
    ----------
    graph, parts:
        The graph and the current 0/1 assignment.
    target_frac:
        Desired fraction of each weight constraint in part 0.
    tolerance:
        Multiplicative balance envelope: part ``p`` may hold at most
        ``tolerance * target_share[p]`` of each constraint.
    max_passes:
        FM passes; each pass stops improving when its best prefix is empty.
    stats:
        Optional :class:`~repro.partition.perf.RefineStats` filled with
        operation counts (the perf-guard tests assert exactly one full
        gain-table build per call).
    """
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n
    if n == 0:
        return parts
    rng = rng or np.random.default_rng(0)
    stats = stats if stats is not None else RefineStats()

    totals = graph.total_vwgt()
    share = np.array([target_frac, 1.0 - target_frac])
    # Max allowed weight per (part, constraint).  The additive heaviest-
    # vertex slack is essential: classic FM escapes local optima through
    # alternating moves that transiently exceed the envelope by one vertex.
    cap = (
        tolerance * share[:, None] * totals[None, :]
        + graph.vwgt.max(axis=0)[None, :]
    )

    pw = _part_weights(graph, parts)
    counts = np.bincount(parts, minlength=2)

    # The hot path runs on python scalars.  FM makes hundreds of thousands
    # of single-vertex moves (including rollbacks), and per-move numpy
    # overhead on length-ncon rows and degree-sized slices costs ~50x the
    # identical python float arithmetic.  Every mirrored update below is an
    # element-wise IEEE add/subtract applied in the same order as the numpy
    # reference, so the arithmetic — and therefore every decision — matches
    # the reference kernel bit-for-bit.
    ncon = graph.ncon
    rcon = range(ncon)
    vw_list: list[list[float]] = graph.vwgt.tolist()
    pw_list: list[list[float]] = pw.tolist()
    counts_list: list[int] = counts.tolist()
    cap_eps: list[list[float]] = (cap + 1e-9).tolist()
    parts_l: list[int] = parts.tolist()
    xadj_l: list[int] = graph.xadj.tolist()
    adjncy_l: list[int] = graph.adjncy.tolist()
    adjwgt_l: list[float] = graph.adjwgt.tolist()

    # The only full gain-table build of the call; every move below updates
    # it through the moved vertex's neighborhood.
    gains: list[float] = bisection_gains(graph, parts).tolist()
    stats.full_gain_builds += 1

    def admissible(v: int, dest: int) -> bool:
        if counts_list[1 - dest] <= 1:  # never empty a side
            return False
        pd = pw_list[dest]
        wv = vw_list[v]
        ce = cap_eps[dest]
        for c in rcon:
            if pd[c] + wv[c] > ce[c]:
                return False
        return True

    def apply_move(v: int, dest: int) -> None:
        """Move ``v`` and repair the gain table in its neighborhood."""
        src = parts_l[v]
        wv = vw_list[v]
        ps, pd = pw_list[src], pw_list[dest]
        for c in rcon:
            ps[c] -= wv[c]
            pd[c] += wv[c]
        counts_list[src] -= 1
        counts_list[dest] += 1
        parts_l[v] = dest
        # Edge (v, u) flips internal/external: neighbors left behind on the
        # source side gain 2w, neighbors on the destination side lose 2w.
        lo, hi = xadj_l[v], xadj_l[v + 1]
        for i in range(lo, hi):
            u = adjncy_l[i]
            if parts_l[u] == src:
                gains[u] += 2.0 * adjwgt_l[i]
            else:
                gains[u] -= 2.0 * adjwgt_l[i]
        gains[v] = -gains[v]
        stats.moves += 1
        stats.neighbor_updates += hi - lo

    # --- balance repair pre-pass -------------------------------------- #
    # Projected partitions may start outside the envelope; FM's best-prefix
    # rule would undo the (negative-gain) moves needed to repair them, so
    # repair explicitly first: repeatedly move the least-damaging vertex out
    # of the overloaded side.
    for _ in range(n):
        over = [
            p
            for p in (0, 1)
            if any(pw_list[p][c] > cap_eps[p][c] for c in rcon)
        ]
        if not over:
            break
        src = over[0]
        best_v = -1
        best_gain = 0.0
        for v in range(n):  # first-max, like np.argmax over the candidates
            if parts_l[v] == src and (best_v < 0 or gains[v] > best_gain):
                best_v, best_gain = v, gains[v]
        if best_v < 0:
            break
        if not admissible(best_v, 1 - src):
            # Receiving side is also at capacity; moving would just swap the
            # violation, so stop.
            break
        apply_move(best_v, 1 - src)

    for _ in range(max_passes):
        stats.passes += 1
        locked = [False] * n
        heap: list[tuple[float, float, int]] = []
        for v in range(n):
            heapq.heappush(heap, (-gains[v], rng.random(), v))

        moves: list[tuple[int, int]] = []  # (vertex, previous part)
        cum = 0.0
        best_cum = 0.0
        best_len = 0
        stale_limit = n  # whole pass

        while heap and len(moves) < stale_limit:
            neg_gain, _, v = heapq.heappop(heap)
            if locked[v]:
                continue
            if -neg_gain != gains[v]:  # stale entry
                heapq.heappush(heap, (-gains[v], rng.random(), v))
                continue
            dest = 1 - parts_l[v]
            if not admissible(v, dest):
                locked[v] = True  # cannot move this pass
                continue
            moved_gain = gains[v]
            prev = parts_l[v]
            apply_move(v, dest)
            locked[v] = True
            moves.append((v, prev))
            cum += moved_gain
            if cum > best_cum + 1e-12:
                best_cum = cum
                best_len = len(moves)
            # apply_move already updated every neighbor's gain; re-enqueue
            # the unlocked ones (locked vertices stay out of this pass but
            # their table entries are now current, so no pass-start rescan
            # is ever needed).
            for i in range(xadj_l[v], xadj_l[v + 1]):
                u = adjncy_l[i]
                if locked[u]:
                    continue
                heapq.heappush(heap, (-gains[u], rng.random(), u))

        # Roll back moves beyond the best prefix (gain table follows along).
        for v, prev in reversed(moves[best_len:]):
            apply_move(v, prev)
        if best_len == 0:
            break
    return np.array(parts_l, dtype=np.int64)
