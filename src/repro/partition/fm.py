"""Fiduccia–Mattheyses (FM) bisection refinement.

Given a 0/1 partition, FM performs passes of locked single-vertex moves in
best-gain order, keeping the best prefix of each pass.  Moves must respect a
per-constraint balance envelope; a pre-pass restores balance when the input
partition violates it (which happens after projecting a coarse partition to
a finer level).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.csr import CSRGraph

__all__ = ["fm_refine", "bisection_gains"]


def bisection_gains(graph: CSRGraph, parts: np.ndarray) -> np.ndarray:
    """Cut gain of flipping each vertex to the other side.

    ``gain[v] = external(v) - internal(v)`` where external/internal are the
    incident edge weights crossing / not crossing the cut.
    """
    n = graph.n
    gains = np.zeros(n, dtype=np.float64)
    for v in range(n):
        weights = graph.neighbor_weights(v)
        same = parts[graph.neighbors(v)] == parts[v]
        gains[v] = float(weights[~same].sum() - weights[same].sum())
    return gains


def _part_weights(graph: CSRGraph, parts: np.ndarray) -> np.ndarray:
    pw = np.zeros((2, graph.ncon), dtype=np.float64)
    np.add.at(pw, parts, graph.vwgt)
    return pw


def fm_refine(
    graph: CSRGraph,
    parts: np.ndarray,
    target_frac: float = 0.5,
    tolerance: float = 1.05,
    max_passes: int = 8,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Refine a bisection in place-free style (returns a new array).

    Parameters
    ----------
    graph, parts:
        The graph and the current 0/1 assignment.
    target_frac:
        Desired fraction of each weight constraint in part 0.
    tolerance:
        Multiplicative balance envelope: part ``p`` may hold at most
        ``tolerance * target_share[p]`` of each constraint.
    max_passes:
        FM passes; each pass stops improving when its best prefix is empty.
    """
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n
    if n == 0:
        return parts
    rng = rng or np.random.default_rng(0)

    totals = graph.total_vwgt()
    share = np.array([target_frac, 1.0 - target_frac])
    # Max allowed weight per (part, constraint).  The additive heaviest-
    # vertex slack is essential: classic FM escapes local optima through
    # alternating moves that transiently exceed the envelope by one vertex.
    cap = (
        tolerance * share[:, None] * totals[None, :]
        + graph.vwgt.max(axis=0)[None, :]
    )

    pw = _part_weights(graph, parts)
    counts = np.bincount(parts, minlength=2)

    def admissible(v: int, dest: int) -> bool:
        if counts[1 - dest] <= 1:  # never empty a side
            return False
        new = pw[dest] + graph.vwgt[v]
        return bool(np.all(new <= cap[dest] + 1e-9))

    def apply_move(v: int, dest: int) -> None:
        src = parts[v]
        pw[src] -= graph.vwgt[v]
        pw[dest] += graph.vwgt[v]
        counts[src] -= 1
        counts[dest] += 1
        parts[v] = dest

    # --- balance repair pre-pass -------------------------------------- #
    # Projected partitions may start outside the envelope; FM's best-prefix
    # rule would undo the (negative-gain) moves needed to repair them, so
    # repair explicitly first: repeatedly move the least-damaging vertex out
    # of the overloaded side.
    for _ in range(n):
        over = [
            p for p in (0, 1) if np.any(pw[p] > cap[p] + 1e-9)
        ]
        if not over:
            break
        src = over[0]
        gains = bisection_gains(graph, parts)
        candidates = np.nonzero(parts == src)[0]
        if len(candidates) == 0:
            break
        best_v = int(candidates[np.argmax(gains[candidates])])
        if not admissible(best_v, 1 - src):
            # Receiving side is also at capacity; moving would just swap the
            # violation, so stop.
            break
        apply_move(best_v, 1 - src)

    for _ in range(max_passes):
        gains = bisection_gains(graph, parts)
        locked = np.zeros(n, dtype=bool)
        heap: list[tuple[float, float, int]] = []
        for v in range(n):
            heapq.heappush(heap, (-gains[v], rng.random(), v))

        moves: list[tuple[int, int]] = []  # (vertex, previous part)
        cum = 0.0
        best_cum = 0.0
        best_len = 0
        stale_limit = n  # whole pass

        while heap and len(moves) < stale_limit:
            neg_gain, _, v = heapq.heappop(heap)
            if locked[v]:
                continue
            if -neg_gain != gains[v]:  # stale entry
                heapq.heappush(heap, (-gains[v], rng.random(), v))
                continue
            dest = 1 - parts[v]
            if not admissible(v, dest):
                locked[v] = True  # cannot move this pass
                continue
            prev = parts[v]
            apply_move(v, dest)
            locked[v] = True
            moves.append((v, prev))
            cum += gains[v]
            if cum > best_cum + 1e-12:
                best_cum = cum
                best_len = len(moves)
            # Update neighbour gains: edge (v, u) flips internal/external.
            for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
                u = int(u)
                if locked[u]:
                    continue
                delta = 2.0 * float(w) if parts[u] == prev else -2.0 * float(w)
                gains[u] += delta
                heapq.heappush(heap, (-gains[u], rng.random(), u))
            gains[v] = -gains[v]

        # Roll back moves beyond the best prefix.
        for v, prev in reversed(moves[best_len:]):
            apply_move(v, prev)
        if best_len == 0:
            break
    return parts
