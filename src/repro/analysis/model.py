"""Data model for the :mod:`repro.analysis` static-analysis pass.

The pass operates on a :class:`Project`: every python module under a
``src`` tree (and, optionally, a ``tests`` tree) parsed once into a
:class:`ParsedModule` — source text, AST, and the suppression comments
extracted from the token stream.  Rules walk these parsed modules and
emit :class:`Finding` rows; the runner filters findings through the
suppressions and sorts them into a stable report order.

Suppression syntax (checked by ``tests/analysis``):

- ``# massf: ignore[rule-id]`` on the line a finding is reported at
  suppresses that rule there (several ids may be comma-separated);
- ``# massf: ignore`` with no rule list suppresses every rule on the
  line (discouraged — name the rule so the intent survives edits);
- ``# massf: ignore-file[rule-id]`` anywhere in a file suppresses the
  named rules for the whole file.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

__all__ = [
    "AnalysisError",
    "Severity",
    "Finding",
    "ParsedModule",
    "Project",
    "PARSE_ERROR_RULE",
    "parse_source",
]

#: Pseudo-rule id attached to findings for files that fail to parse.
PARSE_ERROR_RULE = "parse-error"

_SUPPRESS_RE = re.compile(
    r"#\s*massf:\s*(ignore-file|ignore)\s*(?:\[([^\]]*)\])?"
)

#: Wildcard entry meaning "every rule" in a suppression set.
ALL_RULES = "*"


class AnalysisError(Exception):
    """Internal error: the check could not be completed at all.

    The CLI maps this (and any other unexpected exception) to exit
    code 1, distinct from exit 2 = "the check ran and found problems".
    """


class Severity(str, Enum):
    """How bad a finding is; ``error`` findings fail the build."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix path relative to the project root
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value}[{self.rule}] {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
        }


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Extract per-line and file-level suppression sets from comments."""
    per_line, file_level, _ = _parse_suppressions_full(source)
    return per_line, file_level


def _parse_suppressions_full(
    source: str,
) -> tuple[
    dict[int, frozenset[str]], frozenset[str], dict[str, int]
]:
    """Suppressions plus the comment line of each file-level ignore
    (so the ``unused-ignore`` meta-rule can anchor stale ones)."""
    per_line: dict[int, set[str]] = {}
    file_level: set[str] = set()
    file_lines: dict[str, int] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:  # unparsable file: no suppressions
        comments = []
    for line, text in comments:
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        kind, rule_list = match.group(1), match.group(2)
        if rule_list is None:
            rules = {ALL_RULES}
        else:
            rules = {r.strip() for r in rule_list.split(",") if r.strip()}
            if not rules:
                rules = {ALL_RULES}
        if kind == "ignore-file":
            file_level |= rules
            for rule in rules:
                file_lines.setdefault(rule, line)
        else:
            per_line.setdefault(line, set()).update(rules)
    return (
        {line: frozenset(rules) for line, rules in per_line.items()},
        frozenset(file_level),
        file_lines,
    )


@dataclass
class ParsedModule:
    """One python file, parsed and ready for rules to walk."""

    path: Path  # absolute path on disk
    rel: str  # posix path relative to the project root
    name: str  # dotted module name relative to the source root
    source: str
    tree: ast.Module
    line_ignores: dict[int, frozenset[str]] = field(default_factory=dict)
    file_ignores: frozenset[str] = frozenset()
    #: rule id (or ``*``) -> line of its ``ignore-file`` comment
    file_ignore_lines: dict[str, int] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """Dotted name of the package containing this module."""
        if self.path.name == "__init__.py":
            return self.name
        return self.name.rpartition(".")[0]

    @property
    def package_dir(self) -> Path:
        return self.path.parent

    @property
    def is_reference(self) -> bool:
        return self.path.name == "_reference.py"

    @property
    def has_reference_oracle(self) -> bool:
        """True when this module's package ships a ``_reference.py``."""
        return (self.package_dir / "_reference.py").is_file()

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_ignores or ALL_RULES in self.file_ignores:
            return True
        at_line = self.line_ignores.get(line)
        if at_line is None:
            return False
        return rule in at_line or ALL_RULES in at_line


def _module_name(rel_to_src: Path) -> str:
    parts = list(rel_to_src.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def parse_source(
    path: Path, rel: str, name: str, source: str
) -> "ParsedModule | Finding":
    """Parse one file; a :class:`Finding` row when it does not parse.

    Shared by :meth:`Project.load` and the runner's cached file scan
    (which reads sources once, hashes them, and only parses misses).
    """
    try:
        parsed = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            rule=PARSE_ERROR_RULE,
            path=rel,
            line=int(exc.lineno or 1),
            col=int(exc.offset or 0),
            message=f"file does not parse: {exc.msg}",
        )
    line_ignores, file_ignores, file_lines = \
        _parse_suppressions_full(source)
    return ParsedModule(
        path=path,
        rel=rel,
        name=name,
        source=source,
        tree=parsed,
        line_ignores=line_ignores,
        file_ignores=file_ignores,
        file_ignore_lines=file_lines,
    )


def _load_tree(
    root: Path, tree_root: Path, failures: list[Finding]
) -> list[ParsedModule]:
    modules: list[ParsedModule] = []
    for path in sorted(tree_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root).as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {rel}: {exc}") from exc
        parsed = parse_source(
            path, rel, _module_name(path.relative_to(tree_root)), source
        )
        if isinstance(parsed, Finding):
            failures.append(parsed)
        else:
            modules.append(parsed)
    return modules


@dataclass
class Project:
    """Everything the rules need: parsed sources plus parsed tests."""

    root: Path
    src_root: Path
    modules: list[ParsedModule]
    #: ``None`` when no tests tree was given (rules needing test
    #: evidence skip); an empty list means "a tests tree with nothing
    #: in it", which rules do treat as missing evidence.
    test_modules: list[ParsedModule] | None
    parse_failures: list[Finding] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.module_by_name: dict[str, ParsedModule] = {
            m.name: m for m in self.modules
        }
        self.module_by_rel: dict[str, ParsedModule] = {
            m.rel: m for m in self.all_modules()
        }

    def all_modules(self) -> list[ParsedModule]:
        return self.modules + list(self.test_modules or [])

    @classmethod
    def load(
        cls,
        root: Path,
        src_root: Path,
        tests_root: Path | None = None,
    ) -> "Project":
        if not src_root.is_dir():
            raise AnalysisError(f"source root {src_root} is not a directory")
        failures: list[Finding] = []
        modules = _load_tree(root, src_root, failures)
        test_modules: list[ParsedModule] | None = None
        if tests_root is not None and tests_root.is_dir():
            test_modules = _load_tree(root, tests_root, failures)
        return cls(
            root=root,
            src_root=src_root,
            modules=modules,
            test_modules=test_modules,
            parse_failures=failures,
        )
