"""Entry point: resolve a project root, load it, run the rules.

:func:`run_check` is what both ``massf check`` and the test suite call.
Root resolution, in order:

1. an explicit ``root`` argument (must contain ``src/repro``);
2. the current working directory, when it contains ``src/repro``;
3. walking up from the installed ``repro`` package (the development
   layout keeps it at ``<root>/src/repro``).

The ``tests`` directory next to ``src`` (when present) is parsed too —
only as *evidence* for the parity-coverage rule; module rules never
flag test code.

Two-tier result caching (the warm re-check path)
------------------------------------------------

With a ``cache`` (an :class:`~repro.runtime.cache.ArtifactCache`), the
runner keys results on content, not time:

- **check-module** — one entry per file, keyed on
  ``(ANALYSIS_VERSION, module-rule ids, rel path, source sha)``.  Holds
  the module-scope findings (kept and suppressed), the file's
  suppression comments, and any parse failure — everything the file
  alone determines.
- **check-project** — one entry per tree state, keyed on the same
  version + the project-scope rule ids + a manifest of every
  ``(rel, sha)`` pair.  Holds the project-scope findings, which any
  single changed file can invalidate (they flow through the call
  graph).

A fully warm re-check therefore never calls ``ast.parse``: it hashes
the sources, loads the per-file entries plus the project entry, and
assembles the report.  Any miss falls back to parsing the tree once;
unchanged files still skip their module-rule execution.  ``jobs`` fans
the per-file pass out over forked workers via
:func:`repro.runtime.pmap.parallel_map` — results are bit-identical to
the sequential run because both paths fold in item order.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.analysis.model import (
    AnalysisError,
    Finding,
    ParsedModule,
    Project,
    _module_name,
    parse_source,
)
from repro.analysis.registry import RULES, Rule, all_rules, resolve_rules
from repro.analysis.rules.meta import IgnoreInfo, unused_ignore_findings

__all__ = [
    "ANALYSIS_VERSION",
    "CheckResult",
    "run_check",
    "resolve_root",
]

#: Bumped whenever rule semantics change; invalidates every cached
#: result (the version is part of both cache keys).
ANALYSIS_VERSION = 2

#: Artifact kinds in the shared :class:`ArtifactCache`.
MODULE_KIND = "check-module"
PROJECT_KIND = "check-project"

#: Rule computed by the runner itself, after the others finish.
_META_RULE_ID = "unused-ignore"


@dataclass
class CheckResult:
    """Everything a reporter needs about one check run."""

    root: Path
    rules: list[str]
    findings: list[Finding]
    suppressed: list[Finding]
    n_files: int
    #: Result-cache probes that hit / missed (0/0 when uncached).  A
    #: fully warm run reports one hit per file plus one for the
    #: project-scope entry.
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out


def resolve_root(root: str | os.PathLike[str] | None = None) -> Path:
    """Locate the project root (the directory holding ``src/repro``)."""
    if root is not None:
        path = Path(root).resolve()
        if not (path / "src" / "repro").is_dir():
            raise AnalysisError(
                f"{path} does not contain src/repro; pass the "
                "project root"
            )
        return path
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    import repro

    pkg_file = getattr(repro, "__file__", None)
    if pkg_file:
        candidate = Path(pkg_file).resolve().parent.parent.parent
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise AnalysisError(
        "cannot locate the project root: neither the working "
        "directory nor the installed package layout contains src/repro"
    )


# --------------------------------------------------------------------- #
# File scan (reads + hashes, no parsing)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _SourceFile:
    """One scanned file: bytes read once, parsed only on a miss."""

    path: Path
    rel: str
    name: str  # dotted module name relative to its tree root
    tree: str  # "src" | "tests"
    source: str
    sha: str


def _scan_tree(
    root: Path, tree_root: Path, label: str
) -> list[_SourceFile]:
    out: list[_SourceFile] = []
    for path in sorted(tree_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root).as_posix()
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise AnalysisError(f"cannot read {rel}: {exc}") from exc
        out.append(
            _SourceFile(
                path=path,
                rel=rel,
                name=_module_name(path.relative_to(tree_root)),
                tree=label,
                source=data.decode("utf-8"),
                sha=hashlib.sha256(data).hexdigest(),
            )
        )
    return out


# --------------------------------------------------------------------- #
# Per-file pass (cache-keyed, optionally forked)
# --------------------------------------------------------------------- #
def _file_entry(
    project: Project, module: ParsedModule,
    rules: Sequence[Rule], is_src: bool,
) -> dict:
    """The cacheable per-file result: module-rule findings + ignores."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    if is_src:
        for rule in rules:
            for finding in rule.run_module(project, module):
                if module.is_suppressed(finding.rule, finding.line):
                    suppressed.append(finding)
                else:
                    kept.append(finding)
    kept.sort(key=lambda f: f.sort_key)
    suppressed.sort(key=lambda f: f.sort_key)
    return {
        "findings": kept,
        "suppressed": suppressed,
        "parse_failure": None,
        "ignores": IgnoreInfo.of(module),
    }


def _failure_entry(rel: str, failure: Finding) -> dict:
    """Per-file entry for a file that does not parse."""
    return {
        "findings": [],
        "suppressed": [],
        "parse_failure": failure,
        "ignores": IgnoreInfo(rel=rel),
    }


def _file_worker(rel: str, shared: object) -> dict:
    """Pool-dispatched per-file worker (module-level, fork-inherited
    ``shared``; the parallel-safety discipline)."""
    project, rules, src_rels = shared  # type: ignore[misc]
    module = project.module_by_rel[rel]
    return _file_entry(project, module, rules, rel in src_rels)


def _module_key(
    module_ids: tuple[str, ...], sf: _SourceFile
) -> tuple[object, ...]:
    return (ANALYSIS_VERSION, module_ids, sf.rel, sf.sha)


def _project_key(
    cache,
    project_ids: tuple[str, ...],
    include_tests: bool,
    sources: Sequence[_SourceFile],
) -> str:
    manifest = tuple((sf.rel, sf.sha) for sf in sources)
    return cache.key_of(
        PROJECT_KIND, ANALYSIS_VERSION, project_ids, include_tests,
        manifest,
    )


# --------------------------------------------------------------------- #
# The check itself
# --------------------------------------------------------------------- #
def _resolve_check_cache(cache, project_root: Path):
    """``True`` means the default cache *under the project root* (so
    checking two trees never cross-pollutes a cwd-relative cache)."""
    from repro.runtime.cache import (
        DEFAULT_CACHE_DIR,
        ArtifactCache,
        resolve_cache,
    )

    if cache is True or cache == "default":
        env = os.environ.get("MASSF_CACHE_DIR")
        return ArtifactCache(
            Path(env) if env else project_root / DEFAULT_CACHE_DIR
        )
    return resolve_cache(cache)


def _build_project(
    project_root: Path,
    src_root: Path,
    tests_root: Path | None,
    sources: Sequence[_SourceFile],
) -> Project:
    """Parse the scanned sources (read once, parsed once)."""
    failures: list[Finding] = []
    modules: list[ParsedModule] = []
    test_modules: list[ParsedModule] | None = (
        [] if tests_root is not None and tests_root.is_dir() else None
    )
    for sf in sources:
        parsed = parse_source(sf.path, sf.rel, sf.name, sf.source)
        if isinstance(parsed, Finding):
            failures.append(parsed)
        elif sf.tree == "src":
            modules.append(parsed)
        else:
            assert test_modules is not None
            test_modules.append(parsed)
    return Project(
        root=project_root,
        src_root=src_root,
        modules=modules,
        test_modules=test_modules,
        parse_failures=failures,
    )


def _run_project_rules(
    project: Project, rules: Sequence[Rule]
) -> dict:
    """Project-scope findings, split kept / suppressed (cacheable)."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in rules:
        for finding in rule.run(project):
            module = project.module_by_rel.get(finding.path)
            if module is not None and module.is_suppressed(
                finding.rule, finding.line
            ):
                suppressed.append(finding)
            else:
                kept.append(finding)
    return {"findings": kept, "suppressed": suppressed}


def _assemble(
    project_root: Path,
    selected: Sequence[Rule],
    entries: dict[str, dict],
    project_entry: dict,
    src_rels: frozenset[str],
    *,
    strict: bool,
    cache_hits: int,
    cache_misses: int,
) -> CheckResult:
    """Fold per-file + project entries into the final report."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    infos: list[IgnoreInfo] = []
    n_files = 0
    for rel in sorted(entries):
        entry = entries[rel]
        if entry["parse_failure"] is not None:
            kept.append(entry["parse_failure"])
        else:
            n_files += 1
        kept.extend(entry["findings"])
        suppressed.extend(entry["suppressed"])
        if rel in src_rels:
            # Rules never run against the tests tree, so no ignore
            # there can ever be "used" — judging them would flag every
            # deliberate suppression inside test fixture projects.
            infos.append(entry["ignores"])
    kept.extend(project_entry["findings"])
    suppressed.extend(project_entry["suppressed"])
    suppressed.sort(key=lambda f: f.sort_key)
    if strict:
        ran_ids = frozenset(
            r.id for r in selected if r.id != _META_RULE_ID
        )
        defaults = frozenset(
            r.id for r in all_rules() if r.enabled_by_default
        )
        kept.extend(
            unused_ignore_findings(
                infos,
                suppressed,
                ran_ids=ran_ids,
                known_ids=frozenset(RULES),
                ran_all=defaults <= ran_ids,
            )
        )
    kept.sort(key=lambda f: f.sort_key)
    return CheckResult(
        root=project_root,
        rules=[r.id for r in selected],
        findings=kept,
        suppressed=suppressed,
        n_files=n_files,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )


def run_check(
    root: str | os.PathLike[str] | None = None,
    *,
    rules: Sequence[str] | None = None,
    include_tests: bool = True,
    jobs: int = 0,
    cache: object = None,
    strict_ignores: bool = False,
) -> CheckResult:
    """Run the selected rules over the project at ``root``.

    Raises :class:`AnalysisError` when the check itself cannot run
    (bad root, unknown rule id); findings are *returned*, never raised.

    Parameters
    ----------
    jobs:
        Fan the per-file pass out over this many forked workers
        (``0``/``1`` = inline).  Findings are bit-identical either way.
    cache:
        Result cache: an :class:`~repro.runtime.cache.ArtifactCache`, a
        directory path, ``True`` for ``<root>/.massf-cache``, or
        ``None`` (default) for no caching.  A warm re-check skips
        parsing entirely.
    strict_ignores:
        Also run the ``unused-ignore`` meta-rule over the suppression
        comments (off by default; see :mod:`repro.analysis.rules.meta`).
    """
    project_root = resolve_root(root)
    src_root = project_root / "src"
    tests_root = project_root / "tests" if include_tests else None
    if not src_root.is_dir():
        raise AnalysisError(f"source root {src_root} is not a directory")

    selected = list(resolve_rules(rules))
    if strict_ignores and all(r.id != _META_RULE_ID for r in selected):
        selected.append(RULES[_META_RULE_ID])
    strict = any(r.id == _META_RULE_ID for r in selected)
    module_rules = [r for r in selected if r.scope == "module"]
    project_rules = [
        r for r in selected
        if r.scope == "project" and r.id != _META_RULE_ID
    ]
    module_ids = tuple(r.id for r in module_rules)
    project_ids = tuple(r.id for r in project_rules)

    art = _resolve_check_cache(cache, project_root)
    sources = _scan_tree(project_root, src_root, "src")
    if tests_root is not None and tests_root.is_dir():
        sources += _scan_tree(project_root, tests_root, "tests")
    by_rel = {sf.rel: sf for sf in sources}

    # Warm probe: per-file entries + the project entry, no parsing yet.
    entries: dict[str, dict] = {}
    project_entry: dict | None = None
    hits = misses = 0
    if art is not None:
        for sf in sources:
            key = art.key_of(MODULE_KIND, *_module_key(module_ids, sf))
            found, value = art.lookup(MODULE_KIND, key)
            if found:
                entries[sf.rel] = value
        if project_rules:
            pkey = _project_key(art, project_ids, include_tests, sources)
            found, value = art.lookup(PROJECT_KIND, pkey)
            if found:
                project_entry = value
        hits = len(entries) + (1 if project_entry is not None else 0)
        misses = (len(sources) - len(entries)) + (
            1 if project_rules and project_entry is None else 0
        )

    warm = (
        art is not None
        and len(entries) == len(sources)
        and (project_entry is not None or not project_rules)
    )
    if not warm:
        # Cold / mixed: parse once, fan the per-file pass out (cached
        # files skip rule execution via the pmap cache integration).
        from repro.runtime.pmap import parallel_map

        project = _build_project(
            project_root, src_root, tests_root, sources
        )
        parsed_rels = [m.rel for m in project.all_modules()]
        shared = (
            project,
            tuple(module_rules),
            frozenset(m.rel for m in project.modules),
        )
        def _key(rel: str) -> tuple[object, ...]:
            return _module_key(module_ids, by_rel[rel])

        results = parallel_map(
            _file_worker,
            parsed_rels,
            workers=jobs,
            shared=shared,
            cache=art,
            kind=MODULE_KIND,
            key_of=_key if art is not None else None,
        )
        entries = dict(zip(parsed_rels, results))
        for failure in project.parse_failures:
            entry = _failure_entry(failure.path, failure)
            entries[failure.path] = entry
            if art is not None:
                sf = by_rel[failure.path]
                art.store(
                    MODULE_KIND,
                    art.key_of(MODULE_KIND, *_module_key(module_ids, sf)),
                    entry,
                )
        if project_rules:
            project_entry = _run_project_rules(project, project_rules)
            if art is not None:
                art.store(
                    PROJECT_KIND,
                    _project_key(art, project_ids, include_tests, sources),
                    project_entry,
                )
    if project_entry is None:
        project_entry = {"findings": [], "suppressed": []}
    return _assemble(
        project_root,
        selected,
        entries,
        project_entry,
        frozenset(sf.rel for sf in sources if sf.tree == "src"),
        strict=strict,
        cache_hits=hits,
        cache_misses=misses,
    )
