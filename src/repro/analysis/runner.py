"""Entry point: resolve a project root, load it, run the rules.

:func:`run_check` is what both ``massf check`` and the test suite call.
Root resolution, in order:

1. an explicit ``root`` argument (must contain ``src/repro``);
2. the current working directory, when it contains ``src/repro``;
3. walking up from the installed ``repro`` package (the development
   layout keeps it at ``<root>/src/repro``).

The ``tests`` directory next to ``src`` (when present) is parsed too —
only as *evidence* for the parity-coverage rule; module rules never
flag test code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.analysis.model import AnalysisError, Finding, Project
from repro.analysis.registry import resolve_rules, run_rules

__all__ = ["CheckResult", "run_check", "resolve_root"]


@dataclass
class CheckResult:
    """Everything a reporter needs about one check run."""

    root: Path
    rules: list[str]
    findings: list[Finding]
    suppressed: list[Finding]
    n_files: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out


def resolve_root(root: str | os.PathLike[str] | None = None) -> Path:
    """Locate the project root (the directory holding ``src/repro``)."""
    if root is not None:
        path = Path(root).resolve()
        if not (path / "src" / "repro").is_dir():
            raise AnalysisError(
                f"{path} does not contain src/repro; pass the "
                "project root"
            )
        return path
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    import repro

    pkg_file = getattr(repro, "__file__", None)
    if pkg_file:
        candidate = Path(pkg_file).resolve().parent.parent.parent
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise AnalysisError(
        "cannot locate the project root: neither the working "
        "directory nor the installed package layout contains src/repro"
    )


def run_check(
    root: str | os.PathLike[str] | None = None,
    *,
    rules: Sequence[str] | None = None,
    include_tests: bool = True,
) -> CheckResult:
    """Run the selected rules over the project at ``root``.

    Raises :class:`AnalysisError` when the check itself cannot run
    (bad root, unknown rule id); findings are *returned*, never raised.
    """
    project_root = resolve_root(root)
    src_root = project_root / "src"
    tests_root = project_root / "tests" if include_tests else None
    selected = resolve_rules(rules)
    project = Project.load(project_root, src_root, tests_root)
    findings, suppressed = run_rules(project, selected)
    return CheckResult(
        root=project_root,
        rules=[r.id for r in selected],
        findings=findings,
        suppressed=suppressed,
        n_files=len(project.all_modules()),
    )
