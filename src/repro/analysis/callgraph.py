"""Project-wide symbol table and call graph for whole-program rules.

The graph is deliberately lightweight — the same trade the syntax rules
make.  Nodes are **module-level** functions (methods are opaque: a
``self.f()`` call never creates an edge), plus one pseudo-node per
module (``pkg.mod.<module>``) holding the calls made by import-time
statements.  Edges come in two kinds:

- ``call`` — a direct call whose callee expression resolves, through
  the project's imports and re-exports, to a known function symbol;
- ``ref`` — a one-hop-indirect edge: the function is *referenced* in a
  load position without being called (passed to ``parallel_map``,
  registered as a handler, stored in a table).  Reachability follows
  these by default because a referenced function is one dispatch away
  from running.

Name resolution reuses the per-module binding discipline of
:class:`~repro.analysis.visitors.ImportMap` and extends it with
relative imports, class symbols, module-level ``alias = fn``
re-binds, and re-exports through package ``__init__`` modules
(``from pkg import fn`` where ``pkg/__init__.py`` itself does
``from pkg.impl import fn`` canonicalizes to ``pkg.impl.fn``), with a
cycle guard so mutually re-exporting packages terminate.

:func:`reachable_from` is a pure BFS over an edge mapping so property
tests can exercise monotonicity without building a project.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.model import ParsedModule, Project
from repro.analysis.visitors import attribute_chain

__all__ = [
    "FunctionInfo",
    "Edge",
    "CallGraph",
    "get_callgraph",
    "reachable_from",
    "MODULE_SCOPE",
]

#: Suffix of the pseudo-node holding a module's import-time statements.
MODULE_SCOPE = "<module>"

#: Canonical names whose first positional / ``fn=`` argument is shipped
#: to forked worker processes.
PMAP_DISPATCHERS = frozenset({
    "repro.runtime.pmap.parallel_map",
    "repro.runtime.parallel_map",
})

#: Canonical names whose second positional / ``fn=`` argument runs on
#: service worker threads.
HANDLER_REGISTRARS = frozenset({
    "repro.service.handlers.register_handler",
})

_THREAD_FACTORIES = frozenset({"threading.Thread"})
_PROCESS_FACTORIES = frozenset({
    "multiprocessing.Process",
    "multiprocessing.context.Process",
})


@dataclass(frozen=True)
class FunctionInfo:
    """One module-level function symbol."""

    qualname: str  # "pkg.mod.fn" or "pkg.mod.<module>"
    module: str    # "pkg.mod"
    name: str      # "fn"
    line: int
    is_async: bool = False


@dataclass(frozen=True)
class Edge:
    """A resolved caller -> callee relationship."""

    caller: str
    callee: str
    line: int
    kind: str  # "call" | "ref"


def reachable_from(
    edges: Mapping[str, Iterable[str]], roots: Iterable[str]
) -> frozenset[str]:
    """Pure BFS closure: every node reachable from ``roots`` (inclusive).

    Monotone in both arguments — adding an edge or a root can only grow
    the result (the property test pins this).
    """
    seen: set[str] = set(roots)
    frontier = list(seen)
    while frontier:
        node = frontier.pop()
        for succ in edges.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return frozenset(seen)


def _scope_locals(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Every name bound anywhere inside ``func`` (params included)."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            args = node.args
            names.update(
                a.arg
                for a in (
                    *args.posonlyargs, *args.args, *args.kwonlyargs,
                    *((args.vararg,) if args.vararg else ()),
                    *((args.kwarg,) if args.kwarg else ()),
                )
            )
            if not isinstance(node, ast.Lambda):
                names.add(node.name)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, ast.ClassDef):
            names.add(node.name)
    # ``global x`` un-shadows: the name refers to module scope again.
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            names.difference_update(node.names)
    return names


class _ScopeScanner(ast.NodeVisitor):
    """Collect call/ref edges for one scope (function or module body)."""

    def __init__(
        self, graph: "CallGraph", module_name: str,
        caller: str, locals_: set[str],
    ) -> None:
        self.graph = graph
        self.module_name = module_name
        self.caller = caller
        self.locals = locals_
        self.edges: list[Edge] = []

    def _resolve(self, expr: ast.expr) -> str | None:
        chain = attribute_chain(expr)
        if chain is None or chain[0] in self.locals:
            return None
        return self.graph.resolve(self.module_name, chain)

    def _emit(self, target: str | None, line: int, kind: str) -> None:
        if target is not None and target in self.graph.functions:
            self.edges.append(Edge(self.caller, target, line, kind))

    def visit_Call(self, node: ast.Call) -> None:
        target = self._resolve(node.func)
        self._emit(target, node.lineno, "call")
        if attribute_chain(node.func) is None:
            self.visit(node.func)  # e.g. f(x)(y): scan the inner call
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            target = self._resolve(node)
            if target is not None and target in self.graph.functions:
                self._emit(target, node.lineno, "ref")
                return  # the whole chain was the reference
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._emit(self._resolve(node), node.lineno, "ref")


@dataclass
class CallGraph:
    """Symbol table + edges for every module in a project's src tree."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    edges: list[Edge] = field(default_factory=list)
    #: module -> local name -> dotted target (pre-canonicalization)
    bindings: dict[str, dict[str, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._succ: dict[str, tuple[str, ...]] | None = None
        self._succ_calls: dict[str, tuple[str, ...]] | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls()
        for module in project.modules:
            graph._index_module(module)
        for module in project.modules:
            graph._scan_module(module)
        return graph

    def _index_module(self, module: ParsedModule) -> None:
        binds: dict[str, str] = {}
        pending_aliases: list[tuple[str, str]] = []
        # Imports bind wherever they appear — function-local imports are
        # the project idiom for breaking cycles, so walk the whole tree
        # (matching ``ImportMap`` semantics).
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        binds[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        binds[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    binds[local] = f"{base}.{alias.name}"
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module.name}.{node.name}"
                self.functions[qual] = FunctionInfo(
                    qualname=qual,
                    module=module.name,
                    name=node.name,
                    line=node.lineno,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                )
                binds[node.name] = qual
            elif isinstance(node, ast.ClassDef):
                binds[node.name] = f"{module.name}.{node.name}"
            elif isinstance(node, ast.Assign):
                # module-level ``alias = fn`` re-binds (resolved below,
                # once every module's primary bindings exist).
                if (
                    len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Name)
                ):
                    pending_aliases.append(
                        (node.targets[0].id, node.value.id)
                    )
        for local, source in pending_aliases:
            if source in binds and local not in binds:
                binds[local] = binds[source]
        mod_scope = f"{module.name}.{MODULE_SCOPE}"
        self.functions[mod_scope] = FunctionInfo(
            qualname=mod_scope,
            module=module.name,
            name=MODULE_SCOPE,
            line=1,
        )
        self.bindings[module.name] = binds

    @staticmethod
    def _import_base(
        module: ParsedModule, node: ast.ImportFrom
    ) -> str | None:
        """Absolute module a ``from ... import`` pulls names out of."""
        if not node.level:
            return node.module
        base = module.package
        for _ in range(node.level - 1):
            if not base:
                return None
            base = base.rpartition(".")[0]
        if not base:
            return None
        return f"{base}.{node.module}" if node.module else base

    def _scan_module(self, module: ParsedModule) -> None:
        mod_scope = f"{module.name}.{MODULE_SCOPE}"
        seen: set[tuple[str, str, str]] = set()

        def _collect(caller: str, nodes: Iterable[ast.stmt],
                     locals_: set[str]) -> None:
            scanner = _ScopeScanner(self, module.name, caller, locals_)
            for stmt in nodes:
                scanner.visit(stmt)
            for edge in scanner.edges:
                key = (edge.caller, edge.callee, edge.kind)
                if key not in seen:
                    seen.add(key)
                    self.edges.append(edge)

        body_stmts: list[ast.stmt] = []
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _collect(
                    f"{module.name}.{node.name}",
                    node.body,
                    _scope_locals(node),
                )
            elif isinstance(node, ast.ClassDef):
                continue  # methods are opaque (no ``self`` resolution)
            else:
                body_stmts.append(node)
        _collect(mod_scope, body_stmts, set())
        self._succ = None
        self._succ_calls = None

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def resolve(
        self, module_name: str, chain: list[str] | str
    ) -> str | None:
        """Canonical dotted path of ``chain`` as seen from ``module_name``.

        Returns a function/class symbol when the path lands on one,
        an external dotted path (``"time.sleep"``) when the root is an
        imported third-party name, or ``None`` when the root is not
        bound at module scope.
        """
        parts = chain.split(".") if isinstance(chain, str) else list(chain)
        if not parts:
            return None
        binds = self.bindings.get(module_name, {})
        root = binds.get(parts[0])
        if root is None:
            return None
        return self.canonical(".".join([root, *parts[1:]]))

    def canonical(self, dotted: str) -> str:
        """Follow re-exports until the path stops moving."""
        seen: set[str] = set()
        while dotted not in self.functions and dotted not in seen:
            seen.add(dotted)
            parts = dotted.split(".")
            moved = False
            for i in range(len(parts) - 1, 0, -1):
                mod = ".".join(parts[:i])
                binds = self.bindings.get(mod)
                if binds is None:
                    continue
                bound = binds.get(parts[i])
                if bound is not None:
                    nxt = ".".join([bound, *parts[i + 1:]])
                    if nxt not in seen:
                        dotted = nxt
                        moved = True
                break
            if not moved:
                break
        return dotted

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def successors(self, *, refs: bool = True) -> dict[str, tuple[str, ...]]:
        cached = self._succ if refs else self._succ_calls
        if cached is not None:
            return cached
        succ: dict[str, list[str]] = {}
        for edge in self.edges:
            if not refs and edge.kind != "call":
                continue
            succ.setdefault(edge.caller, []).append(edge.callee)
        out = {k: tuple(v) for k, v in succ.items()}
        if refs:
            self._succ = out
        else:
            self._succ_calls = out
        return out

    def reachable(
        self,
        roots: Iterable[str],
        *,
        refs: bool = True,
        blocked: Iterable[str] = (),
    ) -> frozenset[str]:
        """Functions reachable from ``roots``; never expands ``blocked``."""
        block = set(blocked)
        succ = self.successors(refs=refs)
        if not block:
            return reachable_from(succ, roots)
        pruned = {
            k: tuple(s for s in v if s not in block)
            for k, v in succ.items()
            if k not in block
        }
        return reachable_from(pruned, (r for r in roots if r not in block))

    def witness_paths(
        self, roots: Iterable[str], *, refs: bool = True,
        blocked: Iterable[str] = (),
    ) -> dict[str, str]:
        """Map each reachable function to the root that first found it."""
        block = set(blocked)
        succ = self.successors(refs=refs)
        origin: dict[str, str] = {}
        frontier: list[str] = []
        for root in roots:
            if root not in origin and root not in block:
                origin[root] = root
                frontier.append(root)
        while frontier:
            node = frontier.pop(0)
            for nxt in succ.get(node, ()):
                if nxt not in origin and nxt not in block:
                    origin[nxt] = origin[node]
                    frontier.append(nxt)
        return origin

    def function_node(
        self, project: Project, qualname: str
    ) -> tuple[ParsedModule | None, ast.FunctionDef | ast.AsyncFunctionDef | None]:
        """The (module, def node) behind a function symbol."""
        info = self.functions.get(qualname)
        if info is None or info.name == MODULE_SCOPE:
            return None, None
        module = project.module_by_name.get(info.module)
        if module is None:
            return None, None
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == info.name
                and node.lineno == info.line
            ):
                return module, node
        return module, None

    def async_functions(self, prefix: str) -> list[str]:
        """Qualnames of ``async def`` symbols in modules under ``prefix``."""
        dot = prefix + "."
        return sorted(
            info.qualname
            for info in self.functions.values()
            if info.is_async
            and (info.module == prefix or info.module.startswith(dot))
        )

    # ------------------------------------------------------------------ #
    # Entry-point discovery (dispatch sites)
    # ------------------------------------------------------------------ #
    def _dispatch_sites(
        self, project: Project
    ) -> Iterable[tuple[ParsedModule, ast.Call, str | None]]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    chain = attribute_chain(node.func)
                    target = (
                        self.resolve(module.name, chain)
                        if chain is not None else None
                    )
                    yield module, node, target

    def _arg_symbol(
        self, module: ParsedModule, expr: ast.expr | None
    ) -> str | None:
        if expr is None:
            return None
        chain = attribute_chain(expr)
        if chain is None:
            return None
        target = self.resolve(module.name, chain)
        if target is not None and target in self.functions:
            return target
        return None

    def registered_handlers(self, project: Project) -> frozenset[str]:
        """Callables registered via ``register_handler(kind, fn)``."""
        out: set[str] = set()
        for module, call, target in self._dispatch_sites(project):
            if target not in HANDLER_REGISTRARS:
                continue
            fn_expr: ast.expr | None = (
                call.args[1] if len(call.args) >= 2 else None
            )
            if fn_expr is None:
                for kw in call.keywords:
                    if kw.arg == "fn":
                        fn_expr = kw.value
            sym = self._arg_symbol(module, fn_expr)
            if sym is not None:
                out.add(sym)
        return frozenset(out)

    @staticmethod
    def _is_factory(
        call: ast.Call, target: str | None,
        canonical: frozenset[str], suffix: str,
    ) -> bool:
        """``Thread(...)`` / ``ctx.Process(...)`` style factory calls.

        Exact canonical names match first; a chain *ending* in the class
        name (``mp.Process`` where ``mp`` is a local fork context) is
        accepted too because the receiver is often unresolvable.
        """
        if target in canonical:
            return True
        chain = attribute_chain(call.func)
        return chain is not None and chain[-1] == suffix

    def thread_targets(self, project: Project) -> frozenset[str]:
        """``target=`` callables of ``threading.Thread(...)`` calls."""
        out: set[str] = set()
        for module, call, target in self._dispatch_sites(project):
            if not self._is_factory(
                call, target, _THREAD_FACTORIES, "Thread"
            ):
                continue
            for kw in call.keywords:
                if kw.arg == "target":
                    sym = self._arg_symbol(module, kw.value)
                    if sym is not None:
                        out.add(sym)
        return frozenset(out)

    def pmap_workers(self, project: Project) -> frozenset[str]:
        """First-arg callables of ``parallel_map`` and Process targets."""
        out: set[str] = set()
        for module, call, target in self._dispatch_sites(project):
            if target in PMAP_DISPATCHERS:
                fn_expr: ast.expr | None = (
                    call.args[0] if call.args else None
                )
                if fn_expr is None:
                    for kw in call.keywords:
                        if kw.arg == "fn":
                            fn_expr = kw.value
                sym = self._arg_symbol(module, fn_expr)
                if sym is not None:
                    out.add(sym)
            elif self._is_factory(
                call, target, _PROCESS_FACTORIES, "Process"
            ):
                for kw in call.keywords:
                    if kw.arg == "target":
                        sym = self._arg_symbol(module, kw.value)
                        if sym is not None:
                            out.add(sym)
        return frozenset(out)


_GRAPH_ATTR = "_massf_callgraph"


def get_callgraph(project: Project) -> CallGraph:
    """Build (once) and cache the call graph on the project."""
    cached = getattr(project, _GRAPH_ATTR, None)
    if cached is None:
        cached = CallGraph.build(project)
        setattr(project, _GRAPH_ATTR, cached)
    return cached  # type: ignore[no-any-return]
