"""Rule base class and registry for :mod:`repro.analysis`.

A rule is a small object with an ``id``, a human description, a
severity, and a ``run(project)`` generator producing
:class:`~repro.analysis.model.Finding` rows.  Every rule sees the whole
:class:`~repro.analysis.model.Project` — per-module rules simply iterate
``project.modules``, while cross-cutting rules (parity coverage) can
correlate sources with tests.

Rules self-register at import time via :func:`register`; importing
:mod:`repro.analysis.rules` pulls in the shipped rule set.
"""

from __future__ import annotations

import ast
from abc import ABC
from typing import Iterable, Iterator, Sequence

from repro.analysis.model import (
    AnalysisError,
    Finding,
    ParsedModule,
    Project,
    Severity,
)

__all__ = ["Rule", "register", "all_rules", "resolve_rules", "RULES"]

#: The global registry: rule id -> rule instance, insertion-ordered.
RULES: dict[str, "Rule"] = {}


class Rule(ABC):
    """One invariant the codebase must uphold.

    ``scope`` declares the evidence a rule needs and drives the result
    cache: ``"module"`` rules look at one file at a time (their findings
    are cached per file content hash), ``"project"`` rules need the
    whole tree (call graph, parity pairings — cached against the
    project fingerprint).  ``enabled_by_default=False`` rules only run
    when selected explicitly (``--rule``) or via their opt-in flag.
    """

    id: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    scope: str = "module"
    enabled_by_default: bool = True

    def run(self, project: Project) -> Iterator[Finding]:
        """Yield every violation found in ``project``.

        Module-scope rules implement :meth:`run_module` and inherit
        this per-module loop; project-scope rules override ``run``.
        """
        for module in project.modules:
            yield from self.run_module(project, module)

    def run_module(
        self, project: Project, module: ParsedModule
    ) -> Iterator[Finding]:
        """Violations attributable to ``module`` alone (module scope)."""
        raise NotImplementedError(
            f"rule {self.id!r} declares scope={self.scope!r} but "
            "implements neither run() nor run_module()"
        )

    def finding(
        self,
        module: ParsedModule,
        node: ast.AST,
        message: str,
    ) -> Finding:
        """Build a finding anchored at ``node`` inside ``module``."""
        return Finding(
            rule=self.id,
            path=module.rel,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            message=message,
            severity=self.severity,
        )


def register(rule: Rule) -> Rule:
    """Add ``rule`` to the global registry (id must be unique)."""
    if not rule.id:
        raise AnalysisError(f"rule {rule!r} has no id")
    if rule.id in RULES:
        raise AnalysisError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return rule


def all_rules() -> list[Rule]:
    """Every registered rule, in registration order."""
    _ensure_loaded()
    return list(RULES.values())


def resolve_rules(ids: Sequence[str] | None) -> list[Rule]:
    """Map rule ids to rule objects.

    ``None`` selects every default-enabled rule; opt-in rules (e.g.
    ``unused-ignore``) must be named explicitly.
    """
    _ensure_loaded()
    if ids is None:
        return [r for r in RULES.values() if r.enabled_by_default]
    unknown = [i for i in ids if i not in RULES]
    if unknown:
        known = ", ".join(sorted(RULES))
        raise AnalysisError(
            f"unknown rule id(s) {', '.join(sorted(set(unknown)))}; "
            f"known rules: {known}"
        )
    seen: set[str] = set()
    out: list[Rule] = []
    for i in ids:
        if i not in seen:
            seen.add(i)
            out.append(RULES[i])
    return out


def _ensure_loaded() -> None:
    """Import the shipped rule modules so they self-register."""
    import repro.analysis.rules  # noqa: F401  (import for side effect)


def run_rules(
    project: Project, rules: Iterable[Rule]
) -> tuple[list[Finding], list[Finding]]:
    """Run ``rules`` over ``project``; split kept vs. suppressed.

    Parse failures are prepended to the kept findings — a file that
    does not parse cannot carry suppression comments for itself.
    """
    kept: list[Finding] = list(project.parse_failures)
    suppressed: list[Finding] = []
    for rule in rules:
        for finding in rule.run(project):
            module = project.module_by_rel.get(finding.path)
            if module is not None and module.is_suppressed(
                finding.rule, finding.line
            ):
                suppressed.append(finding)
            else:
                kept.append(finding)
    kept.sort(key=lambda f: f.sort_key)
    suppressed.sort(key=lambda f: f.sort_key)
    return kept, suppressed
