"""Parity-coverage rule: every reference oracle stays paired.

PRs 3–4 preserved the original scalar kernels as oracles in
``partition/_reference.py`` and ``routing/_reference.py`` and promised
bit-identical vectorized counterparts.  That promise only holds while
(a) the counterpart still exists and (b) at least one test imports both
sides so the differential suite actually exercises the pair.  This rule
enforces both mechanically.

Pairing convention: a public reference function ``X_reference`` pairs
with a top-level function ``X`` defined anywhere in the source tree.
When history renamed the counterpart (``compute_routing_reference`` is
the oracle for ``repro.routing.spf.build_routing``), the reference
module declares the pairing explicitly:

.. code-block:: python

    _PARITY_COUNTERPARTS = {
        "compute_routing_reference": "repro.routing.spf.build_routing",
    }

A reference module may additionally declare
``_PARITY_EXTRA_COUNTERPART_MODULES = ("repro.runtime.shm", ...)`` — a
tuple of modules with no counterpart function of their own that still
sit on the bit-identity path (a shared-memory arena that backs the
spliced matrices, say).  Those join :func:`counterpart_modules` and so
inherit the determinism rules' float-reduction bans.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import Finding, ParsedModule, Project
from repro.analysis.registry import Rule, register
from repro.analysis.visitors import module_level_functions

__all__ = ["ParityCoverageRule", "counterpart_modules"]

_MAP_NAME = "_PARITY_COUNTERPARTS"
_EXTRA_NAME = "_PARITY_EXTRA_COUNTERPART_MODULES"
_SUFFIX = "_reference"


def _public_functions(module: ParsedModule) -> list[ast.FunctionDef]:
    """Public top-level functions of a reference module.

    ``__all__`` wins when present; otherwise every top-level function
    whose name does not start with an underscore.
    """
    funcs = {
        name: node
        for name, node in module_level_functions(module.tree).items()
        if isinstance(node, ast.FunctionDef)
    }
    exported = _declared_all(module.tree)
    if exported is not None:
        return [funcs[n] for n in exported if n in funcs]
    return [f for n, f in sorted(funcs.items()) if not n.startswith("_")]


def _declared_all(tree: ast.Module) -> list[str] | None:
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
        ):
            value = node.value
            if isinstance(value, (ast.List, ast.Tuple)):
                out = [
                    e.value
                    for e in value.elts
                    if isinstance(e, ast.Constant)
                    and isinstance(e.value, str)
                ]
                return out
    return None


def _declared_counterparts(tree: ast.Module) -> dict[str, str]:
    """The module's explicit ``_PARITY_COUNTERPARTS`` literal, if any."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == _MAP_NAME
            and isinstance(node.value, ast.Dict)
        ):
            out: dict[str, str] = {}
            for key, value in zip(node.value.keys, node.value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    out[key.value] = value.value
            return out
    return {}


def _declared_extra_modules(tree: ast.Module) -> list[str]:
    """The module's ``_PARITY_EXTRA_COUNTERPART_MODULES`` literal."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == _EXTRA_NAME
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            return [
                e.value
                for e in node.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
    return []


def _pairings(
    project: Project,
) -> Iterator[tuple[ParsedModule, ast.FunctionDef, str,
                    ParsedModule | None, str]]:
    """Yield (ref_module, ref_def, counterpart_name, def_module, name).

    ``def_module`` is None when no defining module was found.
    """
    for module in project.modules:
        if not module.is_reference:
            continue
        explicit = _declared_counterparts(module.tree)
        for func in _public_functions(module):
            spec = explicit.get(func.name)
            if spec is None:
                if func.name.endswith(_SUFFIX):
                    spec = func.name[: -len(_SUFFIX)]
                else:
                    spec = func.name
            if "." in spec:
                mod_name, _, counterpart = spec.rpartition(".")
                def_module = project.module_by_name.get(mod_name)
                if def_module is not None and counterpart not in (
                    module_level_functions(def_module.tree)
                ):
                    def_module = None
            else:
                counterpart = spec
                def_module = None
                for candidate in project.modules:
                    if candidate.is_reference:
                        continue
                    if counterpart in module_level_functions(
                        candidate.tree
                    ):
                        def_module = candidate
                        break
            yield module, func, spec, def_module, counterpart


def counterpart_modules(project: Project) -> set[str]:
    """Dotted names of modules defining a declared parity counterpart.

    Used by the determinism rules: a module like ``repro.core.place``
    lives outside the oracle's package but still carries bit-identical
    obligations, so order-sensitive float reductions are banned there
    too.  Reference modules can widen the set with
    ``_PARITY_EXTRA_COUNTERPART_MODULES`` for counterpart-less modules
    on the bit-identity path (unknown names are ignored — the scope is
    advisory, not a resolver).
    """
    out = {
        def_module.name
        for _, _, _, def_module, _ in _pairings(project)
        if def_module is not None
    }
    for module in project.modules:
        if not module.is_reference:
            continue
        for name in _declared_extra_modules(module.tree):
            if name in project.module_by_name:
                out.add(name)
    return out


def _imported_names(module: ParsedModule) -> set[str]:
    """Every dotted module / ``module.name`` a test module imports."""
    out: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            out.add(node.module)
            for alias in node.names:
                if alias.name != "*":
                    out.add(f"{node.module}.{alias.name}")
    return out


class ParityCoverageRule(Rule):
    id = "parity-coverage"
    scope = "project"  # correlates src modules with the tests tree
    description = (
        "every public function in a _reference.py oracle has a "
        "same-named (or _PARITY_COUNTERPARTS-declared) vectorized "
        "counterpart, and at least one test imports both sides"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        test_imports = None
        if project.test_modules is not None:
            test_imports = [
                (t, _imported_names(t)) for t in project.test_modules
            ]
        for ref_mod, func, spec, def_mod, name in _pairings(project):
            if def_mod is None:
                yield self.finding(
                    ref_mod,
                    func,
                    f"reference `{func.name}` has no top-level "
                    f"counterpart `{spec}` in the source tree; "
                    "restore the vectorized twin or declare the "
                    f"pairing in {_MAP_NAME}",
                )
                continue
            if test_imports is None:
                continue  # no tests tree given: skip evidence check
            ref_names = {ref_mod.name, f"{ref_mod.name}.{func.name}"}
            cp_names = {def_mod.name, f"{def_mod.name}.{name}"}
            covered = any(
                (imports & ref_names) and (imports & cp_names)
                for _, imports in test_imports
            )
            if not covered:
                yield self.finding(
                    ref_mod,
                    func,
                    f"no test imports both `{ref_mod.name}."
                    f"{func.name}` and its counterpart "
                    f"`{def_mod.name}.{name}`; the parity promise "
                    "is unexercised",
                )


register(ParityCoverageRule())
