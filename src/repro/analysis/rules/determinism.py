"""Determinism rules: unseeded RNG, order-sensitive float reduction,
and set iteration in the partition/routing hot paths.

The repo's parity suites promise *bit-identical* outputs between the
vectorized kernels and their ``_reference.py`` oracles, and repeated
runs of the PROFILE pipeline must reproduce exactly.  Three things
silently break that promise:

- an unseeded random source (``random.random()``,
  ``np.random.rand()``, ``np.random.default_rng()`` with no seed) makes
  results differ run to run;
- ``sum()`` / ``np.sum`` over float accumulators fixes *an* order, but
  not necessarily the same order the scalar oracle used — IEEE float
  addition is not associative, so the "same" computation drifts by
  ulps and the bit-identical suites fail;
- iterating a ``set`` makes the visit order depend on hash seeding
  and insertion history, which reorders float accumulation and
  tie-breaking in the partition/routing kernels.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import Finding, ParsedModule, Project
from repro.analysis.registry import Rule, register
from repro.analysis.visitors import (
    ImportMap,
    attach_parents,
    imported_target,
    is_bare_builtin,
    iter_calls,
    parent_of,
)

__all__ = ["UnseededRngRule", "FloatSumRule", "SetIterationRule"]

#: numpy.random attributes that *construct* seeded generators (their
#: call sites are checked for an explicit seed instead of being
#: banned outright).
_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
}

#: numpy.random attributes that are fine to reference anywhere: types
#: for annotations / isinstance, and seedable bit generators (these
#: take their seed as the first argument, checked like default_rng).
_RNG_TYPES = {
    "numpy.random.Generator",
    "numpy.random.BitGenerator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
}


def _first_arg_is_seed(call: ast.Call) -> bool:
    """True when the constructor call pins an explicit, non-None seed."""
    if call.args:
        first = call.args[0]
        return not (
            isinstance(first, ast.Constant) and first.value is None
        )
    for kw in call.keywords:
        if kw.arg == "seed":
            return not (
                isinstance(kw.value, ast.Constant)
                and kw.value.value is None
            )
    return False


class UnseededRngRule(Rule):
    id = "unseeded-rng"
    description = (
        "no unseeded random sources: stdlib `random` module calls are "
        "banned, `np.random.*` convenience functions are banned, and "
        "generator constructors must receive an explicit seed"
    )

    def run_module(
        self, project: Project, module: ParsedModule
    ) -> Iterator[Finding]:
        imports = ImportMap.from_tree(module.tree)
        for call in iter_calls(module.tree):
            target = imported_target(call.func, imports)
            if target is None:
                continue
            yield from self._check_call(module, call, target)

    def _check_call(
        self, module: ParsedModule, call: ast.Call, target: str
    ) -> Iterator[Finding]:
        if target == "random" or target.startswith("random."):
            yield self.finding(
                module,
                call,
                f"stdlib `{target}()` draws from a process-global, "
                "unseeded stream; use np.random.default_rng(seed) "
                "threaded from the caller",
            )
            return
        if not target.startswith("numpy.random."):
            return
        if target in _RNG_CONSTRUCTORS or target in _RNG_TYPES:
            if target in (
                "numpy.random.Generator",
                "numpy.random.BitGenerator",
                "numpy.random.SeedSequence",
            ):
                return  # wrap/derive an already-seeded source
            if _first_arg_is_seed(call):
                return
            yield self.finding(
                module,
                call,
                f"`{target}()` without an explicit seed is "
                "entropy-seeded; pass the seed through from the caller",
            )
            return
        yield self.finding(
            module,
            call,
            f"`{target}()` uses numpy's legacy global RNG state; "
            "use np.random.default_rng(seed) instead",
        )


def _int_wrapped(call: ast.Call, module: ParsedModule,
                 imports: ImportMap) -> bool:
    """True when ``call`` is directly inside ``int(...)``.

    Integer accumulation is exact, so its order cannot change the
    result — ``int(sum(...))`` over counters is deterministic.
    """
    parent = parent_of(call)
    return (
        isinstance(parent, ast.Call)
        and parent.args
        and parent.args[0] is call
        and is_bare_builtin(parent.func, "int", module.tree, imports)
    )


class FloatSumRule(Rule):
    id = "float-sum"
    scope = "project"  # needs the parity pairings (cross-module)
    description = (
        "no builtin sum()/np.sum over float accumulators in modules "
        "backed by a _reference.py oracle (IEEE addition is not "
        "associative; use math.fsum or an explicitly ordered reduction)"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.rules.parity import counterpart_modules

        in_scope = counterpart_modules(project)
        for module in project.modules:
            if module.is_reference:
                continue  # the oracle *defines* the accumulation order
            if not (
                module.has_reference_oracle or module.name in in_scope
            ):
                continue
            imports = ImportMap.from_tree(module.tree)
            attach_parents(module.tree)
            for call in iter_calls(module.tree):
                is_builtin_sum = is_bare_builtin(
                    call.func, "sum", module.tree, imports
                )
                is_np_sum = (
                    imported_target(call.func, imports) == "numpy.sum"
                )
                if not (is_builtin_sum or is_np_sum):
                    continue
                if is_builtin_sum and _int_wrapped(call, module, imports):
                    continue
                which = "sum()" if is_builtin_sum else "np.sum()"
                yield self.finding(
                    module,
                    call,
                    f"{which} in an oracle-backed module is an "
                    "order-sensitive float reduction; use math.fsum "
                    "(exact) or an explicitly ordered accumulation "
                    "(np.add.at / np.add.reduce over a sorted array), "
                    "or wrap in int(...) if the operands are integers",
                )


#: Dotted package prefixes whose modules count as partition/routing
#: hot paths for the set-iteration rule.
_HOT_PREFIXES = ("repro.partition", "repro.routing")


def _is_set_expr(node: ast.expr, module: ParsedModule,
                 imports: ImportMap) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return is_bare_builtin(
            node.func, "set", module.tree, imports
        ) or is_bare_builtin(node.func, "frozenset", module.tree, imports)
    return False


def _set_typed_names(
    scope: ast.AST, module: ParsedModule, imports: ImportMap
) -> set[str]:
    """Names whose every assignment in ``scope`` is a set expression."""
    sety: dict[str, bool] = {}
    for node in ast.walk(scope):
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        elif isinstance(node, ast.AugAssign):
            target, value = node.target, None  # |= etc.: keep prior kind
        if not isinstance(target, ast.Name):
            continue
        if value is None:
            continue
        is_set = _is_set_expr(value, module, imports)
        prior = sety.get(target.id)
        sety[target.id] = is_set if prior is None else (prior and is_set)
    return {name for name, flag in sety.items() if flag}


class SetIterationRule(Rule):
    id = "set-iteration"
    description = (
        "no iteration over sets in the partition/routing hot paths "
        "(visit order depends on hashing; sort first)"
    )

    def run_module(
        self, project: Project, module: ParsedModule
    ) -> Iterator[Finding]:
        if not (
            module.name in _HOT_PREFIXES
            or module.name.startswith(
                tuple(p + "." for p in _HOT_PREFIXES)
            )
        ):
            return
        imports = ImportMap.from_tree(module.tree)
        yield from self._check_scope(module, module.tree, imports)

    def _check_scope(
        self, module: ParsedModule, scope: ast.AST, imports: ImportMap
    ) -> Iterator[Finding]:
        sety = _set_typed_names(scope, module, imports)
        for node in ast.walk(scope):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                direct = _is_set_expr(it, module, imports)
                via_name = (
                    isinstance(it, ast.Name) and it.id in sety
                )
                if direct or via_name:
                    what = (
                        f"`{it.id}` (assigned a set)"
                        if isinstance(it, ast.Name)
                        else "a set expression"
                    )
                    yield self.finding(
                        module,
                        it,
                        f"iterating {what} visits elements in "
                        "hash order; iterate `sorted(...)` of it so "
                        "downstream accumulation and tie-breaking "
                        "stay deterministic",
                    )


register(UnseededRngRule())
register(FloatSumRule())
register(SetIterationRule())
